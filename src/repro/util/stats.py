"""Statistical utilities for ensemble comparisons.

The paper compares strategies on means of 100 randomized runs; with fewer
replicas (tests, quick benches) the comparisons need statistical care.
Provided: normal and bootstrap confidence intervals, and Welch's unequal-
variance t-test for "strategy A is faster than B" claims.  SciPy supplies
the t distribution; the bootstrap uses the library's seeded-RNG plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.util.rng import SeedLike, as_generator


def mean_confidence_interval(
    samples, confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``."""
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValueError("need a 1-D sample of size >= 2")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(data.mean())
    sem = float(data.std(ddof=1) / np.sqrt(data.size))
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    half = t_crit * sem
    return (mean - half, mean + half)


def bootstrap_mean_interval(
    samples,
    confidence: float = 0.95,
    *,
    n_resamples: int = 2_000,
    seed: SeedLike = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Preferable to the t interval for the simulator's skewed/bimodal
    wall-clock distributions (a single level-4 failure shifts a run by a
    large constant).
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValueError("need a 1-D sample of size >= 2")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    rng = as_generator(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indices].mean(axis=1)
    lo, hi = np.percentile(
        means, [100 * (0.5 - confidence / 2), 100 * (0.5 + confidence / 2)]
    )
    return (float(lo), float(hi))


@dataclass(frozen=True)
class WelchResult:
    """Welch's t-test outcome for ``mean(a) < mean(b)`` (one-sided).

    Attributes
    ----------
    statistic:
        The t statistic (negative favours ``a`` faster).
    p_value:
        One-sided p-value of the alternative ``mean(a) < mean(b)``.
    significant:
        ``p_value < alpha``.
    """

    statistic: float
    p_value: float
    significant: bool


def welch_faster_than(
    a, b, *, alpha: float = 0.05
) -> WelchResult:
    """Test whether sample ``a``'s mean is significantly below ``b``'s.

    Welch's unequal-variance t-test, one-sided.  Use for claims like
    "ML(opt-scale)'s simulated wall-clock beats ML(ori-scale)" with small
    ensembles.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.size < 2 or b_arr.size < 2:
        raise ValueError("both samples need size >= 2")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    statistic, p_two_sided = scipy_stats.ttest_ind(
        a_arr, b_arr, equal_var=False
    )
    if statistic < 0:
        p_one_sided = p_two_sided / 2.0
    else:
        p_one_sided = 1.0 - p_two_sided / 2.0
    return WelchResult(
        statistic=float(statistic),
        p_value=float(p_one_sided),
        significant=bool(p_one_sided < alpha),
    )
