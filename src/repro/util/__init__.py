"""Shared utilities: units, RNG plumbing, iteration helpers, table formatting."""

from repro.util.units import (
    SECONDS_PER_DAY,
    core_days_to_core_seconds,
    core_seconds_to_core_days,
    days_to_seconds,
    per_day_to_per_second,
    per_second_to_per_day,
    seconds_to_days,
)
from repro.util.rng import as_generator, spawn_generators
from repro.util.iteration import (
    FixedPointDiverged,
    FixedPointResult,
    bisect_root,
    fixed_point,
    relative_change,
)
from repro.util.stats import (
    WelchResult,
    bootstrap_mean_interval,
    mean_confidence_interval,
    welch_faster_than,
)
from repro.util.tablefmt import format_table

__all__ = [
    "SECONDS_PER_DAY",
    "core_days_to_core_seconds",
    "core_seconds_to_core_days",
    "days_to_seconds",
    "per_day_to_per_second",
    "per_second_to_per_day",
    "seconds_to_days",
    "as_generator",
    "spawn_generators",
    "FixedPointDiverged",
    "FixedPointResult",
    "bisect_root",
    "fixed_point",
    "relative_change",
    "format_table",
    "WelchResult",
    "bootstrap_mean_interval",
    "mean_confidence_interval",
    "welch_faster_than",
]
