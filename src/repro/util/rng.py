"""Random-number-generator plumbing.

All stochastic components of the library accept either an integer seed, a
:class:`numpy.random.SeedSequence`, an existing
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).  Ensemble
runners derive independent child generators with ``SeedSequence.spawn`` so
that replicated simulations are statistically independent yet exactly
reproducible from a single root seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    anything else creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one root seed.

    Uses ``SeedSequence.spawn`` so the children do not overlap even when the
    root seed is small (e.g. 0, 1, 2...).  If ``seed`` is already a
    ``Generator`` its underlying seed cannot be recovered, so children are
    seeded from draws of that generator instead.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        child_seeds: Sequence[int] = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
