"""Unit conversions.

Internally every quantity in this library is expressed in *seconds* (time),
*cores* (scale), and *failures per second* (rates).  The paper's evaluation
section, however, states workloads in core-days and failure rates in events
per day; these helpers convert at the API edges so the core never has to
guess the unit of a number.
"""

from __future__ import annotations

SECONDS_PER_DAY: float = 86_400.0


def days_to_seconds(days: float) -> float:
    """Convert a duration in days to seconds."""
    return days * SECONDS_PER_DAY


def seconds_to_days(seconds: float) -> float:
    """Convert a duration in seconds to days."""
    return seconds / SECONDS_PER_DAY


def core_days_to_core_seconds(core_days: float) -> float:
    """Convert a workload in core-days (the paper's ``T_e`` unit) to core-seconds."""
    return core_days * SECONDS_PER_DAY


def core_seconds_to_core_days(core_seconds: float) -> float:
    """Convert a workload in core-seconds to core-days."""
    return core_seconds / SECONDS_PER_DAY


def per_day_to_per_second(rate_per_day: float) -> float:
    """Convert a failure rate in events/day (the paper's ``r_i``) to events/second."""
    return rate_per_day / SECONDS_PER_DAY


def per_second_to_per_day(rate_per_second: float) -> float:
    """Convert a failure rate in events/second to events/day."""
    return rate_per_second * SECONDS_PER_DAY
