"""Generic numerical iteration helpers.

The paper's solvers are built from two primitives:

* a *fixed-point iteration* ``v <- F(v)`` run until the change between
  successive iterates falls below a threshold (Formulas 16/17 and 23/24,
  and the outer loop of Algorithm 1), and
* a *bisection root finder* on a monotone function over a bracket
  (used to solve Formula 17 / Formula 24 for the scale ``N``).

Both are implemented here once, with convergence diagnostics that the
experiment drivers surface (the paper reports 7-15 outer iterations and
~10 bisection steps; ``FixedPointResult.iterations`` lets the benches
check that claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np


class FixedPointDiverged(RuntimeError):
    """Raised when a fixed-point iteration exceeds its iteration budget.

    The paper notes (Section III-D) that Algorithm 1 fails to converge only
    under unrealistically high failure rates; we surface that situation as an
    exception instead of returning garbage.

    ``trace`` optionally carries the structured per-iteration telemetry
    collected up to the failure (Algorithm 1 attaches its
    :class:`~repro.core.algorithm1.OuterIterationRecord` tuple), so the CLI
    can print the partial convergence trajectory instead of a traceback.
    """

    def __init__(self, message: str, last_value=None, history=None, trace=None):
        super().__init__(message)
        self.last_value = last_value
        self.history = history or []
        self.trace = tuple(trace) if trace else ()


@dataclass
class FixedPointResult:
    """Outcome of a converged fixed-point iteration.

    Attributes
    ----------
    value:
        The converged iterate.
    iterations:
        Number of applications of the map (1 means ``F(v0)`` already met
        the tolerance against ``v0``).
    residual:
        The final change metric between the last two iterates.
    history:
        Every iterate produced, starting with the initial value.  Kept as a
        plain list so callers can inspect convergence trajectories.
    """

    value: object
    iterations: int
    residual: float
    history: list = field(default_factory=list)


def relative_change(new, old) -> float:
    """Max elementwise change of ``new`` vs ``old``, relative where possible.

    Works on scalars and array-likes.  For entries with ``|old| > 1`` the
    change is measured relatively, otherwise absolutely, so tolerances behave
    sensibly for iterates spanning many orders of magnitude (x ~ 1e2-1e5,
    mu ~ 1e0-1e2 in the paper's settings).
    """
    new_arr = np.atleast_1d(np.asarray(new, dtype=float))
    old_arr = np.atleast_1d(np.asarray(old, dtype=float))
    if new_arr.shape != old_arr.shape:
        raise ValueError(
            f"shape mismatch in relative_change: {new_arr.shape} vs {old_arr.shape}"
        )
    denom = np.maximum(np.abs(old_arr), 1.0)
    return float(np.max(np.abs(new_arr - old_arr) / denom))


def fixed_point(
    func: Callable,
    x0,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    metric: Callable = relative_change,
    keep_history: bool = False,
) -> FixedPointResult:
    """Iterate ``x <- func(x)`` until ``metric(new, old) <= tol``.

    Parameters
    ----------
    func:
        The iteration map.  May return scalars, tuples, or arrays — anything
        ``metric`` accepts.
    x0:
        Initial iterate.
    tol:
        Convergence threshold on ``metric``.
    max_iter:
        Iteration budget; exceeding it raises :class:`FixedPointDiverged`.
    metric:
        Change measure between successive iterates
        (default :func:`relative_change`).
    keep_history:
        Record every iterate in the result (costs memory; off by default).
    """
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    history = [x0] if keep_history else []
    current = x0
    for iteration in range(1, max_iter + 1):
        nxt = func(current)
        residual = metric(nxt, current)
        if keep_history:
            history.append(nxt)
        if residual <= tol:
            return FixedPointResult(
                value=nxt, iterations=iteration, residual=residual, history=history
            )
        current = nxt
    raise FixedPointDiverged(
        f"fixed-point iteration did not converge within {max_iter} iterations "
        f"(last residual {residual:.3e}, tol {tol:.3e})",
        last_value=current,
        history=history,
    )


def bisect_root(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    xtol: float = 0.5,
    max_iter: int = 200,
) -> tuple[float, int]:
    """Bisection root finder returning ``(root, iterations)``.

    Designed for the paper's use: the derivative of ``E(T_w)`` w.r.t. ``N``
    is monotone increasing over ``[0, N^(*)]``, and since the optimum scale is
    an integer the paper stops as soon as the bracket is narrower than 0.5
    (``xtol`` default).  Preconditions:

    * ``lo < hi``;
    * ``func(lo)`` and ``func(hi)`` have opposite signs (or one is zero).

    Raises ``ValueError`` when the bracket does not straddle a sign change;
    callers handle the no-root case (optimum at the boundary) themselves.
    """
    if not lo < hi:
        raise ValueError(f"invalid bracket: lo={lo!r} must be < hi={hi!r}")
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo, 0
    if f_hi == 0.0:
        return hi, 0
    if np.sign(f_lo) == np.sign(f_hi):
        raise ValueError(
            f"no sign change over [{lo}, {hi}]: f(lo)={f_lo:.3e}, f(hi)={f_hi:.3e}"
        )
    iterations = 0
    for iterations in range(1, max_iter + 1):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0 or (hi - lo) <= xtol:
            return mid, iterations
        if np.sign(f_mid) == np.sign(f_lo):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    return 0.5 * (lo + hi), iterations
