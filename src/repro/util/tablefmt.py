"""Minimal ASCII table formatter used by the experiment drivers.

The benches print the same rows the paper's tables report; this keeps the
rendering in one place so every experiment output looks identical.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered = [[_render_cell(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
