"""Bounded request queue with coalescing, batching, and backpressure.

:class:`CoalescingScheduler` is the heart of the service: every request
carries a canonical key (:func:`repro.core.memo.canonical_key` over the
request's resolved parameters) and a zero-argument compute callable.

* **Coalescing** — while a key is queued or in flight, further submits
  for the same key *attach* to the existing entry instead of enqueueing
  a duplicate: one execution fans its result out to every waiter
  (counter ``service.coalesced``).  Checkpoint-planning traffic is
  heavily duplicate (malleable applications re-plan on every scale
  change with the same handful of configurations), so this is the
  difference between O(unique) and O(requests) solver work.
* **Batching** — a single dispatcher thread drains up to ``batch_max``
  entries at a time and fans the batch out through a reused
  :mod:`repro.parallel` thread pool (threads, not processes: workers
  must share the in-process ``SOLVER_CACHE``).  Counters
  ``service.batches`` and histogram ``service.batch_size``.
* **Backpressure** — the queue is bounded; a submit that finds it full
  raises :class:`ServiceOverloaded` (the HTTP layer maps this to
  ``429 Retry-After``) rather than buffering unboundedly.  Gauge
  ``service.queue_depth``, counter ``service.rejected`` (plus a
  ``service.rejected.<endpoint>`` counter when the submitter passes its
  endpoint label).  The advertised ``retry_after`` is *honest*: it is
  derived from the observed drain rate — the time one dispatch batch
  needs to clear at the pace recent entries actually completed — and
  only falls back to the configured constant before any completions
  have been observed (see :meth:`CoalescingScheduler._retry_after_estimate`).
* **Queue-wait vs. execution split** — every entry records its
  admission and dispatch timestamps, so the ``scheduler.execute`` span
  carries ``queue_wait_s`` (admission → drained from the queue) and
  ``exec_s`` (drained → finished) attributes, and the same split lands
  in the ``service.queue_wait_seconds[.<endpoint>]`` /
  ``service.exec_seconds[.<endpoint>]`` histograms.  One observation
  per *execution*, never per waiter — coalesced duplicates are not
  double-counted.
* **Graceful drain** — ``close(drain=True)`` stops intake, finishes
  every queued and in-flight entry, then releases the pool;
  ``close(drain=False)`` fails queued entries immediately and cancels
  pending pool work.

Waiters block in :meth:`submit`; the scheduler itself never touches the
HTTP layer, so it is directly testable (and reusable for non-HTTP
front-ends).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Hashable

from repro.obs.logconf import get_logger
from repro.obs.metrics import LATENCY_BUCKETS, METRICS
from repro.obs.spans import SpanContext, current_span, span
from repro.parallel.executor import Executor, make_executor

logger = get_logger("service.scheduler")

#: Retry-After estimation: completions older than this are ignored.
DRAIN_WINDOW_SECONDS = 30.0
#: Honest Retry-After bounds (seconds).  The floor keeps a hot drain
#: from advertising a zero back-off; the ceiling keeps a stalled drain
#: from telling clients to go away for minutes.
RETRY_AFTER_MIN = 0.05
RETRY_AFTER_MAX = 30.0


def _invoke(task: Callable[[], None]) -> None:
    task()


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full; retry after ``retry_after`` s."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceClosed(RuntimeError):
    """The scheduler is shutting down and no longer accepts work."""


def execute_entry(entry: "_Entry", fn: Callable[[], Any]) -> None:
    """Run ``fn`` as ``entry``'s compute under the entry's pinned span.

    This is the single execution discipline of the service: open the
    ``scheduler.execute`` span whose identity was derived at submit time,
    store the result or the error on the entry, and never raise.  The
    scheduler uses it for singleton entries (``fn`` is the entry's own
    compute); batch runners use it per entry with a closure that reads
    the already-solved batch result, so waiters and telemetry cannot
    tell the two apart.  Marking the entry done (and unlinking it from
    the pending map) stays with the scheduler.

    Timing split: ``queue_wait_s`` is admission → dispatch (how long the
    entry sat in the bounded queue), ``exec_s`` is dispatch → finished.
    Both ride the span as attributes (excluded from
    :func:`~repro.obs.spans.span_tree_signature`, like ``start``/``end``)
    and land in the ``service.queue_wait_seconds`` /
    ``service.exec_seconds`` histograms — one observation per execution,
    so coalesced waiters are never double-counted.
    """
    started = entry.started_at
    if started is None:  # direct callers (tests) that skipped dispatch
        started = time.perf_counter()
    queue_wait = max(0.0, started - entry.admitted_at)
    exec_start = time.perf_counter()
    try:
        with span(
            "scheduler.execute",
            context=entry.span_context,
            parent_id=entry.span_parent_id,
            attributes={"waiters": entry.waiters, "queue_wait_s": queue_wait},
        ) as live:
            try:
                entry.result = fn()
            finally:
                if live is not None:
                    # Refresh: duplicates may have attached while the
                    # compute ran (the at-start snapshot undercounts).
                    live.set_attribute("waiters", entry.waiters)
                    live.set_attribute(
                        "exec_s", time.perf_counter() - exec_start
                    )
    except BaseException as exc:  # noqa: BLE001 - delivered to waiters
        entry.error = exc
        logger.debug("request %r failed: %s", entry.key, exc)
    finally:
        _observe_entry_split(
            entry, queue_wait, time.perf_counter() - exec_start
        )


def _observe_entry_split(
    entry: "_Entry", queue_wait: float, exec_seconds: float
) -> None:
    """Record one execution's queue-wait/execution split in the registry.

    Always feeds the aggregate series; additionally feeds the
    per-endpoint series when the submitter labeled the entry.
    """
    suffixes = [""]
    if entry.endpoint:
        suffixes.append(f".{entry.endpoint}")
    for suffix in suffixes:
        METRICS.histogram(
            f"service.queue_wait_seconds{suffix}", buckets=LATENCY_BUCKETS
        ).observe(queue_wait)
        METRICS.histogram(
            f"service.exec_seconds{suffix}", buckets=LATENCY_BUCKETS
        ).observe(exec_seconds)


class _Entry:
    """One coalesced unit of work: a key, a compute, and its waiters.

    ``span_context`` / ``span_parent_id`` pin the identity of the entry's
    future ``scheduler.execute`` span.  They are derived at *submit* time
    from the first submitter's live span, so duplicate submitters that
    coalesce later can link to the executing span (``coalesced_to``)
    before it has even started.
    """

    __slots__ = (
        "key", "compute", "done", "result", "error", "waiters",
        "span_context", "span_parent_id",
        "admitted_at", "started_at", "endpoint",
    )

    def __init__(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        endpoint: str | None = None,
    ):
        self.key = key
        self.compute = compute
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.waiters = 1
        self.span_context: SpanContext | None = None
        self.span_parent_id: str | None = None
        #: Queue-admission timestamp (``time.perf_counter``), stamped at
        #: construction; ``started_at`` is stamped when the dispatcher
        #: drains the entry.  Their difference is the honest queue wait.
        self.admitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.endpoint = endpoint


class CoalescingScheduler:
    """Bounded, coalescing, batching dispatcher over a reused worker pool.

    Parameters
    ----------
    queue_max:
        Maximum *distinct* entries waiting to start (in-flight entries
        do not count; attached duplicate waiters never count).
    batch_max:
        Maximum entries drained into one pool fan-out.
    jobs:
        Worker budget for the pool (``None`` defers to ``REPRO_JOBS``,
        default 1).  The pool is built once and reused for every batch.
    retry_after:
        Advisory client back-off (seconds) carried by
        :class:`ServiceOverloaded`.
    batch_runners:
        Optional ``{group: runner}`` map for *vectorized* dispatch.  A
        compute callable carrying a ``batch_group`` attribute naming a
        registered group is not fanned out one-entry-per-worker;
        instead every same-group entry drained in one batch is handed
        to ``runner(entries)`` as a single unit (one pool task), which
        must call :func:`execute_entry` once per entry.  This is how
        coalesced-distinct ``/v1/solve`` keys drain through one
        ``batch_solve`` kernel pass.  Entries without a recognized
        group keep the per-entry path.
    """

    def __init__(
        self,
        *,
        queue_max: int = 64,
        batch_max: int = 8,
        jobs: int | str | None = None,
        retry_after: float = 1.0,
        batch_runners: dict[str, Callable[[list], None]] | None = None,
    ):
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.queue_max = int(queue_max)
        self.batch_max = int(batch_max)
        self.retry_after = float(retry_after)
        self._batch_runners = dict(batch_runners or {})
        self._executor: Executor = make_executor(jobs, backend="thread")
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: deque[_Entry] = deque()
        self._pending: dict[Hashable, _Entry] = {}
        #: Monotonic completion timestamps for the drain-rate estimate
        #: behind honest Retry-After hints.  Bounded: only the recent
        #: past matters and rejection-path reads must stay O(small).
        self._finished: deque[float] = deque(maxlen=128)
        self._closing = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- intake

    def submit(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        *,
        timeout: float | None = None,
        endpoint: str | None = None,
        info: dict[str, Any] | None = None,
    ) -> Any:
        """Run ``compute`` (or attach to its in-flight duplicate) and
        return the shared result.

        ``endpoint`` labels the per-endpoint counters and the
        queue-wait/execution histograms (``service.rejected.<endpoint>``
        etc.); omitting it keeps the global series only.  ``info``, when
        given, is an out-param: ``info["coalesced"] = True`` is set when
        this submit attached to an in-flight duplicate instead of
        enqueueing its own entry.

        Raises :class:`ServiceOverloaded` when the queue is full,
        :class:`ServiceClosed` after shutdown began, ``TimeoutError``
        when the result is not ready within ``timeout``, and re-raises
        the compute's exception for every attached waiter.
        """
        live = current_span()
        with self._lock:
            entry = self._pending.get(key)
            if entry is not None:
                entry.waiters += 1
                METRICS.counter("service.coalesced").inc()
                if endpoint:
                    METRICS.counter(f"service.coalesced.{endpoint}").inc()
                if info is not None:
                    info["coalesced"] = True
                # Link the duplicate's own request span to the span that
                # will actually run the work (it may not have started yet;
                # its identity was pinned when the entry was created).
                if live is not None and entry.span_context is not None:
                    live.set_attribute(
                        "coalesced_to", entry.span_context.span_id
                    )
            else:
                if self._closing:
                    raise ServiceClosed("scheduler is shutting down")
                if len(self._queue) >= self.queue_max:
                    METRICS.counter("service.rejected").inc()
                    if endpoint:
                        METRICS.counter(f"service.rejected.{endpoint}").inc()
                    raise ServiceOverloaded(
                        f"request queue full ({self.queue_max} waiting)",
                        retry_after=self._retry_after_estimate(),
                    )
                entry = _Entry(key, compute, endpoint)
                if live is not None:
                    # Pre-derive the executing span's context under the
                    # submitter's span: the dispatcher/pool threads that
                    # later run the entry have no contextvar link back to
                    # this request, so the identity rides on the entry.
                    entry.span_context = live.context.child(
                        "scheduler.execute", live.next_index()
                    )
                    entry.span_parent_id = live.context.span_id
                self._pending[key] = entry
                self._queue.append(entry)
                METRICS.gauge("service.queue_depth").set(len(self._queue))
                self._wake.notify()
        if not entry.done.wait(timeout):
            raise TimeoutError(f"request not completed within {timeout} s")
        if entry.error is not None:
            raise entry.error
        return entry.result

    def submit_many(
        self,
        requests: "list[tuple[Hashable, Callable[[], Any]]]",
        *,
        timeout: float | None = None,
        endpoint: str | None = None,
    ) -> list[Any]:
        """Run a whole batch of ``(key, compute)`` pairs; results in order.

        Admission is atomic: every *distinct new* key in the batch must
        fit in the bounded queue together, or the whole batch is
        rejected with :class:`ServiceOverloaded` (a half-admitted sweep
        would return a half-computed response).  Duplicate keys — of an
        already in-flight entry or of an earlier item in the same batch
        — attach as coalesced waiters exactly like :meth:`submit`
        duplicates, so a sweep containing repeats still costs one
        execution per unique key.

        Entries enter the same dispatcher queue as singleton submits:
        same-group computes (``batch_group``) drain through the
        vectorized batch runners, spans pin their identity at submit
        time, and close/drain semantics are unchanged.  The first
        failing entry's exception (in request order) is re-raised after
        all entries settle.
        """
        live = current_span()
        entries: list[_Entry] = []
        with self._lock:
            if self._closing:
                raise ServiceClosed("scheduler is shutting down")
            batch_local: dict[Hashable, _Entry] = {}
            new_entries: list[_Entry] = []
            for key, compute in requests:
                entry = self._pending.get(key) or batch_local.get(key)
                if entry is not None:
                    entry.waiters += 1
                    METRICS.counter("service.coalesced").inc()
                    if endpoint:
                        METRICS.counter(f"service.coalesced.{endpoint}").inc()
                    if live is not None and entry.span_context is not None:
                        live.set_attribute(
                            "coalesced_to", entry.span_context.span_id
                        )
                else:
                    entry = _Entry(key, compute, endpoint)
                    if live is not None:
                        entry.span_context = live.context.child(
                            "scheduler.execute", live.next_index()
                        )
                        entry.span_parent_id = live.context.span_id
                    batch_local[key] = entry
                    new_entries.append(entry)
                entries.append(entry)
            if len(self._queue) + len(new_entries) > self.queue_max:
                METRICS.counter("service.rejected").inc()
                if endpoint:
                    METRICS.counter(f"service.rejected.{endpoint}").inc()
                raise ServiceOverloaded(
                    f"batch of {len(new_entries)} distinct request(s) does "
                    f"not fit the queue ({len(self._queue)} waiting, "
                    f"bound {self.queue_max})",
                    retry_after=self._retry_after_estimate(),
                )
            for entry in new_entries:
                self._pending[entry.key] = entry
                self._queue.append(entry)
            METRICS.gauge("service.queue_depth").set(len(self._queue))
            self._wake.notify()
        deadline = None if timeout is None else time.monotonic() + timeout
        for entry in entries:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not entry.done.wait(remaining):
                raise TimeoutError(f"batch not completed within {timeout} s")
        for index, entry in enumerate(entries):
            if entry.error is not None:
                # Annotate with the failing request-order position so the
                # HTTP layer can report *which* batch item failed without
                # the scheduler knowing anything about payload formats.
                entry.error.batch_index = index  # type: ignore[attr-defined]
                raise entry.error
        return [entry.result for entry in entries]

    def queue_depth(self) -> int:
        """Entries waiting to start (excludes in-flight)."""
        with self._lock:
            return len(self._queue)

    def in_flight(self) -> int:
        """Entries queued or executing right now."""
        with self._lock:
            return len(self._pending)

    # ----------------------------------------------------------- dispatch

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._wake.wait()
                if not self._queue:
                    return  # closing and drained
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_max, len(self._queue)))
                ]
                now = time.perf_counter()
                for entry in batch:
                    entry.started_at = now
                METRICS.gauge("service.queue_depth").set(len(self._queue))
            METRICS.counter("service.batches").inc()
            METRICS.histogram("service.batch_size").observe(len(batch))
            # Same-group entries become one pool task so the runner can
            # solve them in a single vectorized pass; everything else
            # keeps the one-entry-per-worker fan-out.  No task ever
            # raises, so pool.map cannot abort the batch.
            groups: dict[str, list[_Entry]] = {}
            tasks: list[Callable[[], None]] = []
            for entry in batch:
                group = getattr(entry.compute, "batch_group", None)
                if group is not None and group in self._batch_runners:
                    groups.setdefault(group, []).append(entry)
                else:
                    tasks.append(
                        lambda entry=entry: self._run_entry(entry)
                    )
            for group, entries in groups.items():
                METRICS.counter("service.vector_batches").inc()
                METRICS.histogram("service.vector_batch_size").observe(
                    len(entries)
                )
                tasks.append(
                    lambda runner=self._batch_runners[group],
                    entries=entries: self._run_group(runner, entries)
                )
            self._executor.map(_invoke, tasks)

    def _run_entry(self, entry: _Entry) -> None:
        try:
            # context=None (no live span at submit) falls back to normal
            # parent resolution: a fresh root in this dispatcher thread.
            execute_entry(entry, entry.compute)
        finally:
            self._finish_entry(entry)

    def _run_group(self, runner: Callable[[list], None], entries: list[_Entry]) -> None:
        try:
            runner(entries)
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            # A runner fault outside execute_entry (which never raises)
            # fails the entries it had not resolved yet; finished ones
            # keep their results.
            for entry in entries:
                if entry.result is None and entry.error is None:
                    entry.error = exc
            logger.debug("batch runner failed: %s", exc)
        finally:
            for entry in entries:
                self._finish_entry(entry)

    def _finish_entry(self, entry: _Entry) -> None:
        with self._lock:
            self._pending.pop(entry.key, None)
            self._finished.append(time.monotonic())
        entry.done.set()

    def _retry_after_estimate(self) -> float:
        """Honest back-off hint from the observed drain rate.

        Estimates how long one dispatch batch needs to clear at the pace
        recent entries completed: with ``n`` completions over the last
        ``DRAIN_WINDOW_SECONDS``, the drain rate is ``n / elapsed`` and a
        full batch clears in ``batch_max / rate`` seconds, clamped to
        ``[RETRY_AFTER_MIN, RETRY_AFTER_MAX]``.  Before two completions
        have been observed there is no rate to measure, so the configured
        ``retry_after`` constant is advertised instead.

        Caller must hold ``self._lock`` (the rejection path in
        :meth:`submit` does).
        """
        now = time.monotonic()
        cutoff = now - DRAIN_WINDOW_SECONDS
        window = [stamp for stamp in self._finished if stamp >= cutoff]
        if len(window) < 2:
            return self.retry_after
        elapsed = now - window[0]
        if elapsed <= 0.0:
            return RETRY_AFTER_MIN
        rate = len(window) / elapsed
        return min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, self.batch_max / rate))

    # ----------------------------------------------------------- shutdown

    def close(self, *, drain: bool = True) -> None:
        """Stop intake and shut the pool down (idempotent).

        ``drain=True`` finishes all queued and in-flight work first;
        ``drain=False`` fails queued entries with :class:`ServiceClosed`
        and cancels pool tasks that have not started.
        """
        with self._lock:
            if self._closing and not self._dispatcher.is_alive():
                return
            self._closing = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                for entry in abandoned:
                    self._pending.pop(entry.key, None)
                    entry.error = ServiceClosed("service shut down before run")
                    entry.done.set()
                METRICS.gauge("service.queue_depth").set(0)
            self._wake.notify_all()
        self._dispatcher.join()
        self._executor.close(cancel_pending=not drain)

    def __enter__(self) -> "CoalescingScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
