"""Consistent hashing of canonical parameter keys onto cluster shards.

The cluster coordinator (:mod:`repro.service.cluster`) must route every
request for the *same* canonical key (:func:`repro.core.memo.canonical_key`)
to the *same* worker, so each worker's SolverCache + sqlite shard stays
the sole owner of its keyspace slice — that is what makes warm-cache
behaviour across the cluster identical to a single process (each key is
computed once, then always answered by the worker that cached it).

:class:`HashRing` is the classic consistent-hash ring: every shard owns
``replicas`` pseudo-random points on a 2**64 ring (positions are the
leading 8 bytes of ``sha256("shard:<id>:<replica>")``), and a key maps
to the first shard point clockwise from the key's own position (the key
position reuses :func:`repro.service.store.key_digest`, the same sha256
text digest the persistent store indexes by).  Properties the cluster
relies on:

* **Deterministic.**  Pure function of ``(n_shards, replicas)`` — the
  coordinator can rebuild the ring after a restart, and tests can
  predict routing.
* **Balanced.**  With the default 64 virtual points per shard the
  keyspace splits within a few percent of even (asserted in
  ``tests/service/test_hashring.py``).
* **Stable under growth.**  Adding a shard moves only ~1/(n+1) of the
  keyspace; the rest of the keys keep their owner (and their warm
  caches).  The coordinator today uses a fixed shard count per run, but
  the property keeps persisted sqlite shards mostly valid across a
  ``--workers N`` → ``--workers N+1`` restart.

Routing uses ``bisect`` over the sorted point list: O(log n) per key,
no per-request hashing beyond one sha256 of the key's ``repr``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Sequence

from repro.service.store import key_digest

#: Virtual points per shard.  64 keeps the max/min keyspace share under
#: ~1.35x for any shard count the CLI allows; doubling it halves the
#: spread at twice the (one-off) ring-build cost.
DEFAULT_REPLICAS = 64


def _point(shard: int, replica: int) -> int:
    """Ring position of one virtual node: leading 64 bits of sha256."""
    digest = hashlib.sha256(f"shard:{shard}:{replica}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping canonical keys to shard indices."""

    def __init__(self, n_shards: int, *, replicas: int = DEFAULT_REPLICAS):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            points.extend(
                (_point(shard, replica), shard)
                for replica in range(self.replicas)
            )
        points.sort()
        self._positions: Sequence[int] = [pos for pos, _ in points]
        self._owners: Sequence[int] = [shard for _, shard in points]

    def shard_for_digest(self, digest: str) -> int:
        """Owning shard for a precomputed :func:`key_digest` hex string."""
        position = int(digest[:16], 16)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):  # wrap past the last point
            index = 0
        return self._owners[index]

    def shard_for_key(self, key: Hashable) -> int:
        """Owning shard for a canonical key (one sha256 of its ``repr``)."""
        return self.shard_for_digest(key_digest(key))

    def distribution(self, keys: Sequence[Hashable]) -> list[int]:
        """Per-shard key counts for ``keys`` (balance diagnostics/tests)."""
        counts = [0] * self.n_shards
        for key in keys:
            counts[self.shard_for_key(key)] += 1
        return counts
