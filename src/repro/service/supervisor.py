"""Worker-subprocess lifecycle for the sharded service cluster.

The coordinator (:mod:`repro.service.cluster`) delegates process
management here: :class:`WorkerSupervisor` spawns one ``repro
serve-worker`` subprocess per shard, waits for each worker's ready
announcement, probes ``GET /healthz`` on a fixed cadence, and restarts
crashed or unresponsive workers with bounded exponential backoff.

Protocol with the worker (see ``_cmd_serve_worker`` in
:mod:`repro.cli`):

* The worker binds ``port=0`` (the OS picks a free port) and prints one
  JSON line to stdout — ``{"event": "ready", "shard": i, "port": p}`` —
  before serving.  The supervisor reads that line with a timeout, so a
  worker that dies during import/bind surfaces as a spawn failure, not
  a hang.
* ``PYTHONPATH`` is injected explicitly (derived from the running
  ``repro`` package) because the workers are fresh interpreters and the
  package may be running from a source tree rather than an install.
* Shutdown is SIGTERM; the worker maps it to its normal drain path, so
  in-flight requests finish before the process exits.

Restart policy: a worker that exits (or fails its health probe
``unhealthy_threshold`` times in a row) is replaced immediately the
first time; each replacement arms a per-shard holdoff of
``min(backoff_base * 2**restarts, backoff_cap)`` seconds that the
*next* restart must wait out — bounded exponential backoff, so a
single crash recovers at once while a crash-looping shard throttles to
the cap instead of burning CPU on respawns.  The coordinator keeps
routing to the shard's *slot* the whole time — requests that race a
restart window get connection-refused and are retried by the
coordinator (solves are idempotent by canonical key, so replays are
safe).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.logconf import get_logger
from repro.obs.metrics import METRICS
from repro.service.client import ServiceClient
from repro.service.transport import TRANSPORT

logger = get_logger("service.supervisor")

#: Seconds allowed for a fresh worker to import + bind + announce.
SPAWN_TIMEOUT_S = 30.0
#: First-restart delay; doubles per consecutive restart of one shard.
BACKOFF_BASE_S = 0.2
#: Ceiling on the per-shard restart delay.
BACKOFF_CAP_S = 5.0


class WorkerSpawnError(RuntimeError):
    """A worker subprocess failed to start and announce readiness."""


def _repro_pythonpath() -> str:
    """``PYTHONPATH`` entry that makes ``import repro`` work in a child.

    The package directory's parent is the import root whether repro runs
    from a source tree (``src/``) or a site-packages install.
    """
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


@dataclass
class WorkerHandle:
    """One live (or restarting) worker slot."""

    shard: int
    process: subprocess.Popen | None = None
    port: int = 0
    restarts: int = 0
    #: Consecutive failed health probes (reset on any success).
    probe_failures: int = 0
    #: Monotonic deadline before which a restart must not be attempted.
    backoff_until: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class WorkerSupervisor:
    """Spawns, probes, and restarts the cluster's worker subprocesses.

    Parameters
    ----------
    n_workers:
        Shard count; worker ``i`` serves shard ``i``.
    worker_args:
        Extra ``repro serve-worker`` CLI arguments shared by every
        worker (queue sizes, store directory, spans directory, ...).
        The supervisor itself appends ``--shard I`` and ``--port 0``.
    probe_interval_s / probe_timeout_s / unhealthy_threshold:
        Health-check cadence, per-probe HTTP timeout, and how many
        consecutive probe failures demote a live process to "restart
        it" (a dead process restarts immediately).
    on_restart:
        Optional callback ``(shard, handle)`` invoked after a
        replacement worker announces ready — the coordinator uses it to
        re-point routing at the new port.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        worker_args: Sequence[str] = (),
        probe_interval_s: float = 1.0,
        probe_timeout_s: float = 2.0,
        unhealthy_threshold: int = 3,
        backoff_base_s: float = BACKOFF_BASE_S,
        backoff_cap_s: float = BACKOFF_CAP_S,
        on_restart: Callable[[int, WorkerHandle], None] | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.n_workers = int(n_workers)
        self.worker_args = list(worker_args)
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.unhealthy_threshold = int(unhealthy_threshold)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.on_restart = on_restart
        self.workers = [WorkerHandle(shard=i) for i in range(self.n_workers)]
        self._stop = threading.Event()
        self._probe_thread: threading.Thread | None = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "WorkerSupervisor":
        """Spawn every worker, then start the health-probe loop."""
        try:
            for handle in self.workers:
                self._spawn(handle)
        except Exception:
            self.stop()
            raise
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-cluster-probe", daemon=True
        )
        self._probe_thread.start()
        return self

    def stop(self, *, timeout_s: float = 10.0) -> None:
        """SIGTERM every worker (drain path), escalating to SIGKILL."""
        self._stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=self.probe_interval_s + 1.0)
            self._probe_thread = None
        for handle in self.workers:
            process = handle.process
            if process is None or process.poll() is not None:
                continue
            process.terminate()
        deadline = time.monotonic() + timeout_s
        for handle in self.workers:
            process = handle.process
            if process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                logger.warning(
                    "worker shard=%d did not drain in %.1fs; killing",
                    handle.shard, timeout_s,
                )
                process.kill()
                process.wait()

    # ------------------------------------------------------------- spawning

    def _command(self, shard: int) -> list[str]:
        return [
            sys.executable, "-m", "repro", "serve-worker",
            "--shard", str(shard), "--port", "0", *self.worker_args,
        ]

    def _spawn(self, handle: WorkerHandle) -> None:
        env = dict(os.environ)
        pythonpath = _repro_pythonpath()
        if env.get("PYTHONPATH"):
            pythonpath = pythonpath + os.pathsep + env["PYTHONPATH"]
        env["PYTHONPATH"] = pythonpath
        process = subprocess.Popen(
            self._command(handle.shard),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            ready = self._read_ready_line(process, handle.shard)
        except Exception:
            process.kill()
            process.wait()
            raise
        handle.process = process
        handle.port = int(ready["port"])
        handle.probe_failures = 0
        # Keep the pipe drained so the worker never blocks on a full
        # stdout buffer; anything after the ready line is diagnostics.
        threading.Thread(
            target=self._drain_stdout,
            args=(process,),
            name=f"repro-worker-{handle.shard}-stdout",
            daemon=True,
        ).start()
        logger.info(
            "worker shard=%d ready on %s (pid %d)",
            handle.shard, handle.url, process.pid,
        )

    @staticmethod
    def _read_ready_line(process: subprocess.Popen, shard: int) -> dict:
        """Block (bounded) until the worker prints its ready JSON line."""
        result: dict = {}
        error: list[BaseException] = []

        def read() -> None:
            try:
                line = process.stdout.readline()  # type: ignore[union-attr]
                result.update(json.loads(line))
            except BaseException as exc:  # noqa: BLE001 - reported below
                error.append(exc)

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=SPAWN_TIMEOUT_S)
        if reader.is_alive() or error or result.get("event") != "ready":
            code = process.poll()
            raise WorkerSpawnError(
                f"worker shard={shard} failed to announce ready "
                f"(exit code {code}, got {result or error or 'timeout'!r})"
            )
        return result

    @staticmethod
    def _drain_stdout(process: subprocess.Popen) -> None:
        for line in process.stdout or ():  # pragma: no branch
            logger.debug("worker stdout: %s", line.rstrip())

    # ------------------------------------------------------------- probing

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            for handle in self.workers:
                if self._stop.is_set():
                    return
                try:
                    self._probe(handle)
                except Exception:  # noqa: BLE001 - keep the loop alive
                    logger.exception(
                        "probe error for shard=%d", handle.shard
                    )

    def _probe(self, handle: WorkerHandle) -> None:
        if not handle.alive:
            self._maybe_restart(handle, reason="exited")
            return
        # The client is cheap to construct (it carries no connection
        # state); the socket underneath comes from the process-wide
        # pooled transport, so the 1 Hz probe loop reuses one persistent
        # connection per worker instead of opening a socket per tick.
        client = ServiceClient(handle.url, timeout=self.probe_timeout_s)
        try:
            payload = client.healthz()
            healthy = self._probe_healthy_status(payload.get("status"))
        except Exception:  # noqa: BLE001 - any probe failure counts
            healthy = False
        if healthy:
            handle.probe_failures = 0
            return
        handle.probe_failures += 1
        if handle.probe_failures >= self.unhealthy_threshold:
            self._maybe_restart(handle, reason="unresponsive")

    @staticmethod
    def _probe_healthy_status(status: object) -> bool:
        """Whether a ``/healthz`` status means the worker is *alive*.

        degraded/critical are SLO burn-rate states: the worker is alive
        and answering — restarting it would dump its cache and make the
        burn worse.  Only unreachable/unknown statuses count as failures.
        """
        return status in ("ok", "draining", "degraded", "critical")

    def restart_now(self, shard: int, *, failed_port: int | None = None) -> WorkerHandle:
        """Synchronously replace one worker (used by the scatter path).

        The coordinator calls this when a request to a worker fails with
        a connection error before the probe loop has noticed the crash —
        waiting a probe interval would stall the in-flight request.
        ``failed_port`` is the port the request failed against: if the
        handle already points elsewhere, another thread replaced the
        worker and this is a no-op.  The port is the discriminator (not
        ``poll()``) because a just-killed child can stay unreaped — and
        so "alive" — for a few milliseconds after it stopped answering.
        """
        handle = self.workers[shard]
        self._maybe_restart(
            handle, reason="request failure", wait=True,
            failed_port=failed_port,
        )
        return handle

    def _maybe_restart(
        self,
        handle: WorkerHandle,
        *,
        reason: str,
        wait: bool = False,
        failed_port: int | None = None,
    ) -> None:
        with handle.lock:
            if self._stop.is_set():
                return
            if failed_port is not None:
                if handle.port != failed_port:
                    return  # already replaced by a concurrent caller
            elif handle.alive and handle.probe_failures < self.unhealthy_threshold:
                return  # already replaced by a concurrent caller
            now = time.monotonic()
            if now < handle.backoff_until:
                if not wait:
                    return
                time.sleep(handle.backoff_until - now)
            if self._stop.is_set():
                return
            process = handle.process
            if process is not None and process.poll() is None:
                process.kill()  # unresponsive but alive: replace it
            if process is not None:
                process.wait()
            # The old process is dead: every pooled connection to its
            # port is now a stale socket.  Drop them so the coordinator's
            # next forward opens a fresh channel to the replacement
            # instead of discovering the corpse one connection at a time.
            if handle.port:
                TRANSPORT.invalidate(handle.url)
            delay = min(
                self.backoff_base_s * (2 ** handle.restarts),
                self.backoff_cap_s,
            )
            handle.restarts += 1
            handle.backoff_until = time.monotonic() + delay
            METRICS.counter(f"cluster.restarts.{handle.shard}").inc()
            logger.warning(
                "restarting worker shard=%d (%s; restart #%d, next backoff "
                "%.2fs)", handle.shard, reason, handle.restarts, delay,
            )
            self._spawn(handle)
            handle.probe_failures = 0
        if self.on_restart is not None:
            self.on_restart(handle.shard, handle)

    # -------------------------------------------------------- introspection

    def liveness(self) -> list[dict]:
        """Per-worker liveness summary for the coordinator's healthz."""
        return [
            {
                "shard": handle.shard,
                "url": handle.url,
                "alive": handle.alive,
                "pid": handle.process.pid if handle.process else None,
                "restarts": handle.restarts,
            }
            for handle in self.workers
        ]
