"""repro.service — batched optimization-as-a-service.

Long-lived front-end over the solver and simulator stack: a bounded
request queue with backpressure (HTTP 429 + ``Retry-After``), a
scheduler that coalesces duplicate in-flight requests on their
canonical parameter key and batches work through a reused
:mod:`repro.parallel` thread pool, a disk-backed persistent result
store layered under the in-memory ``SOLVER_CACHE``, and a stdlib
JSON-over-HTTP server plus client.

Layers (each importable and testable on its own):

* :mod:`repro.service.store` — sqlite result store, schema-versioned.
* :mod:`repro.service.scheduler` — queue / coalescing / batching / drain.
* :mod:`repro.service.api` — request parsing, canonical keying, payloads.
* :mod:`repro.service.server` — :class:`ReproService` facade + HTTP.
* :mod:`repro.service.client` — :class:`ServiceClient`.

Quickstart::

    from repro.service import ReproService, ServiceClient

    with ReproService(port=0, store_path="results.sqlite") as service:
        client = ServiceClient(service.url)
        client.solve(te_core_days=3e6, case="8-4-2-1")

or from the command line: ``python -m repro serve --port 8765``.
See docs/service.md for the full API and operational semantics.
"""

from repro.service.api import RequestError, canonical_json
from repro.service.client import OverloadedError, ServiceClient, ServiceError
from repro.service.scheduler import (
    CoalescingScheduler,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service.server import ReproService
from repro.service.store import ResultStore, schema_hash

__all__ = [
    "CoalescingScheduler",
    "OverloadedError",
    "ReproService",
    "RequestError",
    "ResultStore",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "canonical_json",
    "schema_hash",
]
