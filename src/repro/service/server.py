"""JSON-over-HTTP front-end: ``ThreadingHTTPServer`` + service facade.

Stdlib only — no web framework.  :class:`ReproService` wires the three
service layers together and owns their lifecycle:

* a :class:`~repro.service.store.ResultStore` (optional) attached under
  the process-wide ``SOLVER_CACHE`` so answers survive restarts,
* a :class:`~repro.service.scheduler.CoalescingScheduler` providing the
  bounded queue, duplicate coalescing, and batched execution,
* a ``ThreadingHTTPServer`` whose handler threads block in
  ``scheduler.submit`` (one OS thread per in-flight HTTP request —
  plenty for a planning service whose answers are microseconds once
  warm and coalesced when cold).

Routes::

    POST /v1/solve       {"te_core_days": 3e6, "case": "8-4-2-1", ...}
    POST /v1/simulate    {... , "strategy": "ml-opt-scale", "runs": 20}
    POST /v1/solve_batch {"requests": [<solve body>, ...]}  (order kept)
    GET  /healthz        liveness + queue/store/uptime introspection
    GET  /metrics        Prometheus text exposition (format 0.0.4)
    GET  /metrics.json   the process metrics registry (JSON summary)

Status codes: 200 success, 400 malformed body, 404 unknown route,
405 wrong method, 422 valid request whose solve diverged, 429 queue
full (with ``Retry-After``), 503 shutting down.  Success bodies are
:func:`~repro.service.api.canonical_json` bytes — deterministic, so
identical requests get identical bytes no matter which layer answered.

Observability: every request emits one structured JSON access-log line
(logger ``repro.service.access``, INFO) and a bucketed latency sample
(``service.request_seconds.<endpoint>``, :data:`LATENCY_BUCKETS` —
p50/p95/p99 on ``/metrics.json``, ``_bucket`` series on ``/metrics``).
With span recording on, each ``POST /v1/*`` opens a ``server.request``
span, adopting the client's ``traceparent`` when present, and the
scheduler/solver/simulator spans nest beneath it.
"""

from __future__ import annotations

import json
import logging
import math
import socket
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.memo import SOLVER_CACHE, publish_cache_metrics
from repro.obs.flightrec import FlightRecorder, stitch_spans
from repro.obs.logconf import ensure_configured, get_logger
from repro.obs.metrics import LATENCY_BUCKETS, METRICS
from repro.obs.promexport import PROMETHEUS_CONTENT_TYPE, prometheus_text
from repro.obs.slo import SlidingWindowRate
from repro.obs.sloengine import SLOEngine, SLOSpec
from repro.obs.spans import (
    TRACEPARENT_HEADER,
    current_context,
    get_span_recorder,
    parse_traceparent,
    set_span_recorder,
    span,
    span_to_dict,
)
from repro.core.batch_solve import resolve_batch_solve
from repro.service.api import (
    BUILDERS,
    BatchItemError,
    RequestError,
    build_solve_batch,
    canonical_json,
    run_solve_batch,
    solve_batch_payload,
)
from repro.service.scheduler import (
    CoalescingScheduler,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service.store import ResultStore
from repro.service.transport import keepalive_enabled
from repro.util.iteration import FixedPointDiverged

logger = get_logger("service.http")
access_logger = get_logger("service.access")

#: Default persistent-store location (under the working directory).
DEFAULT_STORE_PATH = ".repro-service/results.sqlite"
#: Hard cap on accepted request bodies (requests are tiny parameter sets).
MAX_BODY_BYTES = 1 << 20


class _HTTPServer(ThreadingHTTPServer):
    """`ThreadingHTTPServer` with a listen backlog sized for real load.

    socketserver's default accept backlog is 5: under open-loop bursts
    the kernel drops SYNs beyond that, and clients see ~1s retransmit
    stalls or resets *before the service's own backpressure can answer
    429*.  Admission control belongs to the bounded queue, not the
    accept backlog.

    Keep-alive shutdown: with persistent connections, handler threads
    park in ``rfile.readline()`` between requests — and this server
    runs ``daemon_threads=False`` so draining close joins every handler
    thread.  An idle kept-alive connection would block that join
    forever, so accepted sockets are tracked and ``server_close`` sends
    each one ``shutdown(SHUT_RD)``: parked readers see EOF and finish
    their connection loop, while in-flight *responses* still write out
    (the send side stays open) — the draining contract survives.
    """

    request_queue_size = 128

    #: Server-side half of the ``--no-keepalive`` escape hatch: when
    #: False every response carries ``Connection: close``.
    keepalive = True

    def __init__(self, *args, **kwargs):
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def get_request(self):
        request, client_address = super().get_request()
        with self._conns_lock:
            self._conns.add(request)
        return request, client_address

    def shutdown_request(self, request) -> None:
        with self._conns_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def server_close(self) -> None:
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass  # already disconnected; the handler is finishing
        super().server_close()


#: Default bound on the encoded-response cache (entries, not bytes —
#: responses are small canonical-JSON documents).
DEFAULT_ENCODED_CACHE_ENTRIES = 512


class _EncodedResponseCache:
    """Bounded LRU of canonical-JSON *bytes* keyed by canonical key.

    The solver memo / result store deduplicate the *computation*; this
    deduplicates the *serialization*: a repeat hit for a hot key skips
    ``canonical_json`` entirely and goes straight to ``sendall``.  Safe
    because a canonical key determines its payload (that determinism is
    the service's byte-identity contract, and the tests assert the
    cached bytes equal a fresh encode).
    """

    __slots__ = ("_entries", "_max_entries", "_lock")

    def __init__(self, max_entries: int = DEFAULT_ENCODED_CACHE_ENTRIES):
        self._entries: OrderedDict[object, bytes] = OrderedDict()
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()

    def get(self, key: object) -> bytes | None:
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
            return body

    def put(self, key: object, body: bytes) -> None:
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ReproService:
    """Long-lived optimization service: store + scheduler + HTTP server.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    queue_max / batch_max / jobs / retry_after:
        Forwarded to :class:`CoalescingScheduler`.
    store_path:
        Sqlite file for the persistent result store; ``None`` disables
        persistence (memory-only service).
    cache_max_entries:
        LRU bound installed on ``SOLVER_CACHE`` for the service's
        lifetime (``None`` leaves the current bound untouched).
    batch_solve:
        Drain same-batch ``/v1/solve`` entries through one vectorized
        ``batch_solve`` kernel pass instead of one scalar solve per
        worker.  ``None`` (default) defers to ``REPRO_BATCH_SOLVE``
        (on unless explicitly disabled).  Responses are bit-identical
        either way; this only changes how fast a burst drains.
    shard_id:
        Identity of this process inside a cluster topology (see
        :mod:`repro.service.cluster`); reported on ``/healthz`` so
        probes and operators can tell workers apart.  ``None`` means a
        standalone single-process service.
    request_delay_s:
        Fault-injection hook: sleep this long before dispatching each
        ``POST /v1/*`` request.  Only the crash-recovery tests (which
        need a worker provably *mid-request* when killed) and drain
        experiments set it; production paths leave it 0.
    slo:
        Declarative service-level objective: an ``"99.9:0.25s"`` spec
        string (availability percent : latency threshold), an
        :class:`~repro.obs.sloengine.SLOSpec`, or a fully configured
        :class:`~repro.obs.sloengine.SLOEngine` (tests use the latter
        to shrink the burn windows).  When set, every finished POST is
        classified good/bad, ``service.slo.*`` gauges are published,
        and ``/healthz`` reports ``ok``/``degraded``/``critical`` from
        the multi-window burn rate.  ``None`` (default) keeps the
        plain liveness healthz.
    slo_fast_window_s / slo_slow_window_s:
        Burn-rate window lengths when ``slo`` is a spec (ignored when
        an engine instance is passed).
    flight_capacity / flight_keep_slowest:
        Sizing of the in-memory flight recorder behind
        ``GET /v1/trace/<id>`` (active only while span recording is).
    keepalive:
        Server-side keep-alive switch.  ``None`` (default) defers to
        ``REPRO_KEEPALIVE`` (on unless explicitly disabled); ``False``
        sends ``Connection: close`` on every response — the debugging
        escape hatch behind ``repro serve --no-keepalive``.
    encoded_cache_entries:
        LRU bound on the encoded-response fast path (memoized canonical
        JSON bytes for hot keys); ``0`` disables the cache.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_max: int = 64,
        batch_max: int = 8,
        jobs: int | str | None = None,
        retry_after: float = 1.0,
        store_path: str | Path | None = DEFAULT_STORE_PATH,
        cache_max_entries: int | None = None,
        batch_solve: bool | None = None,
        shard_id: int | None = None,
        request_delay_s: float = 0.0,
        slo: str | SLOSpec | SLOEngine | None = None,
        slo_fast_window_s: float | None = None,
        slo_slow_window_s: float | None = None,
        flight_capacity: int = 256,
        flight_keep_slowest: int = 32,
        keepalive: bool | None = None,
        encoded_cache_entries: int = DEFAULT_ENCODED_CACHE_ENTRIES,
    ):
        # The repro logger tree drops records without a handler
        # (propagate=False); make sure handler/scheduler threads log even
        # when the embedding program never configured logging.
        ensure_configured()
        # Access logs are their own channel: one INFO record per request
        # regardless of the global verbosity (the tree defaults to
        # WARNING).  Silence with REPRO_LOG=repro.service.access=WARNING.
        if access_logger.level == logging.NOTSET:
            access_logger.setLevel(logging.INFO)
        self.store = (
            ResultStore(store_path) if store_path is not None else None
        )
        if self.store is not None:
            SOLVER_CACHE.attach_store(self.store)
        if cache_max_entries is not None:
            SOLVER_CACHE.set_max_entries(cache_max_entries)
        self.scheduler = CoalescingScheduler(
            queue_max=queue_max,
            batch_max=batch_max,
            jobs=jobs,
            retry_after=retry_after,
            batch_runners=(
                {"solve": run_solve_batch}
                if resolve_batch_solve(batch_solve)
                else None
            ),
        )
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = False  # shutdown waits for handlers
        self._httpd.service = self  # type: ignore[attr-defined]
        self._httpd.keepalive = keepalive_enabled(keepalive)
        self._encoded = (
            _EncodedResponseCache(encoded_cache_entries)
            if encoded_cache_entries > 0
            else None
        )
        self._thread: threading.Thread | None = None
        self._closed = False
        self.shard_id = shard_id
        self.request_delay_s = float(request_delay_s)
        self._started_at = time.monotonic()
        # Live SLO view: trailing-window request / shed rates mirrored
        # into gauges on every POST (lifetime counters answer "how much",
        # these answer "how hot right now").
        self._requests_window = SlidingWindowRate()
        self._sheds_window = SlidingWindowRate()
        self.slo_engine = _resolve_slo_engine(
            slo, fast_window_s=slo_fast_window_s, slow_window_s=slo_slow_window_s
        )
        # Flight recorder: wrap the installed span recorder so completed
        # request traces stay queryable in memory (GET /v1/trace/<id>).
        # The JSONL sink keeps receiving every span through the wrapped
        # recorder; with recording off the wrapper never sees a span.
        self.flight = FlightRecorder(
            get_span_recorder(),
            capacity=flight_capacity,
            keep_slowest=flight_keep_slowest,
        )
        self._flight_installed = False
        if self.flight.active:
            set_span_recorder(self.flight)
            self._flight_installed = True

    # ------------------------------------------------------------ runtime

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve in a background thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("repro.service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        logger.info("repro.service listening on %s", self.url)
        self._httpd.serve_forever()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting, drain (or abandon) queued work, release all.

        Safe to call more than once and from signal/finally paths.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()  # stop serve_forever; waits for handlers
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self.scheduler.close(drain=drain)
        if self._flight_installed:
            # Restore the wrapped recorder — but only if our wrapper is
            # still the installed one (a later service or a `recording()`
            # scope may have layered on top; leave their stack alone).
            if get_span_recorder() is self.flight:
                set_span_recorder(self.flight.inner)
            self._flight_installed = False
        if self.store is not None:
            SOLVER_CACHE.detach_store(self.store)
            self.store.close()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ responses

    def encoded_response(self, key: object, payload: dict) -> bytes:
        """Canonical-JSON bytes for a successful response, memoized.

        A canonical key fully determines its success payload (the
        byte-identity contract), so hot keys skip re-serialization:
        ``service.encoded.hits`` / ``.misses`` count the split.
        """
        cache = self._encoded
        if cache is None:
            return canonical_json(payload)
        body = cache.get(key)
        if body is None:
            body = canonical_json(payload)
            cache.put(key, body)
            METRICS.counter("service.encoded.misses").inc()
        else:
            METRICS.counter("service.encoded.hits").inc()
        return body

    # -------------------------------------------------------- introspection

    def observe_window(self, *, outcome: str, elapsed: float) -> None:
        """Record one finished POST in the sliding SLO windows.

        Updates ``service.window_rps`` (requests/s over the trailing
        window), ``service.window_shed_rate`` (shed fraction of the same
        window's requests), and ``service.window_saturated`` (1 when the
        window's event cap is dropping in-window events, i.e. the rate
        gauges are floors, not measurements).  With an SLO configured,
        also classifies the request against the spec and republishes the
        ``service.slo.*`` gauges.
        """
        self._requests_window.record()
        if outcome == "shed":
            self._sheds_window.record()
        total = self._requests_window.count()
        METRICS.gauge("service.window_rps").set(
            round(self._requests_window.rate(), 3)
        )
        METRICS.gauge("service.window_shed_rate").set(
            round(self._sheds_window.count() / total, 4) if total else 0.0
        )
        METRICS.gauge("service.window_saturated").set(
            1.0 if self._requests_window.saturated() else 0.0
        )
        if self.slo_engine is not None:
            self.slo_engine.record(
                good=self.slo_engine.classify(outcome=outcome, elapsed_s=elapsed)
            )
            self.slo_engine.publish(METRICS)

    def trace_payload(self, trace_id: str) -> dict | None:
        """``GET /v1/trace/<id>`` body, or ``None`` when unknown.

        Spans come back in :func:`~repro.obs.flightrec.stitch_spans`
        order — the same canonical order the coordinator's fan-out and
        the offline file stitch produce, so all three views of one trace
        are bit-identical.
        """
        spans = self.flight.get(trace_id) if self.flight.active else None
        if not spans:
            return None
        ordered = stitch_spans(spans)
        payload: dict = {
            "trace_id": trace_id,
            "span_count": len(ordered),
            "spans": [span_to_dict(record) for record in ordered],
        }
        if self.shard_id is not None:
            payload["shards"] = [self.shard_id]
        return payload

    def recent_payload(self, *, limit: int = 20) -> dict:
        """``GET /v1/debug/recent`` body: what just happened here."""
        payload: dict = {
            "recording": self.flight.active,
            "flight": self.flight.stats(),
            "recent": self.flight.recent(limit),
            "slowest": self.flight.slowest(limit),
        }
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return payload

    def healthz(self) -> dict:
        """Liveness + health payload served on ``GET /healthz``.

        One probe for everyone: the cluster supervisor's health checks,
        external load balancers, and operators all read the same body —
        liveness, queue pressure, uptime, and (for a cluster worker)
        which shard this process is.  With an SLO configured the status
        escalates from plain liveness to burn-rate health:
        ``ok``/``degraded``/``critical`` plus a full ``slo`` section
        (``draining`` still wins during shutdown).
        """
        stats = SOLVER_CACHE.stats()
        status = "draining" if self._closed else "ok"
        slo_view = None
        if self.slo_engine is not None:
            slo_view = self.slo_engine.evaluate()
            if status == "ok":
                status = slo_view["state"]
        payload: dict = {
            "status": status,
            "role": "single" if self.shard_id is None else "worker",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue_depth": self.scheduler.queue_depth(),
            "queue_max": self.scheduler.queue_max,
            "in_flight": self.scheduler.in_flight(),
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "size": stats.size,
                "evictions": stats.evictions,
                "persist_hits": stats.persist_hits,
            },
            "store": {
                "attached": self.store is not None,
                "entries": len(self.store) if self.store is not None else 0,
                "version": self.store.version if self.store is not None else None,
            },
        }
        if slo_view is not None:
            payload["slo"] = slo_view
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return payload


def _resolve_slo_engine(
    slo: str | SLOSpec | SLOEngine | None,
    *,
    fast_window_s: float | None,
    slow_window_s: float | None,
) -> SLOEngine | None:
    if slo is None or isinstance(slo, SLOEngine):
        return slo
    spec = SLOSpec.parse(slo) if isinstance(slo, str) else slo
    kwargs: dict = {}
    if fast_window_s is not None:
        kwargs["fast_window_s"] = float(fast_window_s)
    if slow_window_s is not None:
        kwargs["slow_window_s"] = float(slow_window_s)
    return SLOEngine(spec, **kwargs)


def _current_trace_id() -> str | None:
    """Trace id of the live ``server.request`` span (None when off)."""
    context = current_context()
    return context.trace_id if context is not None else None


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the owning :class:`ReproService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro.service/1.0"
    #: TCP_NODELAY: on a persistent connection, Nagle + delayed ACK
    #: turns the headers-then-body write pattern into ~40 ms tail stalls.
    disable_nagle_algorithm = True

    #: Status of the last response sent on this connection (access log).
    _status = 0

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    # ---------------------------------------------------------- responses

    def _respond(
        self,
        status: int,
        body: bytes,
        *,
        headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if not getattr(self.server, "keepalive", True):
            self.send_header("Connection", "close")
            self.close_connection = True
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        METRICS.counter(f"service.responses.{status}").inc()

    def _access_log(
        self, method: str, elapsed: float, trace_id: str | None
    ) -> None:
        """One structured JSON line per request (machine-parseable)."""
        record = {
            "method": method,
            "path": self.path,
            "status": self._status,
            "duration_ms": round(elapsed * 1e3, 3),
            "client": self.address_string(),
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        access_logger.info("%s", json.dumps(record, sort_keys=True))

    def _respond_json(
        self, status: int, payload: dict, *, headers: dict[str, str] | None = None
    ) -> None:
        self._respond(status, canonical_json(payload), headers=headers)

    def _error(self, status: int, message: str, **extra) -> None:
        self._respond_json(status, {"error": message, **extra})

    # ------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        start = time.perf_counter()
        try:
            if self.path == "/healthz":
                self._respond_json(200, self.service.healthz())
            elif self.path == "/metrics":
                publish_cache_metrics()
                self._respond(
                    200,
                    prometheus_text(registry=METRICS).encode("utf-8"),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            elif self.path == "/metrics.json":
                publish_cache_metrics()
                self._respond_json(200, {"metrics": METRICS.summary()})
            elif self.path.startswith("/v1/trace/"):
                trace_id = self.path[len("/v1/trace/"):]
                payload = self.service.trace_payload(trace_id)
                if payload is None:
                    detail = (
                        "" if self.service.flight.active
                        else " (span recording is off)"
                    )
                    self._error(
                        404, f"no retained trace {trace_id!r}{detail}"
                    )
                else:
                    self._respond_json(200, payload)
            elif self.path == "/v1/debug/recent":
                self._respond_json(200, self.service.recent_payload())
            elif self.path in ("/v1/solve", "/v1/simulate", "/v1/solve_batch"):
                self._error(405, f"use POST for {self.path}")
            else:
                self._error(404, f"unknown path {self.path!r}")
        finally:
            self._access_log("GET", time.perf_counter() - start, None)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        parent = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        start = time.perf_counter()
        with span(
            "server.request",
            parent=parent,
            attributes={"http.method": "POST", "http.path": self.path},
        ) as live:
            try:
                self._handle_post()
            finally:
                elapsed = time.perf_counter() - start
                trace_id = None
                if live is not None:
                    live.set_attribute("http.status", self._status)
                    trace_id = live.context.trace_id
                self._access_log("POST", elapsed, trace_id)

    def _handle_post(self) -> None:
        # Read the body before routing: on a kept-alive connection an
        # early error response must still consume the request's bytes,
        # or they would be parsed as the *next* request's start line.
        # When the body cannot be consumed (unparseable or oversized
        # Content-Length), the connection is closed instead.
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            self._error(400, "bad Content-Length")
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._error(400, f"body too large ({length} bytes)")
            return
        raw_body = self.rfile.read(length)
        if not self.path.startswith("/v1/"):
            self._error(404, f"unknown path {self.path!r}")
            return
        endpoint = self.path[len("/v1/"):]
        builder = BUILDERS.get(endpoint)
        if builder is None and endpoint != "solve_batch":
            self._error(404, f"unknown endpoint {endpoint!r}")
            return
        try:
            body = json.loads(raw_body or b"{}")
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        if self.service.request_delay_s > 0.0:
            time.sleep(self.service.request_delay_s)
        if endpoint == "solve_batch":
            self._handle_solve_batch(body)
            return
        METRICS.counter(f"service.requests.{endpoint}").inc()
        start = time.perf_counter()
        try:
            key, compute = builder(body)
        except RequestError as exc:
            self._error(400, str(exc))
            return
        # Outcome classification for the per-endpoint × per-outcome
        # telemetry: shed (429) / coalesced (attached to an in-flight
        # duplicate) / ok (a fresh execution) / cache_hit (answered from
        # memo or store without executing) / error.
        info: dict = {}
        outcome = "error"
        try:
            try:
                payload = self.service.scheduler.submit(
                    key, compute, endpoint=endpoint, info=info
                )
            except ServiceOverloaded as exc:
                outcome = "shed"
                # Body carries the honest float estimate; the header is
                # HTTP delta-seconds (an integer), rounded up so clients
                # honoring the header never retry *early*.
                retry_after = round(exc.retry_after, 3)
                self._respond_json(
                    429,
                    {"error": str(exc), "retry_after": retry_after},
                    headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
                return
            except ServiceClosed as exc:
                self._error(503, str(exc))
                return
            except FixedPointDiverged as exc:
                self._error(422, f"solver diverged: {exc}")
                return
            except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
                logger.exception("unhandled service error")
                self._error(500, f"{type(exc).__name__}: {exc}")
                return
            if info.get("coalesced"):
                outcome = "coalesced"
            elif getattr(compute, "executed", True):
                outcome = "ok"
            else:
                outcome = "cache_hit"
        finally:
            elapsed = time.perf_counter() - start
            # Bucketed SLO latency: the cumulative `le` series on
            # GET /metrics, p50/p95/p99 on /metrics.json.  The aggregate
            # per-endpoint series is what dashboards alert on; the
            # per-outcome split shows *why* the latency is what it is
            # (cache hits are µs, fresh executions are ms–s).  The trace
            # id rides along as the bucket's exemplar, linking a latency
            # spike on /metrics.json to a fetchable /v1/trace/<id>.
            exemplar = _current_trace_id()
            METRICS.histogram(
                f"service.request_seconds.{endpoint}", buckets=LATENCY_BUCKETS
            ).observe(elapsed, exemplar=exemplar)
            METRICS.histogram(
                f"service.request_seconds.{endpoint}.{outcome}",
                buckets=LATENCY_BUCKETS,
            ).observe(elapsed, exemplar=exemplar)
            METRICS.counter(f"service.outcomes.{endpoint}.{outcome}").inc()
            self.service.observe_window(outcome=outcome, elapsed=elapsed)
        self._respond(200, self.service.encoded_response(key, payload))

    def _handle_solve_batch(self, body) -> None:
        """``POST /v1/solve_batch``: a whole sweep in one request.

        Items are validated with the ``/v1/solve`` rules, admitted to the
        scheduler atomically (all distinct keys fit the queue or the
        batch is shed as one 429), executed with duplicate coalescing
        and vectorized drain, and answered in request order.  Item
        payloads are byte-for-byte the payloads the same bodies would
        get from individual ``/v1/solve`` requests — the invariant the
        cluster's scatter/gather path relies on.
        """
        endpoint = "solve_batch"
        METRICS.counter(f"service.requests.{endpoint}").inc()
        start = time.perf_counter()
        try:
            pairs = build_solve_batch(body)
        except BatchItemError as exc:
            self._respond_json(400, {"error": str(exc), "index": exc.index})
            return
        except RequestError as exc:
            self._error(400, str(exc))
            return
        outcome = "error"
        try:
            try:
                results = self.service.scheduler.submit_many(
                    pairs, endpoint=endpoint
                )
            except ServiceOverloaded as exc:
                outcome = "shed"
                retry_after = round(exc.retry_after, 3)
                self._respond_json(
                    429,
                    {"error": str(exc), "retry_after": retry_after},
                    headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
                return
            except ServiceClosed as exc:
                self._error(503, str(exc))
                return
            except FixedPointDiverged as exc:
                index = getattr(exc, "batch_index", None)
                extra = {} if index is None else {"index": index}
                self._respond_json(
                    422, {"error": f"solver diverged: {exc}", **extra}
                )
                return
            except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
                logger.exception("unhandled service error")
                self._error(500, f"{type(exc).__name__}: {exc}")
                return
            if any(getattr(compute, "executed", True) for _, compute in pairs):
                outcome = "ok"
            else:
                outcome = "cache_hit"
        finally:
            elapsed = time.perf_counter() - start
            exemplar = _current_trace_id()
            METRICS.histogram(
                f"service.request_seconds.{endpoint}", buckets=LATENCY_BUCKETS
            ).observe(elapsed, exemplar=exemplar)
            METRICS.histogram(
                f"service.request_seconds.{endpoint}.{outcome}",
                buckets=LATENCY_BUCKETS,
            ).observe(elapsed, exemplar=exemplar)
            METRICS.counter(f"service.outcomes.{endpoint}.{outcome}").inc()
            METRICS.histogram("service.solve_batch_items").observe(
                len(body.get("requests", [])) if isinstance(body, dict) else 0
            )
            self.service.observe_window(outcome=outcome, elapsed=elapsed)
        # Batch responses memoize under the ordered tuple of item keys:
        # a repeated sweep (the loadgen's hot-key skew, the figures'
        # repeated grids) re-sends the exact bytes without re-encoding.
        batch_key = ("solve_batch", tuple(key for key, _ in pairs))
        self._respond(
            200,
            self.service.encoded_response(
                batch_key, solve_batch_payload(results)
            ),
        )
