"""Sharded multi-process service: coordinator + worker topology.

The single-process :class:`~repro.service.server.ReproService` is
GIL-bound: Algorithm 1 solves are pure-python fixed-point iterations, so
one process saturates one core no matter how many handler threads the
scheduler feeds.  :class:`ClusterService` turns the service into a
multi-core system without changing its contract:

* **N workers**, each a full ``ReproService`` subprocess (own
  SolverCache, own sqlite shard, own scheduler) managed by a
  :class:`~repro.service.supervisor.WorkerSupervisor` — spawn, health
  probes, restart-on-crash with bounded backoff, draining SIGTERM.
* **A coordinator HTTP front-end** (this class) that owns no solver at
  all.  It validates request bodies with the same
  :mod:`repro.service.api` builders the workers use (so malformed
  requests get byte-identical 400s without a network hop), derives the
  canonical key, and routes by consistent hash
  (:class:`~repro.service.hashring.HashRing`) so every key always lands
  on the worker that owns — and has cached — it.
* **Scatter/gather ``POST /v1/solve_batch``**: the coordinator
  partitions the batch by owning shard, fans the slices out
  concurrently (each worker drains its slice through the vectorized
  ``batch_solve`` kernel), and reassembles results in request order.

Byte-identity invariant (ROADMAP): responses are identical canonical
JSON regardless of shard count.  ``solve``/``simulate`` responses are
proxied as raw bytes; ``solve_batch`` responses are reassembled from
worker JSON, which is safe because ``json`` round-trips floats exactly
and :func:`~repro.service.api.canonical_json` is deterministic.  The
equivalence-matrix test asserts the bytes (and the worker-side span-tree
signatures) match across 1/2/4 workers, cold and warm cache.

Tracing: the coordinator forwards the *client's* ``traceparent``
unchanged to workers, so a worker's ``server.request`` span derives the
same deterministic ids it would in a single-process topology; the
coordinator's own ``coordinator.request`` / ``cluster.scatter`` spans
join the same trace but live in the coordinator's recorder, and their
placement attributes (``cluster.shard`` etc.) are excluded from
signatures via :data:`repro.obs.spans.TOPOLOGY_ATTRIBUTES`.

Failure handling: a request that hits a dead worker (connection
refused/reset) triggers a synchronous
:meth:`~repro.service.supervisor.WorkerSupervisor.restart_now` and is
replayed against the replacement — safe because solves are idempotent
by canonical key — up to ``retry_attempts`` times before the
coordinator answers 503.  Worker 429s/errors pass through verbatim
(batch slices: with the item index remapped from slice-local to global).

Metrics: the coordinator's own registry uses disjoint ``cluster.*``
names (per-shard request/retry/error counters, restart counts); its
``GET /metrics.json`` *merges* the workers' ``service.*``/``memo.*``
series — scalars summed, histogram summaries combined (count/sum summed,
min/max widened, percentiles upper-bounded by the worst shard) — so
existing consumers (the load generator's delta metrics) work against a
cluster unchanged.
"""

from __future__ import annotations

import json
import math
import time
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler
from pathlib import Path
from typing import Any, Mapping

from repro.obs.flightrec import stitch_spans
from repro.obs.logconf import ensure_configured, get_logger
from repro.obs.metrics import METRICS
from repro.obs.promexport import PROMETHEUS_CONTENT_TYPE, prometheus_text
from repro.obs.sloengine import merge_slo, merge_slo_gauges
from repro.obs.spans import (
    TRACEPARENT_HEADER,
    parse_traceparent,
    span,
    span_from_dict,
    span_to_dict,
)
from repro.service.api import (
    BUILDERS,
    BatchItemError,
    RequestError,
    build_solve_batch,
    canonical_json,
    solve_batch_payload,
)
from repro.service.client import ServiceClient, _retryable_transport_error
from repro.service.hashring import DEFAULT_REPLICAS, HashRing
from repro.service.server import MAX_BODY_BYTES, _HTTPServer
from repro.service.supervisor import WorkerSupervisor
from repro.service.transport import TRANSPORT, keepalive_enabled

logger = get_logger("service.cluster")
access_logger = get_logger("service.access")

#: Default directory for per-shard sqlite stores (``shard-<i>.sqlite``).
DEFAULT_STORE_DIR = ".repro-service"
#: Per-forward HTTP timeout — generous, cold sweeps solve for seconds.
FORWARD_TIMEOUT_S = 120.0


class WorkerUnavailable(RuntimeError):
    """A shard stayed unreachable through every restart-and-retry."""

    def __init__(self, shard: int, attempts: int):
        super().__init__(
            f"worker shard={shard} unavailable after {attempts} attempts"
        )
        self.shard = int(shard)


class _SliceFailure(RuntimeError):
    """One scatter slice answered non-200; carries the verbatim reply."""

    def __init__(
        self,
        shard: int,
        status: int,
        headers: Mapping[str, str],
        body: bytes,
        indices: list[int],
    ):
        super().__init__(f"slice on shard {shard} answered {status}")
        self.shard = shard
        self.status = int(status)
        self.headers = dict(headers)
        self.body = body
        self.indices = indices


class ClusterService:
    """Coordinator front-end over ``workers`` ReproService subprocesses.

    Parameters mirror :class:`~repro.service.server.ReproService` where
    they configure the workers (``queue_max``, ``batch_max``, ``jobs``,
    ``cache_max_entries``, ``batch_solve``, ``request_delay_s``), plus:

    store_dir:
        Directory for the per-shard sqlite stores
        (``shard-<i>.sqlite``); ``None`` runs the workers memory-only.
    spans_dir:
        Directory for per-worker span JSONL sinks
        (``spans-shard<i>.jsonl``); ``None`` disables worker-side span
        recording.
    retry_attempts:
        Total tries per forward (first attempt included) before a shard
        is declared unavailable (HTTP 503).
    probe_interval_s:
        Supervisor health-check cadence.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        replicas: int = DEFAULT_REPLICAS,
        queue_max: int = 64,
        batch_max: int = 8,
        jobs: int | None = None,
        store_dir: str | Path | None = DEFAULT_STORE_DIR,
        cache_max_entries: int | None = None,
        batch_solve: bool | None = None,
        spans_dir: str | Path | None = None,
        request_delay_s: float = 0.0,
        slo: str | None = None,
        slo_fast_window_s: float | None = None,
        slo_slow_window_s: float | None = None,
        retry_attempts: int = 3,
        probe_interval_s: float = 1.0,
        forward_timeout_s: float = FORWARD_TIMEOUT_S,
        keepalive: bool | None = None,
    ):
        ensure_configured()
        import logging

        if access_logger.level == logging.NOTSET:
            access_logger.setLevel(logging.INFO)
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.n_workers = int(workers)
        self.retry_attempts = max(1, int(retry_attempts))
        self.forward_timeout_s = float(forward_timeout_s)
        self.ring = HashRing(self.n_workers, replicas=replicas)
        self.supervisor = WorkerSupervisor(
            self.n_workers,
            worker_args=self._worker_args(
                queue_max=queue_max,
                batch_max=batch_max,
                jobs=jobs,
                store_dir=store_dir,
                cache_max_entries=cache_max_entries,
                batch_solve=batch_solve,
                spans_dir=spans_dir,
                request_delay_s=request_delay_s,
                slo=slo,
                slo_fast_window_s=slo_fast_window_s,
                slo_slow_window_s=slo_slow_window_s,
                keepalive=keepalive,
            ),
            probe_interval_s=probe_interval_s,
        )
        #: Outbound keep-alive for forwards/probes (None defers to env).
        self.keepalive = keepalive
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.n_workers),
            thread_name_prefix="repro-cluster-scatter",
        )
        self._httpd = _HTTPServer((host, port), _CoordinatorHandler)
        self._httpd.daemon_threads = False
        self._httpd.service = self  # type: ignore[attr-defined]
        self._httpd.keepalive = keepalive_enabled(keepalive)
        self._thread: threading.Thread | None = None
        self._closed = False
        self._started_at = time.monotonic()

    @staticmethod
    def _worker_args(
        *,
        queue_max: int,
        batch_max: int,
        jobs: int | None,
        store_dir: str | Path | None,
        cache_max_entries: int | None,
        batch_solve: bool | None,
        spans_dir: str | Path | None,
        request_delay_s: float,
        slo: str | None,
        slo_fast_window_s: float | None,
        slo_slow_window_s: float | None,
        keepalive: bool | None,
    ) -> list[str]:
        args = ["--queue-max", str(queue_max), "--batch-max", str(batch_max)]
        if jobs is not None:
            args += ["--jobs", str(jobs)]
        if store_dir is None:
            args += ["--no-store"]
        else:
            args += ["--store-dir", str(store_dir)]
        if cache_max_entries is not None:
            args += ["--cache-max-entries", str(cache_max_entries)]
        if batch_solve is False:
            args += ["--no-batch-solve"]
        if spans_dir is not None:
            args += ["--spans-dir", str(spans_dir)]
        if request_delay_s > 0.0:
            args += ["--request-delay", str(request_delay_s)]
        if slo is not None:
            args += ["--slo", str(slo)]
            if slo_fast_window_s is not None:
                args += ["--slo-fast-window", str(slo_fast_window_s)]
            if slo_slow_window_s is not None:
                args += ["--slo-slow-window", str(slo_slow_window_s)]
        if keepalive is False:
            args += ["--no-keepalive"]
        return args

    # ------------------------------------------------------------ lifecycle

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterService":
        """Spawn the workers, then serve in a background thread."""
        self.supervisor.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-cluster-http",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "cluster coordinator on %s (%d workers)", self.url, self.n_workers
        )
        return self

    def serve_forever(self) -> None:
        """Spawn the workers and serve on the calling thread."""
        self.supervisor.start()
        logger.info(
            "cluster coordinator on %s (%d workers)", self.url, self.n_workers
        )
        self._httpd.serve_forever()

    def close(self) -> None:
        """Draining shutdown: stop accepting, finish in-flight, stop workers.

        ``ThreadingHTTPServer.shutdown`` waits for the handler threads
        (``daemon_threads = False``), so every accepted request finishes
        its scatter/gather before the workers receive SIGTERM — the
        workers then drain their own queues before exiting.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._pool.shutdown(wait=True)
        self.supervisor.stop()
        # The workers are gone; drop their pooled upstream channels so
        # the process-wide pool doesn't sit on sockets to dead ports.
        for handle in self.supervisor.workers:
            TRANSPORT.invalidate(handle.url)

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ forwarding

    def shard_for_key(self, key) -> int:
        return self.ring.shard_for_key(key)

    def forward(
        self,
        shard: int,
        path: str,
        body: bytes,
        *,
        traceparent: str | None = None,
    ) -> tuple[int, Mapping[str, str], bytes]:
        """POST raw ``body`` bytes to ``shard``, restart-and-retry on crash.

        Returns the worker's verbatim ``(status, headers, bytes)``.  A
        connection-level failure (the worker died, or is mid-restart)
        synchronously replaces the process and replays the request —
        solves are idempotent by canonical key, so a replay can at worst
        recompute a result the dead worker never persisted.

        Forwards ride the pooled transport: each shard effectively gets
        a persistent upstream channel that survives across batches; the
        supervisor invalidates a restarted shard's pool, so the replay
        here always builds a fresh channel to the replacement process.
        """
        handle = self.supervisor.workers[shard]
        METRICS.counter(f"cluster.shard.{shard}.requests").inc()
        headers = {"Content-Type": "application/json"}
        if traceparent is not None:
            headers[TRACEPARENT_HEADER] = traceparent
        last_error: Exception | None = None
        for attempt in range(self.retry_attempts):
            port_before = handle.port
            try:
                return TRANSPORT.request(
                    "POST",
                    f"{handle.url}{path}",
                    body=body,
                    headers=headers,
                    timeout=self.forward_timeout_s,
                    keepalive=self.keepalive,
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                if not _retryable_transport_error(exc):
                    raise
                last_error = exc
                METRICS.counter(f"cluster.shard.{shard}.retries").inc()
                logger.warning(
                    "shard %d transport failure (%s); restart-and-retry "
                    "%d/%d", shard, type(exc).__name__, attempt + 1,
                    self.retry_attempts,
                )
                if attempt + 1 < self.retry_attempts:
                    self.supervisor.restart_now(
                        shard, failed_port=port_before
                    )
        METRICS.counter(f"cluster.shard.{shard}.errors").inc()
        raise WorkerUnavailable(shard, self.retry_attempts) from last_error

    # --------------------------------------------------------- introspection

    def _fan_out_get(self, path: str) -> list[tuple[int, Any]]:
        """Concurrent GET to every live worker; best-effort per shard.

        Returns ``(shard, parsed_json | None)`` pairs in shard order —
        a dead, mid-restart, or non-200 shard contributes ``None``.
        Raw transport (not :class:`ServiceClient`) so fleet
        introspection never emits ``client.request`` spans of its own —
        but it shares the same per-worker pooled channels the forwards
        keep warm.
        """

        def fetch(handle) -> Any:
            if not handle.alive:
                return None
            try:
                status, _, raw = TRANSPORT.request(
                    "GET",
                    f"{handle.url}{path}",
                    timeout=5.0,
                    keepalive=self.keepalive,
                )
                if status != 200:
                    return None
                return json.loads(raw)
            except Exception:  # noqa: BLE001 - introspection is best-effort
                return None

        futures = [
            (handle.shard, self._pool.submit(fetch, handle))
            for handle in self.supervisor.workers
        ]
        return [(shard, future.result()) for shard, future in futures]

    def trace_payload(self, trace_id: str) -> dict | None:
        """``GET /v1/trace/<id>``: gather fragments fleet-wide, stitch.

        Every worker that retains spans of ``trace_id`` contributes its
        fragment; :func:`~repro.obs.flightrec.stitch_spans` imposes the
        canonical order, making the stitched result bit-identical to an
        offline merge of the per-shard JSONL files (the equivalence
        matrix asserts exactly that, via ``span_tree_signature``).
        """
        fragments = []
        shards = []
        for shard, payload in self._fan_out_get(f"/v1/trace/{trace_id}"):
            if not payload:
                continue
            spans = [span_from_dict(d) for d in payload.get("spans", ())]
            if spans:
                shards.append(shard)
                fragments.extend(spans)
        if not fragments:
            return None
        ordered = stitch_spans(fragments)
        return {
            "trace_id": trace_id,
            "span_count": len(ordered),
            "shards": shards,
            "spans": [span_to_dict(record) for record in ordered],
        }

    def recent_payload(self, *, limit: int = 20) -> dict:
        """``GET /v1/debug/recent``: the fleet's recent/slowest traces."""
        recent: list[dict] = []
        slowest: list[dict] = []
        recording = False
        for shard, payload in self._fan_out_get("/v1/debug/recent"):
            if not payload:
                continue
            recording = recording or bool(payload.get("recording"))
            for target, key in ((recent, "recent"), (slowest, "slowest")):
                for item in payload.get(key, ()):
                    item = dict(item)
                    item["shard"] = shard
                    target.append(item)
        recent.sort(key=lambda i: i.get("end_unix", 0.0), reverse=True)
        slowest.sort(key=lambda i: i.get("duration_s", 0.0), reverse=True)
        return {
            "role": "coordinator",
            "recording": recording,
            "recent": recent[:limit],
            "slowest": slowest[:limit],
        }

    def healthz(self) -> dict:
        """Coordinator liveness: topology, shard map, per-worker health.

        The same probe the supervisor uses against each worker is folded
        in (bounded by a short timeout), so operators see queue pressure
        across the fleet from one endpoint.  Workers running with an SLO
        report their ``slo`` sections, which merge into a fleet-wide
        burn-rate state (window counts summed, burns recomputed) that
        becomes the coordinator's own status.
        """
        workers = []
        total_depth = 0
        slo_sections: list[dict] = []
        for entry in self.supervisor.liveness():
            if entry["alive"]:
                try:
                    probe = ServiceClient(
                        entry["url"], timeout=2.0, keepalive=self.keepalive
                    ).healthz()
                    entry["status"] = probe.get("status")
                    entry["queue_depth"] = probe.get("queue_depth", 0)
                    entry["uptime_s"] = probe.get("uptime_s")
                    total_depth += int(entry["queue_depth"] or 0)
                    if probe.get("slo"):
                        slo_sections.append(probe["slo"])
                except Exception:  # noqa: BLE001 - probe is best-effort
                    entry["status"] = "unreachable"
            else:
                entry["status"] = "restarting"
            workers.append(entry)
        status = "draining" if self._closed else "ok"
        fleet_slo = merge_slo(slo_sections)
        if fleet_slo is not None and status == "ok":
            status = fleet_slo["state"]
        payload = {
            "status": status,
            "role": "coordinator",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue_depth": total_depth,
            "shard_map": {
                "shards": self.ring.n_shards,
                "replicas": self.ring.replicas,
                "algorithm": "consistent-hash/sha256",
            },
            "workers": workers,
        }
        if fleet_slo is not None:
            payload["slo"] = fleet_slo
        return payload

    def merged_metrics(self) -> dict[str, Any]:
        """Fleet-wide metrics view for ``GET /metrics.json``.

        Worker series are combined under their original names — scalars
        summed; histogram summaries merged with count/sum summed,
        min/max widened, and percentiles taken as the max across shards
        (an upper bound: the fleet's p99 is never better than its worst
        shard's) — then the coordinator's own ``cluster.*`` series are
        overlaid.  Consumers written against a single process (the load
        generator's before/after deltas) therefore read a cluster the
        same way.
        """
        merged: dict[str, Any] = {}
        slo_gauges: list[dict[str, float]] = []
        for handle in self.supervisor.workers:
            if not handle.alive:
                continue
            try:
                summary = ServiceClient(
                    handle.url, timeout=5.0, keepalive=self.keepalive
                ).metrics()
            except Exception:  # noqa: BLE001 - a mid-restart shard is fine
                continue
            worker_slo: dict[str, float] = {}
            for name, value in summary.get("metrics", {}).items():
                if isinstance(value, Mapping):
                    merged[name] = _merge_histogram(merged.get(name), value)
                elif isinstance(value, (int, float)):
                    if name.startswith("service.slo."):
                        # Burn rates and the state encoding don't sum;
                        # reduced properly below from the raw counts.
                        worker_slo[name] = float(value)
                        continue
                    base = merged.get(name, 0.0)
                    if not isinstance(base, (int, float)):
                        base = 0.0
                    merged[name] = float(base) + float(value)
            if worker_slo:
                slo_gauges.append(worker_slo)
        merged.update(merge_slo_gauges(slo_gauges))
        # Overlay only the coordinator's own series: anything else in
        # this process's registry (e.g. service.* counters from an
        # in-process ReproService in the same interpreter) would clobber
        # the workers' summed values.  ``service.transport.*`` is the
        # exception: workers make no outbound calls, so those series
        # describe the coordinator's upstream channels and belong in the
        # fleet view.
        merged.update(
            {
                name: value
                for name, value in METRICS.summary().items()
                if name.startswith(("cluster.", "service.transport."))
            }
        )
        return merged


def _merge_histogram(
    base: Mapping[str, Any] | None, update: Mapping[str, Any]
) -> dict[str, Any]:
    if base is None:
        return dict(update)
    out = dict(base)
    out["count"] = base.get("count", 0) + update.get("count", 0)
    out["sum"] = base.get("sum", 0.0) + update.get("sum", 0.0)
    for field, pick in (("min", min), ("max", max)):
        a, b = base.get(field, math.nan), update.get(field, math.nan)
        finite = [v for v in (a, b) if isinstance(v, (int, float)) and not math.isnan(v)]
        out[field] = pick(finite) if finite else math.nan
    for field in ("p50", "p95", "p99"):
        a, b = base.get(field, math.nan), update.get(field, math.nan)
        finite = [v for v in (a, b) if isinstance(v, (int, float)) and not math.isnan(v)]
        out[field] = max(finite) if finite else math.nan
    incoming = update.get("exemplars")
    if incoming:
        # Fleet exemplar per bucket: whichever shard saw the worse one.
        combined = dict(base.get("exemplars") or {})
        for bound, cell in incoming.items():
            current = combined.get(bound)
            if current is None or cell.get("value", 0.0) >= current.get(
                "value", 0.0
            ):
                combined[bound] = dict(cell)
        out["exemplars"] = combined
    return out


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes coordinator requests; mirrors the worker handler's shape."""

    protocol_version = "HTTP/1.1"
    server_version = "repro.cluster/1.0"
    #: See ``_Handler.disable_nagle_algorithm`` — same keep-alive stall.
    disable_nagle_algorithm = True

    _status = 0

    @property
    def service(self) -> ClusterService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    # ---------------------------------------------------------- responses

    def _respond(
        self,
        status: int,
        body: bytes,
        *,
        headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        METRICS.counter(f"cluster.responses.{status}").inc()

    def _respond_json(
        self, status: int, payload: dict, *, headers: dict[str, str] | None = None
    ) -> None:
        self._respond(status, canonical_json(payload), headers=headers)

    def _error(self, status: int, message: str, **extra) -> None:
        self._respond_json(status, {"error": message, **extra})

    def _access_log(self, method: str, elapsed: float) -> None:
        record = {
            "method": method,
            "path": self.path,
            "status": self._status,
            "duration_ms": round(elapsed * 1e3, 3),
            "client": self.address_string(),
            "role": "coordinator",
        }
        access_logger.info("%s", json.dumps(record, sort_keys=True))

    # ------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        start = time.perf_counter()
        try:
            if self.path == "/healthz":
                self._respond_json(200, self.service.healthz())
            elif self.path == "/metrics.json":
                self._respond_json(
                    200, {"metrics": self.service.merged_metrics()}
                )
            elif self.path == "/metrics":
                # Coordinator-local series only (cluster.*): per-shard
                # routing counters and restart counts.  The fleet view
                # lives on /metrics.json.
                self._respond(
                    200,
                    prometheus_text(registry=METRICS).encode("utf-8"),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            elif self.path.startswith("/v1/trace/"):
                trace_id = self.path[len("/v1/trace/"):]
                payload = self.service.trace_payload(trace_id)
                if payload is None:
                    self._error(
                        404, f"no shard retains trace {trace_id!r}"
                    )
                else:
                    self._respond_json(200, payload)
            elif self.path == "/v1/debug/recent":
                self._respond_json(200, self.service.recent_payload())
            elif self.path in ("/v1/solve", "/v1/simulate", "/v1/solve_batch"):
                self._error(405, f"use POST for {self.path}")
            else:
                self._error(404, f"unknown path {self.path!r}")
        finally:
            self._access_log("GET", time.perf_counter() - start)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        start = time.perf_counter()
        traceparent = self.headers.get(TRACEPARENT_HEADER)
        with span(
            "coordinator.request",
            parent=parse_traceparent(traceparent),
            attributes={
                "http.method": "POST",
                "http.path": self.path,
                "cluster.workers": self.service.n_workers,
            },
        ) as live:
            try:
                self._handle_post(traceparent)
            finally:
                if live is not None:
                    live.set_attribute("http.status", self._status)
                self._access_log("POST", time.perf_counter() - start)

    def _read_body(self) -> Any:
        # Consuming the body is not optional on a kept-alive connection
        # — unread bytes would corrupt the next request's start line —
        # so when the length itself is unusable the connection closes.
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            raise RequestError("bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise RequestError(f"body too large ({length} bytes)")
        raw = self.rfile.read(length) or b"{}"
        try:
            return raw, json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"invalid JSON body: {exc}") from None

    def _handle_post(self, traceparent: str | None) -> None:
        try:
            raw, body = self._read_body()
        except RequestError as exc:
            self._error(400, str(exc))
            return
        if not self.path.startswith("/v1/"):
            self._error(404, f"unknown path {self.path!r}")
            return
        endpoint = self.path[len("/v1/"):]
        if endpoint not in ("solve", "simulate", "solve_batch"):
            self._error(404, f"unknown endpoint {endpoint!r}")
            return
        METRICS.counter(f"cluster.requests.{endpoint}").inc()
        try:
            if endpoint == "solve_batch":
                self._scatter_gather(raw, body, traceparent)
            else:
                self._proxy_single(endpoint, raw, body, traceparent)
        except WorkerUnavailable as exc:
            self._error(503, str(exc))

    def _proxy_single(
        self,
        endpoint: str,
        raw: bytes,
        body: Any,
        traceparent: str | None,
    ) -> None:
        """Route one ``solve``/``simulate`` to its owning shard, verbatim.

        The request is validated locally first — a malformed body gets
        the same 400 bytes the worker would produce, with no network hop
        — and the resulting canonical key picks the shard.  The worker's
        response (success or error, ``Retry-After`` included) passes
        through untouched, which is what makes the single-request paths
        byte-identical across topologies by construction.
        """
        try:
            key, _compute = BUILDERS[endpoint](body)
        except RequestError as exc:
            self._error(400, str(exc))
            return
        shard = self.service.shard_for_key(key)
        with span(
            "cluster.forward", attributes={"cluster.shard": shard}
        ):
            status, headers, reply = self.service.forward(
                shard, f"/v1/{endpoint}", raw, traceparent=traceparent
            )
        passthrough = {}
        if "Retry-After" in headers:
            passthrough["Retry-After"] = headers["Retry-After"]
        self._respond(status, reply, headers=passthrough)

    def _scatter_gather(
        self, raw: bytes, body: Any, traceparent: str | None
    ) -> None:
        """``POST /v1/solve_batch``: partition, fan out, reassemble.

        Validation runs locally with the worker's own rules (identical
        400 bytes, correct global item indices).  Each shard's slice is
        a smaller ``solve_batch`` POST executed concurrently; slice
        results are written back into their original positions, so the
        reassembled payload — serialized with the same
        :func:`canonical_json` — is byte-identical to the single-process
        answer.  A slice that fails (429/422/...) fails the whole batch
        with the worker's own error body, item index remapped from
        slice-local to global.
        """
        try:
            pairs = build_solve_batch(body)
        except BatchItemError as exc:
            self._respond_json(400, {"error": str(exc), "index": exc.index})
            return
        except RequestError as exc:
            self._error(400, str(exc))
            return
        items = body["requests"]
        slices: dict[int, list[int]] = {}
        for index, (key, _compute) in enumerate(pairs):
            slices.setdefault(self.service.shard_for_key(key), []).append(index)

        def run_slice(shard: int, indices: list[int]):
            slice_body = json.dumps(
                {"requests": [items[i] for i in indices]}
            ).encode("utf-8")
            with span(
                "cluster.scatter",
                attributes={
                    "cluster.shard": shard,
                    "cluster.slice_items": len(indices),
                },
            ):
                status, headers, reply = self.service.forward(
                    shard, "/v1/solve_batch", slice_body,
                    traceparent=traceparent,
                )
            if status != 200:
                raise _SliceFailure(shard, status, headers, reply, indices)
            return json.loads(reply)["results"]

        results: list[dict | None] = [None] * len(pairs)
        futures = {
            shard: self.service._pool.submit(run_slice, shard, indices)
            for shard, indices in slices.items()
        }
        failures: list[_SliceFailure] = []
        unavailable: WorkerUnavailable | None = None
        for shard in sorted(futures):
            try:
                slice_results = futures[shard].result()
            except _SliceFailure as exc:
                failures.append(exc)
                continue
            except WorkerUnavailable as exc:
                unavailable = exc
                continue
            for local, index in enumerate(slices[shard]):
                results[index] = slice_results[local]
        if failures:
            # Deterministic pick: the failing slice owning the lowest
            # shard id answers for the batch, index remapped to global.
            failure = failures[0]
            try:
                payload = json.loads(failure.body)
            except json.JSONDecodeError:
                payload = {"error": failure.body.decode("utf-8", "replace")}
            if isinstance(payload.get("index"), int):
                payload["index"] = failure.indices[payload["index"]]
            passthrough = {}
            if "Retry-After" in failure.headers:
                passthrough["Retry-After"] = failure.headers["Retry-After"]
            self._respond_json(failure.status, payload, headers=passthrough)
            return
        if unavailable is not None:
            raise unavailable
        self._respond(200, canonical_json(solve_batch_payload(results)))
