"""Small stdlib HTTP client for :mod:`repro.service`.

Stdlib-only, no dependencies::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    result = client.solve(te_core_days=3e6, case="8-4-2-1")
    result["solutions"]["ml-opt-scale"]["expected_wallclock"]

Overload (HTTP 429) raises :class:`OverloadedError` carrying the
server's ``Retry-After``; ``solve``/``simulate``/``solve_batch``
optionally honor it themselves via ``retries=`` (bounded, sleep-backoff
— the client-side half of the backpressure contract).  The same
``retries`` budget also covers *transport* failures — connection
refused / reset / server hung up mid-response — with bounded
exponential backoff: a cluster worker restarting between two attempts
(solves are idempotent by canonical key) is then invisible to the
caller.  :meth:`ServiceClient.request` exposes the raw status/bytes for
callers that need the exact wire payload (the bit-identity tests do).

Transport: round-trips ride the process-wide pooled keep-alive
transport (:data:`repro.service.transport.TRANSPORT`) — persistent
connections, stale-socket replay-once, ``service.transport.*``
telemetry.  ``keepalive=False`` (or ``REPRO_KEEPALIVE=0`` in the
environment) degrades to one fresh connection per request.

Tracing: with span recording on (see :mod:`repro.obs.spans`), every
round-trip opens a ``client.request`` span — the root of the request's
trace unless the caller is already inside one — and forwards its context
in a ``traceparent`` header, so the server's ``server.request`` span
links to it and the whole client → server → scheduler → solver tree
reconstructs from the span JSONL alone.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
from typing import Any, Mapping, Sequence

from repro.obs.spans import TRACEPARENT_HEADER, span
from repro.service.transport import TRANSPORT, PooledTransport

#: Transport failures worth retrying: the far end was not reachable or
#: died mid-exchange.  A restarting cluster worker produces exactly
#: these; HTTP-level errors (4xx/5xx bodies) are never in this set.
RETRYABLE_TRANSPORT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
)

#: Exponential transport backoff: ``BACKOFF_BASE * 2**attempt`` seconds,
#: clamped to ``max_backoff`` — deliberately the same bounded-backoff
#: shape the 429 path uses, just self-clocked because a dead socket
#: carries no Retry-After hint.
TRANSPORT_BACKOFF_BASE = 0.05


def _retryable_transport_error(exc: BaseException) -> bool:
    """Connection refused/reset (possibly urllib-wrapped — kept for
    callers that still route raw urllib errors through this budget)?"""
    if isinstance(exc, RETRYABLE_TRANSPORT_ERRORS):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(exc.reason, RETRYABLE_TRANSPORT_ERRORS)
    return False


class ServiceError(RuntimeError):
    """Non-2xx response; carries the HTTP status and decoded payload."""

    def __init__(self, status: int, payload: Mapping[str, Any] | None):
        message = (payload or {}).get("error", f"HTTP {status}")
        super().__init__(f"[{status}] {message}")
        self.status = int(status)
        self.payload = dict(payload or {})


class OverloadedError(ServiceError):
    """HTTP 429: the service queue is full; back off ``retry_after`` s."""

    def __init__(
        self,
        status: int,
        payload: Mapping[str, Any] | None,
        retry_after: float,
    ):
        super().__init__(status, payload)
        self.retry_after = float(retry_after)


class ServiceClient:
    """Thin JSON client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        keepalive: bool | None = None,
        transport: PooledTransport | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        #: ``None`` defers to the transport / ``REPRO_KEEPALIVE`` env.
        self.keepalive = keepalive
        self.transport = transport if transport is not None else TRANSPORT

    # ------------------------------------------------------------ plumbing

    def request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
    ) -> tuple[int, Mapping[str, str], bytes]:
        """One HTTP round-trip; returns ``(status, headers, raw bytes)``.

        Never raises on HTTP error statuses — only on transport failures
        (connection refused, timeout).  ``headers`` is a case-insensitive
        :class:`~repro.service.transport.HeaderMap` (duplicate header
        lines reachable via ``get_all``).  When span recording is on,
        the round-trip is wrapped in a ``client.request`` span whose
        context travels in the ``traceparent`` header.
        """
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        with span(
            "client.request",
            attributes={"http.method": method, "http.path": path},
        ) as live:
            if live is not None:
                headers[TRACEPARENT_HEADER] = live.context.to_traceparent()
            status, resp_headers, raw = self.transport.request(
                method,
                f"{self.base_url}{path}",
                body=data,
                headers=headers,
                timeout=self.timeout,
                keepalive=self.keepalive,
            )
            if live is not None:
                live.set_attribute("http.status", int(status))
            return status, resp_headers, raw

    def _call(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        *,
        retries: int = 0,
        max_backoff: float = 30.0,
    ) -> dict[str, Any]:
        attempts = max(0, int(retries)) + 1
        for attempt in range(attempts):
            try:
                status, headers, raw = self.request(method, path, body)
            except Exception as exc:
                if _retryable_transport_error(exc) and attempt + 1 < attempts:
                    backoff = TRANSPORT_BACKOFF_BASE * (2 ** attempt)
                    time.sleep(min(backoff, max_backoff))
                    continue
                raise
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if status < 400:
                return payload
            if status == 429:
                # Prefer the body's float estimate: the Retry-After
                # header is HTTP delta-seconds (integer, rounded up), so
                # the body is the tighter honest hint when both exist.
                raw_hint = payload.get("retry_after")
                if raw_hint is None:
                    raw_hint = headers.get("Retry-After", 1)
                retry_after = float(raw_hint)
                if attempt + 1 < attempts:
                    time.sleep(min(retry_after, max_backoff))
                    continue
                raise OverloadedError(status, payload, retry_after)
            raise ServiceError(status, payload)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------ endpoints

    def solve(
        self,
        *,
        te_core_days: float,
        case: str,
        retries: int = 0,
        **fields: Any,
    ) -> dict[str, Any]:
        """``POST /v1/solve``; see :func:`repro.service.api.build_solve`."""
        body = {"te_core_days": te_core_days, "case": case, **fields}
        return self._call("POST", "/v1/solve", body, retries=retries)

    def simulate(
        self,
        *,
        te_core_days: float,
        case: str,
        retries: int = 0,
        **fields: Any,
    ) -> dict[str, Any]:
        """``POST /v1/simulate``; see :func:`repro.service.api.build_simulate`."""
        body = {"te_core_days": te_core_days, "case": case, **fields}
        return self._call("POST", "/v1/simulate", body, retries=retries)

    def solve_batch(
        self,
        bodies: Sequence[Mapping[str, Any]],
        *,
        retries: int = 0,
    ) -> dict[str, Any]:
        """``POST /v1/solve_batch`` — one request, many solves.

        ``bodies`` is a sequence of per-item solve bodies (same schema as
        :meth:`solve`); the response carries ``results`` in request order.
        """
        return self._call(
            "POST",
            "/v1/solve_batch",
            {"requests": [dict(item) for item in bodies]},
            retries=retries,
        )

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def trace(self, trace_id: str) -> dict[str, Any]:
        """``GET /v1/trace/<id>`` — the flight-recorded span set of one
        trace (stitched fleet-wide when pointed at a coordinator).
        Raises :class:`ServiceError` with status 404 when no longer (or
        never) retained."""
        return self._call("GET", f"/v1/trace/{trace_id}")

    def debug_recent(self) -> dict[str, Any]:
        """``GET /v1/debug/recent`` — recent/slowest completed traces."""
        return self._call("GET", "/v1/debug/recent")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics.json`` (the server's metrics-registry summary)."""
        return self._call("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition document."""
        status, _, raw = self.request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, {"error": raw.decode("utf-8", "replace")})
        return raw.decode("utf-8")
