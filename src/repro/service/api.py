"""Request parsing, canonical keying, and payload computation.

This module is the service's *semantic* layer, deliberately free of any
HTTP machinery so the scheduler and tests can drive it directly.  Each
endpoint resolves a JSON request body into

1. a normalized :class:`~repro.core.notation.ModelParameters` (via the
   same :func:`repro.experiments.config.make_params` path the CLI uses),
2. a canonical key — :func:`repro.core.memo.canonical_key` over the
   *resolved* parameter object plus the endpoint and its extra knobs, so
   two bodies that spell the same configuration differently (int vs
   float, reordered fields, omitted defaults) coalesce to one key — and
3. a zero-argument compute callable returning a JSON-serializable
   payload dict.

Compute callables route through ``SOLVER_CACHE.get_or_compute`` on the
request key, which is what layers the service onto the in-memory memo
cache *and* (when attached) the persistent :mod:`repro.service.store`:
live, memory-cached, and disk-restored answers are the same payload
object graph, hence byte-identical once serialized with
:func:`canonical_json`.

The counter ``service.executions`` increments only when a compute
actually runs (not on memo/store/coalesce hits) — the end-to-end tests
use it to prove "N duplicate requests, one solver execution".
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Hashable, Mapping

from repro.core.memo import SOLVER_CACHE, canonical_key
from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import STRATEGY_NAMES, compare_all_strategies
from repro.experiments.config import make_params
from repro.obs.metrics import METRICS
from repro.sim.runner import simulate_solution

#: Strategy selector meaning "solve all four and return the comparison".
ALL_STRATEGIES = "all"


class RequestError(ValueError):
    """A malformed or invalid request body (HTTP 400)."""


def canonical_json(payload: Mapping[str, Any]) -> bytes:
    """Deterministic JSON bytes: sorted keys, tight separators, UTF-8.

    Equal payload dicts serialize to equal bytes, which is the service's
    bit-identity contract across live / memory / disk answers.  Non-finite
    floats (an infeasible strategy's ``E(T_w) = inf``) are encoded as the
    strings ``"inf"`` / ``"-inf"`` / ``"nan"`` so the output stays
    strictly RFC-8259 parseable.
    """
    return json.dumps(
        _finite(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _finite(obj: Any) -> Any:
    if isinstance(obj, float) and not math.isfinite(obj):
        return "nan" if math.isnan(obj) else ("inf" if obj > 0 else "-inf")
    if isinstance(obj, Mapping):
        return {k: _finite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_finite(v) for v in obj]
    return obj


def _field(
    body: Mapping[str, Any],
    name: str,
    kind: type,
    default: Any = ...,
) -> Any:
    value = body.get(name, default)
    if value is ...:
        raise RequestError(f"missing required field {name!r}")
    if kind is float and isinstance(value, (int, float)) and not isinstance(
        value, bool
    ):
        return float(value)
    if kind is int and isinstance(value, int) and not isinstance(value, bool):
        return int(value)
    if kind is str and isinstance(value, str):
        return value
    raise RequestError(
        f"field {name!r} must be a {kind.__name__}, got {value!r}"
    )


_KNOWN_FIELDS = {
    "te_core_days",
    "case",
    "ideal_scale",
    "allocation",
    "strategy",
    "runs",
    "seed",
    "jitter",
    "batch",
}


def _params_from_body(body: Mapping[str, Any]) -> ModelParameters:
    if not isinstance(body, Mapping):
        raise RequestError(f"request body must be a JSON object, got {body!r}")
    unknown = set(body) - _KNOWN_FIELDS
    if unknown:
        raise RequestError(f"unknown field(s): {', '.join(sorted(unknown))}")
    te_core_days = _field(body, "te_core_days", float)
    case = _field(body, "case", str)
    ideal_scale = _field(body, "ideal_scale", float, 1e6)
    allocation = _field(body, "allocation", float, 60.0)
    if te_core_days <= 0:
        raise RequestError(f"te_core_days must be positive, got {te_core_days}")
    try:
        return make_params(
            te_core_days,
            case,
            ideal_scale=ideal_scale,
            allocation_period=allocation,
        )
    except (ValueError, KeyError) as exc:
        raise RequestError(f"invalid model configuration: {exc}") from exc


def _strategy_from_body(body: Mapping[str, Any], default: str) -> str:
    strategy = _field(body, "strategy", str, default)
    if strategy != ALL_STRATEGIES and strategy not in STRATEGY_NAMES:
        choices = ", ".join((ALL_STRATEGIES,) + STRATEGY_NAMES)
        raise RequestError(f"unknown strategy {strategy!r}; choose from {choices}")
    return strategy


def solution_payload(solution: Solution) -> dict[str, Any]:
    """JSON-safe view of one :class:`Solution` (floats kept bit-exact)."""
    return {
        "intervals": list(solution.intervals),
        "intervals_rounded": list(solution.intervals_rounded()),
        "scale": solution.scale,
        "scale_rounded": solution.scale_rounded(),
        "expected_wallclock": solution.expected_wallclock,
        "mu": list(solution.mu),
        "strategy": solution.strategy,
        "feasible": solution.feasible,
        "outer_iterations": solution.outer_iterations,
        "inner_iterations": solution.inner_iterations,
    }


def build_solve(body: Mapping[str, Any]) -> tuple[Hashable, Callable[[], dict]]:
    """Resolve a ``POST /v1/solve`` body into ``(key, compute)``."""
    params = _params_from_body(body)
    strategy = _strategy_from_body(body, ALL_STRATEGIES)
    key = canonical_key("service.solve", params, strategy)

    def compute() -> dict[str, Any]:
        def run() -> dict[str, Any]:
            METRICS.counter("service.executions").inc()
            compute.executed = True
            if strategy == ALL_STRATEGIES:
                solutions = compare_all_strategies(params)
            else:
                solutions = {strategy: _solve_one(params, strategy)}
            return {
                "endpoint": "solve",
                "strategy": strategy,
                "solutions": {
                    name: solution_payload(sol)
                    for name, sol in solutions.items()
                },
            }

        return SOLVER_CACHE.get_or_compute(key, run)

    # Outcome telemetry: the HTTP layer reads `executed` after submit to
    # distinguish a fresh execution from a memo/store hit.  False until
    # the inner `run` actually fires.
    compute.executed = False
    # Vectorized dispatch metadata: a scheduler constructed with the
    # "solve" batch runner drains same-batch solve entries through one
    # batch_solve kernel pass (see run_solve_batch) instead of calling
    # `compute` per entry.  Schedulers without the runner ignore these.
    compute.batch_group = "solve"
    compute.batch_key = key
    compute.batch_params = params
    compute.batch_strategy = strategy
    return key, compute


def _solve_one(params: ModelParameters, strategy: str) -> Solution:
    from repro.core import solutions as strat

    fn = {
        "ml-opt-scale": strat.ml_opt_scale,
        "sl-opt-scale": strat.sl_opt_scale,
        "ml-ori-scale": strat.ml_ori_scale,
        "sl-ori-scale": strat.sl_ori_scale,
    }[strategy]
    return fn(params)


def run_solve_batch(entries: list) -> None:
    """Drain one scheduler batch of solve entries in a single kernel pass.

    The scalar path runs each entry's compute — ``get_or_compute`` over
    the service key wrapping the per-strategy memoized solvers.  This
    runner reproduces that protocol batched: service-key lookups up
    front (hits short-circuit exactly like ``get_or_compute`` hits),
    one :class:`~repro.core.batch_solve.BatchSolver` pass over every
    iterative strategy of every miss, then per-entry payload assembly
    under the entry's pinned ``scheduler.execute`` span via
    :func:`~repro.service.scheduler.execute_entry` — so results, cache
    counters, stored rows, and response bytes are identical to the
    scalar path.  Closed-form ``sl-ori-scale``-only requests and
    payload-level cache hits never touch the kernel; a config the
    kernel cannot represent falls back to the scalar solver inside
    ``BatchSolver`` itself.
    """
    from repro.core.batch_solve import BatchSolver
    from repro.service.scheduler import execute_entry

    solver = BatchSolver()
    prepared: list[tuple[Any, str, Any]] = []
    for entry in entries:
        compute = entry.compute
        if compute.batch_strategy == "sl-ori-scale":
            # Closed form: no outer loop to batch.  The scalar compute
            # already does the right (cheap) thing, lookup included.
            prepared.append((entry, "passthrough", None))
            continue
        found, value = SOLVER_CACHE.lookup(compute.batch_key)
        if found:
            prepared.append((entry, "hit", value))
            continue
        params = compute.batch_params
        strategy = compute.batch_strategy
        handles: dict[str, int] = {}
        if strategy in (ALL_STRATEGIES, "ml-opt-scale"):
            handles["ml-opt-scale"] = solver.add_optimize(
                params, strategy_name="ml-opt-scale"
            )
        if strategy in (ALL_STRATEGIES, "sl-opt-scale"):
            handles["sl-opt-scale"] = solver.add_jin(params)
        if strategy in (ALL_STRATEGIES, "ml-ori-scale"):
            handles["ml-ori-scale"] = solver.add_optimize(
                params,
                fixed_scale=params.scale_upper_bound,
                strategy_name="ml-ori-scale",
            )
        prepared.append((entry, "miss", handles))
    solver.solve()
    for entry, mode, state in prepared:
        if mode == "passthrough":
            fn = entry.compute
        elif mode == "hit":
            fn = lambda value=state: value  # noqa: E731
        else:
            fn = _batched_payload_fn(entry.compute, solver, state)
        execute_entry(entry, fn)


def _batched_payload_fn(
    compute: Callable[[], dict], solver: Any, handles: Mapping[str, int]
) -> Callable[[], dict]:
    """The per-entry finisher for :func:`run_solve_batch` misses.

    Mirrors ``build_solve``'s ``run`` body: count the execution,
    assemble the solutions dict in the scalar's order (replaying each
    lane's solver telemetry and cache inserts via ``solver.finish``),
    and insert the payload under the service key.
    """
    from repro.core.solutions import sl_ori_scale

    params = compute.batch_params
    strategy = compute.batch_strategy

    def fn() -> dict[str, Any]:
        METRICS.counter("service.executions").inc()
        compute.executed = True
        solutions: dict[str, Solution] = {}
        for name in STRATEGY_NAMES:
            if name in handles:
                solutions[name] = solver.finish(handles[name]).solution
            elif name == "sl-ori-scale" and strategy == ALL_STRATEGIES:
                solutions[name] = sl_ori_scale(params)
        payload = {
            "endpoint": "solve",
            "strategy": strategy,
            "solutions": {
                name: solution_payload(sol)
                for name, sol in solutions.items()
            },
        }
        SOLVER_CACHE.insert(compute.batch_key, payload)
        return payload

    return fn


#: Hard cap on ``/v1/solve_batch`` items; sweeps beyond this should be
#: split client-side (the bound keeps one request from monopolizing the
#: queue budget of an entire worker).
MAX_BATCH_ITEMS = 1024


class BatchItemError(RequestError):
    """One ``solve_batch`` item failed validation; carries its position."""

    def __init__(self, index: int, message: str):
        super().__init__(message)
        self.index = int(index)


def build_solve_batch(
    body: Mapping[str, Any],
) -> list[tuple[Hashable, Callable[[], dict]]]:
    """Resolve a ``POST /v1/solve_batch`` body into ordered ``(key, compute)``s.

    The body is ``{"requests": [<solve body>, ...]}`` — each item exactly
    a ``/v1/solve`` body, validated with the same rules.  Item ``i``
    failing validation raises :class:`BatchItemError` with ``index=i``
    so the 400 response can say which item was bad.  The returned pairs
    are what :meth:`CoalescingScheduler.submit_many` executes; item
    payloads are identical to what the corresponding individual
    ``/v1/solve`` requests would return, which is the cluster's
    scatter/gather byte-identity anchor.
    """
    if not isinstance(body, Mapping):
        raise RequestError(f"request body must be a JSON object, got {body!r}")
    unknown = set(body) - {"requests"}
    if unknown:
        raise RequestError(f"unknown field(s): {', '.join(sorted(unknown))}")
    items = body.get("requests")
    if not isinstance(items, list) or not items:
        raise RequestError("field 'requests' must be a non-empty array")
    if len(items) > MAX_BATCH_ITEMS:
        raise RequestError(
            f"batch too large ({len(items)} items, max {MAX_BATCH_ITEMS})"
        )
    pairs: list[tuple[Hashable, Callable[[], dict]]] = []
    for i, item in enumerate(items):
        try:
            pairs.append(build_solve(item))
        except RequestError as exc:
            raise BatchItemError(i, str(exc)) from exc
    return pairs


def solve_batch_payload(results: list[dict]) -> dict[str, Any]:
    """Assemble the ``solve_batch`` response payload (request order)."""
    return {
        "endpoint": "solve_batch",
        "count": len(results),
        "results": results,
    }


def build_simulate(
    body: Mapping[str, Any],
) -> tuple[Hashable, Callable[[], dict]]:
    """Resolve a ``POST /v1/simulate`` body into ``(key, compute)``.

    Simulation ensembles are seed-stable (see :mod:`repro.parallel`), so
    the payload is deterministic given the request and safely cacheable/
    persistable under its canonical key.
    """
    params = _params_from_body(body)
    strategy = _strategy_from_body(body, "ml-opt-scale")
    if strategy == ALL_STRATEGIES:
        raise RequestError("simulate requires a single strategy, not 'all'")
    runs = _field(body, "runs", int, 20)
    seed = _field(body, "seed", int, 0)
    jitter = _field(body, "jitter", float, 0.3)
    batch = body.get("batch")
    if batch is not None and not isinstance(batch, bool):
        raise RequestError(f"field 'batch' must be a boolean, got {batch!r}")
    if runs < 1:
        raise RequestError(f"runs must be >= 1, got {runs}")
    if not 0.0 <= jitter < 1.0:
        raise RequestError(f"jitter must be in [0, 1), got {jitter}")
    # The batched engine is bit-identical to the per-replica path, so
    # "batch" deliberately stays out of the canonical key and the payload:
    # requests differing only in engine choice share one cache entry.
    key = canonical_key(
        "service.simulate", params, strategy, runs, seed, jitter
    )

    def compute() -> dict[str, Any]:
        def run() -> dict[str, Any]:
            METRICS.counter("service.executions").inc()
            compute.executed = True
            solution = _solve_one(params, strategy)
            ensemble = simulate_solution(
                params, solution, n_runs=runs, seed=seed, jitter=jitter,
                batch=batch,
            )
            return {
                "endpoint": "simulate",
                "strategy": strategy,
                "runs": runs,
                "seed": seed,
                "jitter": jitter,
                "solution": solution_payload(solution),
                "ensemble": {
                    "n_runs": ensemble.n_runs,
                    "mean_wallclock": ensemble.mean_wallclock,
                    "std_wallclock": ensemble.std_wallclock,
                    "all_completed": ensemble.all_completed,
                    "mean_portions": ensemble.mean_portions(),
                },
            }

        return SOLVER_CACHE.get_or_compute(key, run)

    compute.executed = False
    return key, compute


#: Endpoint name -> request builder (the HTTP layer routes through this).
BUILDERS: dict[str, Callable[[Mapping[str, Any]], tuple[Hashable, Callable]]] = {
    "solve": build_solve,
    "simulate": build_simulate,
}
