"""Pooled keep-alive HTTP transport for the service stack.

Every outbound request in the repo — :class:`~repro.service.client.
ServiceClient`, the coordinator's forward/scatter-gather fan-out, the
supervisor's health probes, the loadgen workers — used to open a fresh
TCP connection per request via ``urllib``.  Both servers speak
HTTP/1.1 with persistent connections; the clients just never asked for
them.  This module is the missing half: a dependency-free connection
pool on :class:`http.client.HTTPConnection`.

Design:

* **Per-origin bounded pools, LIFO reuse.**  Idle connections live in a
  per-``(host, port)`` deque; acquire pops the *newest* (its socket is
  the least likely to have been idle-closed), release pushes back.  At
  most :data:`DEFAULT_POOL_SIZE` idle connections are kept per origin
  and :data:`DEFAULT_MAX_ORIGINS` origins total (least-recently-used
  origin drained first) — concurrency beyond the idle bound still
  works, the surplus connections are just closed on release instead of
  pooled.
* **Replay exactly once, and only on a reused connection.**  A pooled
  socket can always lose the race with a server-side idle close.  Dead
  idle sockets are detected cheaply at acquire (a zero-timeout
  ``select`` — readable-while-idle means EOF) and replaced; if the
  stale socket is only discovered mid-roundtrip (send succeeded, the
  response never came), the request is transparently replayed **once**
  on a fresh connection.  A *fresh* connection that fails never
  replays: the error surfaces raw, so the caller-visible retry
  contract (:func:`repro.service.client._retryable_transport_error`
  and the ``retries=`` budget) is exactly what it was under urllib.
* **Keep-alive is opt-out.**  ``REPRO_KEEPALIVE=0`` in the environment
  (or ``keepalive=False`` per transport/request) degrades to the old
  one-connection-per-request behavior through the same code path — the
  escape hatch for debugging connection-state suspicions.

Telemetry: the pool exports ``service.transport.*`` through the
process-wide registry — connections ``opened`` / ``reused`` /
``replaced`` (stale at acquire) / ``replays`` (mid-roundtrip stale,
request replayed) / ``discarded`` (healthy but surplus or keep-alive
off) / ``invalidated`` (dropped by :meth:`PooledTransport.invalidate`,
e.g. the coordinator rebuilding a restarted worker's channel) — plus a
``connect_seconds`` histogram of TCP connect times, so the reuse ratio
is visible in ``/metrics.json`` and the loadgen report.

The module-level :data:`TRANSPORT` is the shared process-wide pool;
everything in-process funnels through it so the reuse ratio is a
whole-process fact.
"""

from __future__ import annotations

import http.client
import os
import select
import socket
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Iterable, Iterator, Mapping
from urllib.parse import urlsplit

from repro.obs.metrics import LATENCY_BUCKETS, METRICS

#: Max idle connections retained per origin.  Matches the order of
#: concurrent workers the loadgen drives per process; beyond it,
#: released connections are closed (counted ``discarded``), not leaked.
DEFAULT_POOL_SIZE = 16

#: Max origins with live pools; the least-recently-used origin is
#: drained when a new one would exceed this.  Bounds sockets held by
#: long-lived processes that talk to many short-lived test services.
DEFAULT_MAX_ORIGINS = 32

#: Retained connect-time observations (ring buffer) — connects are rare
#: by design, so a small window covers any realistic bench phase.
CONNECT_SAMPLE_WINDOW = 4096

#: Errors that mean "the pooled socket went stale underneath us": the
#: far end hung up between (or during) requests.  Only these — and only
#: on a *reused* connection — trigger the transparent single replay.
#: ``CannotSendRequest`` guards connection-state corruption (a prior
#: response not fully drained); replacing the connection self-heals.
STALE_SOCKET_ERRORS = (
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
)

#: Environment escape hatch: ``REPRO_KEEPALIVE=0`` disables pooling
#: everywhere (client, coordinator, supervisor, loadgen) at once.
KEEPALIVE_ENV = "REPRO_KEEPALIVE"

_FALSEY = frozenset({"0", "false", "no", "off"})


def keepalive_enabled(override: bool | None = None) -> bool:
    """Resolve the keep-alive switch: explicit ``override`` wins, else
    the :data:`KEEPALIVE_ENV` environment variable, else on."""
    if override is not None:
        return bool(override)
    return os.environ.get(KEEPALIVE_ENV, "1").strip().lower() not in _FALSEY


class HeaderMap(Mapping[str, str]):
    """Case-insensitive response-header mapping, duplicate-safe.

    ``dict(resp.headers)`` — the old return shape — silently collapsed
    duplicate header lines and was case-sensitive on lookup.  This keeps
    every received line: ``headers["retry-after"]`` returns the *first*
    value for the name (any casing), :meth:`get_all` returns all of
    them in wire order, and iteration yields each distinct name once
    under its first-seen casing — so ``dict(headers)`` still gives the
    familiar single-valued view.
    """

    __slots__ = ("_pairs", "_index")

    def __init__(self, items: Iterable[tuple[str, str]] = ()):
        self._pairs: tuple[tuple[str, str], ...] = tuple(
            (str(name), str(value)) for name, value in items
        )
        index: dict[str, list[str]] = {}
        for name, value in self._pairs:
            index.setdefault(name.lower(), []).append(value)
        self._index = index

    def __getitem__(self, name: str) -> str:
        values = self._index.get(str(name).lower())
        if not values:
            raise KeyError(name)
        return values[0]

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for name, _ in self._pairs:
            folded = name.lower()
            if folded not in seen:
                seen.add(folded)
                yield name

    def __len__(self) -> int:
        return len(self._index)

    def get_all(self, name: str) -> tuple[str, ...]:
        """Every value received for ``name`` (any casing), wire order."""
        return tuple(self._index.get(str(name).lower(), ()))

    def items_raw(self) -> tuple[tuple[str, str], ...]:
        """The raw ``(name, value)`` lines as received, duplicates kept."""
        return self._pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeaderMap({list(self._pairs)!r})"


def _origin(url: str) -> tuple[str, str, int, str]:
    """Split ``url`` into (scheme, host, port, path-with-query)."""
    parts = urlsplit(url)
    scheme = parts.scheme or "http"
    host = parts.hostname
    if not host:
        raise ValueError(f"URL has no host: {url!r}")
    port = parts.port or (443 if scheme == "https" else 80)
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return scheme, host, port, path


def _sock_is_dead(sock: Any) -> bool:
    """Cheap liveness probe for an *idle* pooled socket: readable with
    nothing outstanding means EOF (or protocol garbage) — either way the
    connection is unusable for a fresh request."""
    if sock is None:
        return True
    try:
        readable, _, _ = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return True
    return bool(readable)


class PooledTransport:
    """Bounded per-origin keep-alive connection pool (thread-safe).

    :meth:`request` is the whole API surface callers need; it returns
    ``(status, headers, body)`` for every HTTP status and raises only on
    transport failures — the same contract ``ServiceClient.request``
    has always exposed.
    """

    def __init__(
        self,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_origins: int = DEFAULT_MAX_ORIGINS,
        keepalive: bool | None = None,
        metric_prefix: str = "service.transport",
    ):
        self.pool_size = int(pool_size)
        self.max_origins = int(max_origins)
        self.keepalive = keepalive
        self.metric_prefix = metric_prefix
        self._pools: OrderedDict[
            tuple[str, str, int], deque[http.client.HTTPConnection]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        # Internal tallies are the source of truth for stats(); the
        # registry mirror is for /metrics.json and the loadgen report.
        self._counts = {
            "opened": 0, "reused": 0, "replaced": 0,
            "replays": 0, "discarded": 0, "invalidated": 0,
        }

    # ------------------------------------------------------------ metrics

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount
        METRICS.counter(f"{self.metric_prefix}.{name}").add(amount)

    def _connect_histogram(self):
        return METRICS.histogram(
            f"{self.metric_prefix}.connect_seconds",
            maxlen=CONNECT_SAMPLE_WINDOW,
            buckets=LATENCY_BUCKETS,
        )

    def stats(self) -> dict[str, Any]:
        """Cumulative counters plus the headline ``reuse_ratio`` =
        reused / (opened + reused) and the retained connect samples."""
        with self._lock:
            out: dict[str, Any] = dict(self._counts)
        total = out["opened"] + out["reused"]
        out["reuse_ratio"] = round(out["reused"] / total, 6) if total else 0.0
        out["connect_samples"] = self._connect_histogram().samples
        return out

    # ------------------------------------------------------------ pooling

    def _acquire(
        self, origin: tuple[str, str, int], timeout: float | None
    ) -> tuple[http.client.HTTPConnection, bool]:
        """A ready connection for ``origin`` plus whether it was reused."""
        while True:
            with self._lock:
                pool = self._pools.get(origin)
                conn = pool.pop() if pool else None
            if conn is None:
                return self._open(origin, timeout), False
            if _sock_is_dead(conn.sock):
                conn.close()
                self._bump("replaced")
                continue
            if timeout is not None:
                conn.sock.settimeout(timeout)
            self._bump("reused")
            return conn, True

    def _open(
        self, origin: tuple[str, str, int], timeout: float | None
    ) -> http.client.HTTPConnection:
        scheme, host, port = origin
        if scheme == "https":
            conn: http.client.HTTPConnection = http.client.HTTPSConnection(
                host, port, timeout=timeout
            )
        else:
            conn = http.client.HTTPConnection(host, port, timeout=timeout)
        started = time.perf_counter()
        conn.connect()
        self._connect_histogram().observe(time.perf_counter() - started)
        try:
            # Nagle + delayed ACK on a persistent connection costs ~40 ms
            # on the tail whenever a request goes out as two small writes.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except OSError:  # pragma: no cover - non-TCP transports
            pass
        self._bump("opened")
        return conn

    def _release(
        self, origin: tuple[str, str, int], conn: http.client.HTTPConnection
    ) -> None:
        with self._lock:
            if not self._closed:
                pool = self._pools.get(origin)
                if pool is None:
                    pool = self._pools[origin] = deque()
                self._pools.move_to_end(origin)
                if len(pool) < self.pool_size:
                    pool.append(conn)
                    evicted = self._evict_over_origin_bound()
                else:
                    evicted = [conn]
            else:
                evicted = [conn]
        for stale in evicted:
            stale.close()
        if evicted:
            self._bump("discarded", len(evicted))

    def _evict_over_origin_bound(self) -> list[http.client.HTTPConnection]:
        """Drain least-recently-used origins past ``max_origins``.
        Caller holds the lock; returns the connections to close."""
        evicted: list[http.client.HTTPConnection] = []
        while len(self._pools) > self.max_origins:
            _, pool = self._pools.popitem(last=False)
            evicted.extend(pool)
        return evicted

    def invalidate(self, url: str) -> int:
        """Drop every pooled connection to ``url``'s origin (the
        supervisor calls this when it restarts a worker, so the
        coordinator's next forward builds a fresh channel instead of
        tripping over a socket to the dead process).  Returns how many
        connections were dropped."""
        scheme, host, port, _ = _origin(url)
        with self._lock:
            pool = self._pools.pop((scheme, host, port), None)
        if not pool:
            return 0
        for conn in pool:
            conn.close()
        self._bump("invalidated", len(pool))
        return len(pool)

    def close(self) -> None:
        """Drain every pool.  The transport stays usable (new requests
        just open fresh connections) — this is for orderly teardown."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            for conn in pool:
                conn.close()

    # ------------------------------------------------------------ requests

    def request(
        self,
        method: str,
        url: str,
        *,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
        timeout: float | None = None,
        keepalive: bool | None = None,
    ) -> tuple[int, HeaderMap, bytes]:
        """One HTTP round-trip; returns ``(status, headers, body)``.

        Never raises on HTTP error statuses — only on transport
        failures.  With keep-alive on (the default), the connection is
        pooled for reuse; a stale reused connection is replayed at most
        once, and a fresh connection's failure always surfaces raw.
        """
        if keepalive is None:
            keepalive = self.keepalive
        scheme, host, port, path = _origin(url)
        origin = (scheme, host, port)
        send_headers = dict(headers or {})
        if not keepalive_enabled(keepalive):
            return self._single_shot(
                origin, method, path, body, send_headers, timeout
            )
        send_headers.setdefault("Connection", "keep-alive")
        conn, reused = self._acquire(origin, timeout)
        try:
            status, resp_headers, raw, reusable = self._roundtrip(
                conn, method, path, body, send_headers, timeout
            )
        except STALE_SOCKET_ERRORS:
            conn.close()
            if not reused:
                raise
            # The pooled socket died underneath us after the liveness
            # check: replay exactly once on a fresh connection.  If
            # *that* fails, the error surfaces raw — same as any fresh
            # connection's failure.
            self._bump("replays")
            conn = self._open(origin, timeout)
            try:
                status, resp_headers, raw, reusable = self._roundtrip(
                    conn, method, path, body, send_headers, timeout
                )
            except Exception:
                conn.close()
                raise
        except Exception:
            conn.close()
            raise
        if reusable:
            self._release(origin, conn)
        else:
            conn.close()
            self._bump("discarded")
        return status, resp_headers, raw

    def _single_shot(
        self,
        origin: tuple[str, str, int],
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        timeout: float | None,
    ) -> tuple[int, HeaderMap, bytes]:
        """Keep-alive off: one fresh connection, closed after use —
        byte-for-byte the old urllib behavior, minus urllib."""
        headers.setdefault("Connection", "close")
        conn = self._open(origin, timeout)
        try:
            status, resp_headers, raw, _ = self._roundtrip(
                conn, method, path, body, headers, timeout
            )
        finally:
            conn.close()
        self._bump("discarded")
        return status, resp_headers, raw

    @staticmethod
    def _roundtrip(
        conn: http.client.HTTPConnection,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        timeout: float | None,
    ) -> tuple[int, HeaderMap, bytes, bool]:
        if timeout is not None and conn.sock is not None:
            conn.sock.settimeout(timeout)
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        resp_headers = HeaderMap(resp.headers.items())
        # ``will_close`` folds in HTTP/1.0 semantics and any
        # ``Connection: close`` the server sent.
        return resp.status, resp_headers, raw, not resp.will_close


#: The process-wide shared pool.  Client, coordinator, supervisor, and
#: loadgen all route through this instance so connection reuse is a
#: whole-process property and the ``service.transport.*`` series tells
#: one coherent story.
TRANSPORT = PooledTransport()
