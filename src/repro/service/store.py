"""Disk-backed persistent result store (sqlite, versioned by schema hash).

The in-memory :data:`repro.core.memo.SOLVER_CACHE` is process-local: a
service restart forgets every solve.  :class:`ResultStore` is the
durable layer underneath it — a single-file sqlite database mapping
canonical solver keys (see :func:`repro.core.memo.canonical_key`) to
pickled result objects, so a cold process answers repeated requests
without re-running Algorithm 1.

Three properties the service relies on:

* **Deterministic keying** — canonical keys are nested tuples of
  primitives (strings, ints, ``float.hex`` tokens, ...), so their
  ``repr`` is stable across processes and Python runs;
  :func:`key_digest` hashes that text with sha256.
* **Version isolation** — every row carries a schema/version tag
  (:func:`schema_hash` by default: package version + the field layout of
  the persisted result dataclasses).  A model change silently invalidates
  old rows instead of replaying stale physics.
* **First-writer-wins** — :meth:`ResultStore.put` uses ``INSERT OR
  IGNORE``: once a key is persisted its bytes never change, which is
  what makes "answered from disk" bit-identical to "answered live".

The store is thread-safe (one connection guarded by a lock —
checkpoint-solve payloads are tiny, so connection pooling would be
noise) and usable standalone or attached to the memo cache via
:meth:`repro.core.memo.SolverCache.attach_store`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import sqlite3
import threading
from pathlib import Path
from typing import Any, Hashable

from repro.core.memo import PERSIST_MISS
from repro.obs.metrics import METRICS

#: Sentinel distinguishing "no row" from a stored ``None`` (shared with
#: the memo layer so ``SolverCache.attach_store`` needs no adapter).
MISS = PERSIST_MISS


def schema_hash() -> str:
    """Version tag for persisted rows: package version + result layouts.

    Mixes the ``repro`` version string with the qualified name and field
    names of every dataclass the service persists (directly or inside a
    payload).  Any schema drift — a renamed field, an added diagnostic —
    changes the tag, and rows written under other tags become invisible.
    """
    import repro
    from repro.core.algorithm1 import Algorithm1Result
    from repro.core.notation import Solution
    from repro.sim.metrics import EnsembleResult, SimResult

    parts = [f"repro={repro.__version__}"]
    for cls in (Solution, Algorithm1Result, SimResult, EnsembleResult):
        fields = ",".join(f.name for f in dataclasses.fields(cls))
        parts.append(f"{cls.__module__}.{cls.__qualname__}({fields})")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def key_digest(key: Hashable) -> str:
    """Stable text digest of a canonical key (sha256 of its ``repr``)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


class ResultStore:
    """Sqlite-backed ``canonical key -> pickled result`` map.

    Parameters
    ----------
    path:
        Database file; parent directories are created.  ``":memory:"``
        builds a private in-memory database (tests).
    version:
        Row version tag; defaults to :func:`schema_hash`.  ``get`` only
        sees rows written under the same tag.

    Metrics: counters ``service.store.hits`` / ``.misses`` / ``.puts``
    and gauge ``service.store.size`` on the process registry.
    """

    def __init__(self, path: str | Path, *, version: str | None = None):
        self.path = Path(path) if str(path) != ":memory:" else path
        self.version = version if version is not None else schema_hash()
        if isinstance(self.path, Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " version TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " payload BLOB NOT NULL,"
                " PRIMARY KEY (version, key))"
            )
            self._conn.commit()

    def get(self, key: Hashable) -> Any:
        """The stored value for ``key``, or :data:`MISS` when absent."""
        digest = key_digest(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE version = ? AND key = ?",
                (self.version, digest),
            ).fetchone()
        if row is None:
            METRICS.counter("service.store.misses").inc()
            return MISS
        METRICS.counter("service.store.hits").inc()
        return pickle.loads(row[0])

    def put(self, key: Hashable, value: Any) -> None:
        """Persist ``value`` under ``key`` (no-op if the key exists)."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = key_digest(key)
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO results (version, key, payload)"
                " VALUES (?, ?, ?)",
                (self.version, digest, blob),
            )
            self._conn.commit()
        METRICS.counter("service.store.puts").inc()
        METRICS.gauge("service.store.size").set(len(self))

    def __len__(self) -> int:
        """Rows visible under this store's version tag."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE version = ?",
                (self.version,),
            ).fetchone()
        return int(count)

    def clear(self) -> None:
        """Drop every row of this version (other versions untouched)."""
        with self._lock:
            self._conn.execute(
                "DELETE FROM results WHERE version = ?", (self.version,)
            )
            self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r}, version={self.version!r})"
