"""Executor abstraction: serial / thread-pool / process-pool backends.

Every parallelized hot path (``run_ensemble`` replicas, the fig5/fig6/
table4 (case x strategy) ensembles, the sweep grids) funnels through this
one interface, so backend selection, job-count resolution, and shutdown
semantics live in a single place.

Selection rules (documented in DESIGN.md):

* job count — explicit ``jobs`` argument > ``REPRO_JOBS`` environment
  variable > 1.  ``0`` or ``"auto"`` means "all visible cores".  The
  default of 1 keeps every existing entry point serial (and therefore
  byte-identical to the pre-parallel pipeline) unless a caller opts in.
* backend — explicit ``backend`` argument > ``REPRO_EXECUTOR``
  environment variable > auto.  Auto picks the process pool (the
  simulator is CPU-bound Python/numpy, so threads would serialize on the
  GIL) whenever more than one job is requested *and* the workload has
  more than one task; otherwise it degrades to serial so tiny workloads
  never pay pool start-up costs.
* pool width never exceeds the workload size.

Workers must be module-level callables with picklable arguments for the
process backend (the usual :mod:`concurrent.futures` contract).
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.logconf import configure_worker, worker_config
from repro.obs.metrics import METRICS

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default job count (see :func:`resolve_jobs`).
JOBS_ENV_VAR = "REPRO_JOBS"
#: Environment variable forcing a backend ("serial" / "thread" / "process").
BACKEND_ENV_VAR = "REPRO_EXECUTOR"

_BACKENDS = ("serial", "thread", "process")


def cpu_count() -> int:
    """Visible cores (scheduler affinity when available, else logical count)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a job count: explicit argument > ``REPRO_JOBS`` > 1 (serial).

    ``0`` or ``"auto"`` (in either the argument or the environment) expand
    to :func:`cpu_count`.  Negative values are rejected.
    """
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV_VAR)
        if jobs is None:
            return 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return cpu_count()
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"cannot parse job count {jobs!r}; expected an integer or 'auto'"
            ) from None
    if jobs < 0:
        raise ValueError(f"job count must be >= 0, got {jobs}")
    if jobs == 0:
        return cpu_count()
    return int(jobs)


class Executor(abc.ABC):
    """Order-preserving task mapper over a fixed worker budget.

    Concrete backends differ only in *where* ``fn(item)`` runs; ``map``
    always returns results in input order, so callers that pre-spawn
    per-item seeds get bit-identical results on every backend.
    """

    #: Short backend name ("serial" / "thread" / "process").
    kind: str = "abstract"

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError(f"an executor needs >= 1 job, got {jobs}")
        self.jobs = int(jobs)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results in input order.

        Every map charges the process-wide metrics registry:
        ``executor.<kind>.maps`` / ``.tasks`` counters and an
        ``executor.<kind>.map_seconds`` histogram of per-map wall-clock —
        the dispatch-side accounting that used to be invisible.
        """
        items = list(items)
        start = time.perf_counter()
        try:
            return self._map(fn, items)
        finally:
            elapsed = time.perf_counter() - start
            METRICS.counter(f"executor.{self.kind}.maps").inc()
            METRICS.counter(f"executor.{self.kind}.tasks").add(len(items))
            METRICS.histogram(f"executor.{self.kind}.map_seconds").observe(
                elapsed
            )

    @abc.abstractmethod
    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Backend hook: apply ``fn`` to every item, results in input order."""

    def close(self, *, cancel_pending: bool = False) -> None:
        """Release pool resources (no-op for serial).

        ``cancel_pending=True`` additionally cancels submitted tasks
        that have not started (fast-abort shutdown, e.g. the service
        scheduler's non-draining close); already-running tasks always
        finish — workers are never killed mid-task.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """In-process, in-order execution (the default; zero overhead)."""

    kind = "serial"

    def __init__(self, jobs: int = 1):
        super().__init__(1)

    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


def _init_process_worker(log_config: dict) -> None:
    """Process-pool initializer: replay the parent's logging knobs.

    Without this, worker processes have an unconfigured ``repro`` logger
    (``propagate=False``, no handler) and silently drop every record —
    ``-v``/``REPRO_LOG`` on the driver would stop at the pool boundary.
    """
    configure_worker(log_config)


class _PoolExecutor(Executor):
    """Shared plumbing for the :mod:`concurrent.futures` backends."""

    _pool_cls: type

    def __init__(self, jobs: int):
        super().__init__(jobs)
        self._pool = self._pool_cls(max_workers=self.jobs)

    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        # ``Executor.map`` of concurrent.futures yields in submission
        # order and re-raises the first worker exception — exactly the
        # contract we promise.
        return list(self._pool.map(fn, items))

    def close(self, *, cancel_pending: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel_pending)


class ThreadExecutor(_PoolExecutor):
    """Thread pool: no pickling, shared memory; best for I/O-bound tasks
    (or when the workload releases the GIL)."""

    kind = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process pool: true CPU parallelism; workers and arguments must
    pickle.  Workers inherit the parent's logging configuration (see
    :func:`repro.obs.logconf.worker_config`)."""

    kind = "process"
    _pool_cls = ProcessPoolExecutor

    def __init__(self, jobs: int):
        Executor.__init__(self, jobs)
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_process_worker,
            initargs=(worker_config(),),
        )


def make_executor(
    jobs: int | str | None = None,
    *,
    backend: str | None = None,
    workload: int | None = None,
) -> Executor:
    """Build the executor for ``workload`` tasks under the selection rules.

    Parameters
    ----------
    jobs:
        Worker budget; ``None`` defers to ``REPRO_JOBS`` (default 1).
    backend:
        Force a backend; ``None`` defers to ``REPRO_EXECUTOR``, then to
        the auto rule (process pool when parallel, serial otherwise).
    workload:
        Number of tasks about to be mapped; the pool is never wider than
        this, and workloads of <= 1 task always run serial.
    """
    jobs = resolve_jobs(jobs)
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR)
    if backend is not None:
        backend = backend.strip().lower()
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; choose from {_BACKENDS}"
            )
    if workload is not None:
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        jobs = max(1, min(jobs, workload))
    if jobs <= 1 and backend in (None, "serial"):
        return SerialExecutor()
    if backend in (None, "process"):
        return ProcessExecutor(jobs)
    if backend == "thread":
        return ThreadExecutor(jobs)
    return SerialExecutor()


def ensure_executor(
    executor: Executor | None,
    jobs: int | str | None,
    workload: int,
) -> tuple[Executor, bool]:
    """Reuse ``executor`` or build one; returns ``(executor, owned)``.

    ``owned`` tells the caller whether it must close the executor (it
    never closes one that was passed in).
    """
    if executor is not None:
        return executor, False
    return make_executor(jobs, workload=workload), True


def chunk_evenly(items: Sequence[T], n_chunks: int) -> list[Sequence[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal runs.

    Contiguity is what makes chunked fan-out seed-stable: chunk
    boundaries never reorder items, so concatenating the per-chunk
    results reproduces the serial order exactly.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(items)
    n_chunks = min(n_chunks, n) or 1
    base, extra = divmod(n, n_chunks)
    chunks: list[Sequence[T]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks
