"""Reusable parallel-execution layer.

The paper's evaluation replays every optimizer solution under the
randomized-failure simulator ("100 runs for each case") — an
embarrassingly parallel Monte-Carlo workload.  This package provides the
execution substrate the hot paths share:

* :mod:`repro.parallel.executor` — the :class:`Executor` abstraction
  (serial / thread-pool / process-pool backends) with backend
  auto-selection by workload size, the ``REPRO_JOBS`` /
  ``REPRO_EXECUTOR`` environment knobs, and order-preserving ``map``;
* :mod:`repro.parallel.timing` — the :class:`PhaseTimer` wall-clock
  accounting layer (solve / simulate / aggregate phases) and the
  ``BENCH_parallel.json`` emission helper.

Determinism contract: callers spawn *all* child seeds up front (one
``SeedSequence.spawn`` per replica) before fanning out, so serial and
parallel executions of the same root seed are bit-identical — the
executor only changes *where* a replica runs, never *which* stream it
consumes.
"""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_jobs,
)
from repro.parallel.timing import PhaseTimer, write_bench_json

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
    "resolve_jobs",
    "PhaseTimer",
    "write_bench_json",
]
