"""Per-phase wall-clock accounting for the experiment pipeline.

The perf trajectory of this repo is tracked phase-by-phase: the
experiment drivers charge their time to named phases (``solve`` /
``simulate`` / ``aggregate``), and the parallel bench serializes the
resulting report — plus serial-vs-parallel speedups — to
``benchmarks/results/BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly; durations accumulate.  The timer is
    deliberately dumb — a monotonic clock and a dict — so threading it
    through drivers costs nothing measurable.
    """

    def __init__(self) -> None:
        self._elapsed: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the enclosed block's wall-clock to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] = self._elapsed.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` to ``name`` directly (pre-measured blocks)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds

    def elapsed(self, name: str) -> float:
        """Accumulated seconds of one phase (0.0 if never entered)."""
        return self._elapsed.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return float(sum(self._elapsed.values()))

    def report(self) -> dict[str, float]:
        """``{phase: seconds}`` snapshot (insertion-ordered)."""
        return dict(self._elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self._elapsed.items())
        return f"PhaseTimer({inner})"


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Write a timing payload as pretty JSON; returns the path written.

    Used by ``benchmarks/test_bench_parallel.py`` for
    ``BENCH_parallel.json``; the schema is free-form but should include
    enough context (cpu count, job count, replica count) to compare runs
    across machines.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
