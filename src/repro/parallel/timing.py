"""Per-phase wall-clock accounting for the experiment pipeline.

The perf trajectory of this repo is tracked phase-by-phase: the
experiment drivers charge their time to named phases (``solve`` /
``simulate`` / ``aggregate``), and the parallel bench serializes the
resulting report — plus serial-vs-parallel speedups — to
``benchmarks/results/BENCH_parallel.json``.

Since the observability layer (PR 2) the timer's storage *is* a
:class:`~repro.obs.metrics.MetricsRegistry` — one ``phase.<name>.seconds``
counter per phase — instead of an ad-hoc dict, so phase timings export
through the same snapshot machinery as every other metric.  The public
API is unchanged; :meth:`PhaseTimer.report` additionally guarantees
first-entered phase order, and :meth:`PhaseTimer.merge` composes driver
and worker timers.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator

from repro.obs.metrics import MetricsRegistry

_PHASE_PREFIX = "phase."
_PHASE_SUFFIX = ".seconds"


def _metric_name(phase: str) -> str:
    return f"{_PHASE_PREFIX}{phase}{_PHASE_SUFFIX}"


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly; durations accumulate.  The timer is
    deliberately dumb — a monotonic clock over a metrics registry — so
    threading it through drivers costs nothing measurable.

    Parameters
    ----------
    registry:
        The backing :class:`~repro.obs.metrics.MetricsRegistry`; a private
        one by default.  Pass a shared registry (e.g.
        :data:`repro.obs.metrics.METRICS`) to surface phase counters
        alongside the rest of a process's metrics.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._metrics = registry if registry is not None else MetricsRegistry()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the enclosed block's wall-clock to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._metrics.counter(_metric_name(name)).add(
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` to ``name`` directly (pre-measured blocks)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._metrics.counter(_metric_name(name)).add(seconds)

    def elapsed(self, name: str) -> float:
        """Accumulated seconds of one phase (0.0 if never entered)."""
        if _metric_name(name) not in self._metrics.names():
            return 0.0
        return self._metrics.counter(_metric_name(name)).value

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return float(sum(self.report().values()))

    def report(self) -> dict[str, float]:
        """``{phase: seconds}``, in first-entered (insertion) order.

        The ordering is part of the contract: drivers enter phases in
        pipeline order (solve → simulate → aggregate), and the bench
        artifacts serialize the report as-is, so downstream diffs stay
        stable.
        """
        out: dict[str, float] = {}
        for name in self._metrics.names():
            if name.startswith(_PHASE_PREFIX) and name.endswith(_PHASE_SUFFIX):
                phase = name[len(_PHASE_PREFIX) : -len(_PHASE_SUFFIX)]
                out[phase] = self._metrics.counter(name).value
        return out

    @classmethod
    def merge(cls, timers: Iterable["PhaseTimer"]) -> "PhaseTimer":
        """Compose timers: per-phase sums, first-seen phase order.

        The driver + worker composition the execution layer needs: a
        parent merges the timers shipped back from process-pool workers
        with its own, and the merged report reads like one pipeline.
        """
        merged = cls()
        for timer in timers:
            for phase, seconds in timer.report().items():
                merged.add(phase, seconds)
        return merged

    def publish(self, registry: MetricsRegistry) -> None:
        """Copy this timer's phase counters into ``registry`` (additive)."""
        registry.merge_snapshot(self._metrics.snapshot(prefix=_PHASE_PREFIX))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self.report().items())
        return f"PhaseTimer({inner})"


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Write a timing payload as pretty JSON; returns the path written.

    Used by ``benchmarks/test_bench_parallel.py`` for
    ``BENCH_parallel.json``; the schema is free-form but should include
    enough context (cpu count, job count, replica count) to compare runs
    across machines.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
