"""The Heat Distribution application (the paper's main workload).

A 2-D Jacobi heat-diffusion stencil: the room is a square grid with fixed
heat sources on the boundary; each iteration replaces every interior cell
with the average of its four neighbours until the update residual falls
below a tolerance.  The MPI decomposition is the classic 1-D row-block
split with ghost-row exchange between adjacent ranks plus a residual
allreduce — "the ghost array between adjacent blocks ... commonly adopted
in real scientific projects such as parallel ocean simulation" (Section IV).

Two layers are provided:

* :class:`HeatDistribution2D` — runs the *real* numerical kernel (vectorized
  NumPy Jacobi sweep) under :class:`repro.apps.simmpi.SimComm`, charging
  simulated compute/communication time per superstep.  Its state integrates
  with the FTI API (checkpoint/restore of the grid).
* :func:`measure_heat_speedup` — sweeps execution scales and reports the
  measured speedup curve; with Fusion-like parameters the curve bends like
  Fig. 2(a) and fits the paper's quadratic (Formula 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.simmpi import SimComm
from repro.cluster.network import NetworkModel

#: Stencil work per cell per Jacobi sweep: 4 adds + 1 multiply.
FLOPS_PER_CELL: float = 5.0
#: Default residual allreduce payload (one float64).
RESIDUAL_BYTES: int = 8


@dataclass
class HeatDistribution2D:
    """2-D Jacobi heat solver on a simulated communicator.

    Parameters
    ----------
    grid_size:
        Interior grid dimension ``G`` (the grid is ``G x G`` plus fixed
        boundary).
    comm:
        Simulated communicator; its rank count sets the row-block
        decomposition (must not exceed ``grid_size``).
    boundary_temperature:
        Temperature of the top-edge heat source; other edges are cold (0).
    """

    grid_size: int
    comm: SimComm
    boundary_temperature: float = 100.0

    def __post_init__(self):
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.comm.n_ranks > self.grid_size:
            raise ValueError(
                f"{self.comm.n_ranks} ranks cannot decompose {self.grid_size} rows"
            )
        # Full grid including boundary frame.
        self.grid = np.zeros((self.grid_size + 2, self.grid_size + 2))
        self.grid[0, :] = self.boundary_temperature
        self.iterations_done = 0

    # -- physics ----------------------------------------------------------

    def jacobi_sweep(self) -> float:
        """One Jacobi iteration over the whole grid; returns the residual.

        The numerical update is global (all ranks' blocks are slices of the
        same array, which is bit-identical to the distributed computation);
        the simulated time charged reflects the parallel decomposition:
        per-rank compute, one ghost exchange, one residual allreduce.
        """
        interior = self.grid[1:-1, 1:-1]
        new = 0.25 * (
            self.grid[:-2, 1:-1]
            + self.grid[2:, 1:-1]
            + self.grid[1:-1, :-2]
            + self.grid[1:-1, 2:]
        )
        residual = float(np.max(np.abs(new - interior)))
        interior[...] = new
        self.iterations_done += 1
        self._charge_iteration()
        return residual

    def _charge_iteration(self) -> None:
        n = self.comm.n_ranks
        rows_per_rank = -(-self.grid_size // n)
        cells_per_rank = rows_per_rank * self.grid_size
        self.comm.compute(FLOPS_PER_CELL * cells_per_rank)
        ghost_bytes = self.grid_size * 8
        self.comm.exchange_halo(ghost_bytes, neighbors=2)
        per_rank_residual = np.zeros((n, 1))
        self.comm.allreduce(per_rank_residual, op="max")

    def solve(self, tol: float = 1e-3, max_iterations: int = 100_000) -> int:
        """Iterate to convergence; returns the iteration count."""
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        for iteration in range(1, max_iterations + 1):
            if self.jacobi_sweep() < tol:
                return iteration
        raise RuntimeError(
            f"Jacobi did not converge to {tol} within {max_iterations} iterations"
        )

    # -- checkpoint integration --------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Protected state for FTI (the live grid; mutated in place)."""
        return {"grid": self.grid}

    def checkpoint_bytes_per_rank(self) -> int:
        """Approximate checkpoint footprint per rank."""
        return int(self.grid.nbytes / self.comm.n_ranks)

    # -- timing model --------------------------------------------------------

    @staticmethod
    def iteration_time(
        n: np.ndarray | float,
        *,
        grid_size: int,
        network: NetworkModel | None = None,
        flop_rate: float = 1e9,
    ):
        """Analytic per-iteration simulated time at scale(s) ``n``.

        Identical to what :meth:`jacobi_sweep` charges (the kernel is BSP,
        so its per-superstep cost is closed-form); usable for scales far
        beyond what a real decomposition permits, which is how the Fig. 2
        speedup sweep reaches exascale counts.
        """
        if network is None:
            network = NetworkModel()
        n_arr = np.asarray(n, dtype=float)
        if np.any(n_arr < 1):
            raise ValueError("scales must be >= 1")
        cells_per_rank = grid_size * grid_size / n_arr
        compute = FLOPS_PER_CELL * cells_per_rank / flop_rate
        ghost = np.where(n_arr > 1, network.p2p_time(grid_size * 8), 0.0)
        stages = np.ceil(np.log2(np.maximum(n_arr, 1.0)))
        reduce_t = stages * network.p2p_time(RESIDUAL_BYTES)
        return compute + ghost + reduce_t


def measure_heat_speedup(
    scales,
    *,
    grid_size: int = 4096,
    network: NetworkModel | None = None,
    flop_rate: float = 1e9,
) -> tuple[np.ndarray, np.ndarray]:
    """Measured speedup curve of the Heat Distribution application.

    Returns ``(scales, speedups)`` where speedup is single-core iteration
    time over parallel iteration time — the Fig. 2(a) measurement.  The
    curve rises near-linearly at small scales and bends as the
    latency-bound ghost exchange and ``log P`` allreduce stop shrinking.
    """
    scales_arr = np.asarray(scales, dtype=float)
    t_parallel = HeatDistribution2D.iteration_time(
        scales_arr, grid_size=grid_size, network=network, flop_rate=flop_rate
    )
    t_single = HeatDistribution2D.iteration_time(
        1.0, grid_size=grid_size, network=network, flop_rate=flop_rate
    )
    return scales_arr, t_single / t_parallel
