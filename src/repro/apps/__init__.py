"""Emulated MPI applications.

The paper's experiments run a real MPI Heat Distribution program under FTI
on the Fusion cluster; the exascale results come from a simulator calibrated
against those runs.  Here :mod:`repro.apps.simmpi` provides a lockstep
(BSP-style) simulated-MPI layer that executes *real numerical kernels*
in-process while charging simulated compute and communication time, and the
two applications from the paper are built on it:

* :mod:`repro.apps.heat` — the 2-D Jacobi Heat Distribution stencil with
  ghost-row exchange (the paper's main workload, Fig. 2(a));
* :mod:`repro.apps.eddy` — the Nek5000 ``eddy_uv``-style error monitor for
  an analytic 2-D Navier-Stokes eddy solution (Fig. 2(b)).
"""

from repro.apps.simmpi import SimComm, SimClock
from repro.apps.heat import HeatDistribution2D, measure_heat_speedup
from repro.apps.eddy import EddySolver, measure_eddy_speedup
from repro.apps.jacobi import JacobiSolver, spectral_radius
from repro.apps.workload import Workload

__all__ = [
    "SimComm",
    "SimClock",
    "HeatDistribution2D",
    "measure_heat_speedup",
    "EddySolver",
    "measure_eddy_speedup",
    "JacobiSolver",
    "spectral_radius",
    "Workload",
]
