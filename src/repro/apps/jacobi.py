"""Jacobi iterative linear solver (paper reference [35]).

The paper's related-work list cites the Jacobi method for linear systems;
it is the algebraic sibling of the Heat Distribution stencil (whose sweep
*is* a Jacobi iteration on the discrete Laplacian).  This application runs
the general method — solve ``A x = b`` for strictly diagonally dominant
``A`` — under the simulated-MPI layer with a row-block decomposition: each
rank updates its rows, then the full iterate is exchanged (allgather-style,
modelled as an allreduce-cost collective).

The classic convergence theory is testable: the error contracts by the
spectral radius of the iteration matrix ``M = -D^{-1}(L + U)`` per step,
and strict diagonal dominance guarantees ``rho(M) < 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.simmpi import SimComm

#: Work per matrix row per Jacobi step: a dot product (2n flops) + divide.
def _flops_per_row(n: int) -> float:
    return 2.0 * n + 1.0


def is_strictly_diagonally_dominant(a: np.ndarray) -> bool:
    """Row-wise strict diagonal dominance (the convergence guarantee)."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got shape {a.shape}")
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    return bool(np.all(diag > off))


def iteration_matrix(a: np.ndarray) -> np.ndarray:
    """The Jacobi iteration matrix ``M = -D^{-1} (A - D)``."""
    a = np.asarray(a, dtype=float)
    d = np.diag(a)
    if np.any(d == 0):
        raise ValueError("Jacobi requires a zero-free diagonal")
    m = -a / d[:, None]
    np.fill_diagonal(m, 0.0)
    return m


def spectral_radius(a: np.ndarray) -> float:
    """``rho(M)`` — the per-step asymptotic error contraction factor."""
    return float(np.max(np.abs(np.linalg.eigvals(iteration_matrix(a)))))


@dataclass
class JacobiSolver:
    """Distributed Jacobi iteration on a simulated communicator.

    Parameters
    ----------
    a, b:
        The system (``a`` square, zero-free diagonal; convergence is only
        guaranteed under strict diagonal dominance, checked on demand).
    comm:
        Simulated communicator; rank count sets the row-block split.
    """

    a: np.ndarray
    b: np.ndarray
    comm: SimComm = field(default_factory=lambda: SimComm(n_ranks=1))

    def __post_init__(self):
        self.a = np.asarray(self.a, dtype=float)
        self.b = np.asarray(self.b, dtype=float)
        n = self.a.shape[0]
        if self.a.ndim != 2 or self.a.shape != (n, n):
            raise ValueError(f"a must be square, got shape {self.a.shape}")
        if self.b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {self.b.shape}")
        if np.any(np.diag(self.a) == 0):
            raise ValueError("Jacobi requires a zero-free diagonal")
        if self.comm.n_ranks > n:
            raise ValueError(
                f"{self.comm.n_ranks} ranks cannot split {n} rows"
            )
        self.x = np.zeros(n)
        self.iterations_done = 0
        self._diag = np.diag(self.a).copy()
        self._off = self.a - np.diag(self._diag)

    def step(self) -> float:
        """One Jacobi update; returns ``||x_new - x||_inf``.

        Numerics are global (bit-identical to the distributed computation);
        the simulated time charged reflects the row-block decomposition:
        per-rank dot products plus the iterate exchange.
        """
        x_new = (self.b - self._off @ self.x) / self._diag
        delta = float(np.max(np.abs(x_new - self.x)))
        self.x[...] = x_new  # in place: FTI-protected views stay live
        self.iterations_done += 1
        n = self.a.shape[0]
        rows_per_rank = -(-n // self.comm.n_ranks)
        self.comm.compute(_flops_per_row(n) * rows_per_rank)
        # full-iterate exchange (allgather modelled at allreduce cost)
        self.comm.allreduce(np.zeros((self.comm.n_ranks, 1)), op="sum")
        return delta

    def solve(self, tol: float = 1e-10, max_iterations: int = 10_000) -> int:
        """Iterate to ``||dx||_inf < tol``; returns the iteration count."""
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        for iteration in range(1, max_iterations + 1):
            if self.step() < tol:
                return iteration
        raise RuntimeError(
            f"Jacobi did not reach {tol} within {max_iterations} iterations "
            f"(rho(M) = {spectral_radius(self.a):.4f})"
        )

    def residual_norm(self) -> float:
        """``||A x - b||_inf`` of the current iterate."""
        return float(np.max(np.abs(self.a @ self.x - self.b)))

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Protected state for FTI (the live iterate, mutated in place)."""
        return {"x": self.x}
