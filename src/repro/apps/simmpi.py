"""Lockstep simulated-MPI layer.

Real exascale runs are unavailable (and the paper itself resorts to
simulation beyond 1,024 cores), so applications here execute their *actual
numerical kernels* in one process while a :class:`SimClock` charges
simulated wall-clock time for compute and communication:

* compute time = operations / per-core throughput, taken as the maximum
  across ranks in the superstep (BSP semantics — lockstep supersteps, which
  matches the bulk-synchronous structure of the Heat Distribution program:
  compute, exchange ghosts, allreduce);
* communication time comes from :class:`repro.cluster.network.NetworkModel`
  (latency/bandwidth p2p, log-tree collectives — the same MPI functions the
  paper lists: Send/Recv/Isend/Irecv/Allreduce/Bcast/Barrier).

The layer is what lets the speedup curves of Fig. 2 be *measured* rather
than postulated: more ranks shrink per-rank compute but add latency-bound
ghost exchanges and ``log P`` collectives, so measured speedup bends
exactly like the paper's quadratic fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.network import NetworkModel


@dataclass
class SimClock:
    """Simulated wall-clock accumulator (seconds)."""

    elapsed: float = 0.0

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.elapsed += seconds


@dataclass
class SimComm:
    """A simulated communicator of ``n_ranks`` lockstep ranks.

    Parameters
    ----------
    n_ranks:
        Communicator size.
    network:
        Interconnect model used for message costs.
    flop_rate:
        Per-core sustained throughput in operations/second (default 1
        Gflop/s, a realistic sustained stencil rate on Fusion-era cores).
    clock:
        Shared simulated clock (created if not given).
    """

    n_ranks: int
    network: NetworkModel = field(default_factory=NetworkModel)
    flop_rate: float = 1e9
    clock: SimClock = field(default_factory=SimClock)

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.flop_rate <= 0:
            raise ValueError(f"flop_rate must be positive, got {self.flop_rate}")

    @property
    def elapsed(self) -> float:
        """Simulated seconds consumed so far."""
        return self.clock.elapsed

    def compute(self, operations_per_rank: float) -> None:
        """Charge a lockstep compute phase.

        ``operations_per_rank`` may be a scalar (homogeneous) or an array of
        per-rank counts; BSP semantics charge the slowest rank.
        """
        ops = np.max(np.asarray(operations_per_rank, dtype=float))
        if ops < 0:
            raise ValueError(f"operation count must be >= 0, got {ops}")
        self.clock.advance(ops / self.flop_rate)

    def exchange_halo(self, nbytes: float, neighbors: int = 2) -> None:
        """Charge a halo (ghost) exchange: ``neighbors`` concurrent p2p pairs.

        Sends to each neighbor proceed concurrently (MPI_Isend/Irecv +
        Waitall, as the Heat program uses), so the charge is one p2p time —
        but each message still pays full latency + serialization.
        """
        if self.n_ranks == 1 or neighbors == 0:
            return
        if neighbors < 0:
            raise ValueError(f"neighbors must be >= 0, got {neighbors}")
        self.clock.advance(self.network.p2p_time(nbytes))

    def allreduce(self, values: np.ndarray, op: str = "sum") -> np.ndarray:
        """Perform a real allreduce on ``values`` and charge its time.

        ``values`` has shape (n_ranks, ...); the reduction is applied over
        the rank axis and the (replicated) result returned.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_ranks:
            raise ValueError(
                f"values leading dim {values.shape[0]} != n_ranks {self.n_ranks}"
            )
        nbytes = values[0].size * values.itemsize if values.ndim > 1 else values.itemsize
        self.clock.advance(self.network.allreduce_time(nbytes, self.n_ranks))
        if op == "sum":
            return values.sum(axis=0)
        if op == "max":
            return values.max(axis=0)
        if op == "min":
            return values.min(axis=0)
        raise ValueError(f"unsupported allreduce op {op!r}")

    def bcast(self, payload_nbytes: float) -> None:
        """Charge a broadcast of ``payload_nbytes`` from rank 0."""
        self.clock.advance(self.network.broadcast_time(payload_nbytes, self.n_ranks))

    def barrier(self) -> None:
        """Charge a barrier (an empty allreduce)."""
        self.clock.advance(self.network.allreduce_time(8, self.n_ranks))
