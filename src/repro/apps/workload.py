"""Workload descriptors.

A *workload* is the paper's unit of experiment input: a total single-core
productive time ``T_e`` (quoted in core-days: 3 million / 10 million /
2 million in the evaluation), plus the application's speedup model and
checkpoint footprint.  Bundling them keeps experiment configurations
self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.speedup.base import SpeedupModel
from repro.util.units import core_days_to_core_seconds


@dataclass(frozen=True)
class Workload:
    """One application workload for the optimizer and simulator.

    Parameters
    ----------
    name:
        Label used in reports.
    te_core_days:
        Single-core productive time ``T_e`` in core-days.
    speedup:
        The application's speedup model ``g(N)``.
    checkpoint_bytes_per_process:
        Memory footprint checkpointed per process (drives the cluster-level
        characterization; the analytic model uses fitted costs directly).
    """

    name: str
    te_core_days: float
    speedup: SpeedupModel
    checkpoint_bytes_per_process: float = 50e6

    def __post_init__(self):
        if not self.te_core_days > 0:
            raise ValueError(f"te_core_days must be positive, got {self.te_core_days}")
        if self.checkpoint_bytes_per_process < 0:
            raise ValueError(
                "checkpoint_bytes_per_process must be >= 0, got "
                f"{self.checkpoint_bytes_per_process}"
            )

    @property
    def te_core_seconds(self) -> float:
        """``T_e`` in core-seconds (the solvers' internal unit)."""
        return core_days_to_core_seconds(self.te_core_days)

    def productive_time(self, n: float) -> float:
        """``f(T_e, N)`` — failure-free parallel time at scale ``n`` (s)."""
        return float(self.speedup.productive_time(self.te_core_seconds, n))
