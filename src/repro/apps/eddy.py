"""Nek5000 ``eddy_uv``-style application: analytic eddy error monitor.

The paper's second speedup example (Fig. 2(b)) is the Nek5000 ``eddy_uv``
case, which "monitors the error for a 2D solution to the Navier-Stokes
equations" (Walsh's eddy solutions).  We implement the same computation on
a finite-difference grid: the classic analytic decaying-eddy velocity field

``u(x, y, t) = -cos(x) sin(y) exp(-2 nu t)``
``v(x, y, t) =  sin(x) cos(y) exp(-2 nu t)``

is an exact Navier-Stokes solution on the periodic square; the solver
advances a discretized field and reports the max-norm error against the
analytic solution each step — the quantity ``eddy_uv`` prints.

The communication structure differs from the heat stencil: Nek5000's
spectral-element operators trigger heavier neighbour exchanges and frequent
small allreduces, so the measured speedup *peaks early* (~100 cores in the
paper) and then falls — the rise-then-fall shape of Fig. 2(b) that forces
the initial-range quadratic fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.simmpi import SimComm
from repro.cluster.network import NetworkModel

#: Work per grid point per step for the discretized operator evaluation.
FLOPS_PER_POINT: float = 60.0
#: Small allreduces per step (norms, CFL checks) in the spectral solver.
REDUCES_PER_STEP: int = 4


def analytic_eddy(x: np.ndarray, y: np.ndarray, t: float, nu: float = 0.05):
    """Exact decaying-eddy velocity field ``(u, v)`` at time ``t``."""
    decay = np.exp(-2.0 * nu * t)
    u = -np.cos(x) * np.sin(y) * decay
    v = np.sin(x) * np.cos(y) * decay
    return u, v


@dataclass
class EddySolver:
    """Discrete eddy evolution with per-step analytic-error monitoring.

    The time integrator advances the exact spectral decay mode (the
    discretization is exact for this eigenfunction up to the time-stepping
    error of the explicit Euler diffusion factor), so the monitored error
    grows smoothly from zero — matching the behaviour the ``eddy_uv``
    example verifies.
    """

    grid_size: int = 64
    nu: float = 0.05
    dt: float = 1e-3
    comm: SimComm | None = None

    def __post_init__(self):
        if self.grid_size < 4:
            raise ValueError(f"grid_size must be >= 4, got {self.grid_size}")
        if self.nu <= 0:
            raise ValueError(f"nu must be positive, got {self.nu}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        coords = np.linspace(0.0, 2.0 * np.pi, self.grid_size, endpoint=False)
        self.x, self.y = np.meshgrid(coords, coords, indexing="ij")
        self.u, self.v = analytic_eddy(self.x, self.y, 0.0, self.nu)
        self.time = 0.0

    def step(self) -> float:
        """Advance one time step; returns the max-norm error vs analytic.

        The eddy mode decays as ``exp(-2 nu t)``; explicit Euler applies the
        factor ``(1 - 2 nu dt)`` per step, so a real (small) time-stepping
        error accumulates — the error the monitor reports.
        """
        factor = 1.0 - 2.0 * self.nu * self.dt
        self.u *= factor
        self.v *= factor
        self.time += self.dt
        u_exact, v_exact = analytic_eddy(self.x, self.y, self.time, self.nu)
        err = max(
            float(np.max(np.abs(self.u - u_exact))),
            float(np.max(np.abs(self.v - v_exact))),
        )
        if self.comm is not None:
            self._charge_step()
        return err

    def _charge_step(self) -> None:
        assert self.comm is not None
        n = self.comm.n_ranks
        points_per_rank = self.grid_size * self.grid_size / n
        self.comm.compute(FLOPS_PER_POINT * points_per_rank)
        # Spectral-element face exchange: substantial surface data.
        face_bytes = 8 * self.grid_size * 4
        self.comm.exchange_halo(face_bytes, neighbors=4)
        for _ in range(REDUCES_PER_STEP):
            self.comm.allreduce(np.zeros((n, 1)), op="max")

    @staticmethod
    def step_time(
        n,
        *,
        grid_size: int = 1024,
        network: NetworkModel | None = None,
        flop_rate: float = 1e9,
        elements_per_rank_overhead: float = 3e-5,
    ):
        """Analytic per-step simulated time at scale(s) ``n``.

        Includes a per-rank fixed overhead (element-boundary gather/scatter
        grows with rank count in spectral-element codes), which is what makes
        the speedup *fall* past the peak rather than merely saturate.
        """
        if network is None:
            network = NetworkModel()
        n_arr = np.asarray(n, dtype=float)
        if np.any(n_arr < 1):
            raise ValueError("scales must be >= 1")
        compute = FLOPS_PER_POINT * grid_size * grid_size / n_arr / flop_rate
        face = np.where(n_arr > 1, network.p2p_time(8 * grid_size * 4), 0.0)
        stages = np.ceil(np.log2(np.maximum(n_arr, 1.0)))
        reduces = REDUCES_PER_STEP * stages * network.p2p_time(8)
        # gather/scatter bookkeeping grows with sqrt(P) partners
        overhead = np.where(
            n_arr > 1, elements_per_rank_overhead * np.sqrt(n_arr), 0.0
        )
        return compute + face + reduces + overhead


def measure_eddy_speedup(
    scales,
    *,
    grid_size: int = 1024,
    network: NetworkModel | None = None,
    flop_rate: float = 1e9,
) -> tuple[np.ndarray, np.ndarray]:
    """Measured speedup of the eddy application (rise-then-fall, Fig. 2(b))."""
    scales_arr = np.asarray(scales, dtype=float)
    t_par = EddySolver.step_time(
        scales_arr, grid_size=grid_size, network=network, flop_rate=flop_rate
    )
    t_one = EddySolver.step_time(
        1.0, grid_size=grid_size, network=network, flop_rate=flop_rate
    )
    return scales_arr, t_one / t_par
