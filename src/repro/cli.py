"""Command-line interface.

Five subcommands::

    python -m repro optimize --te-core-days 3e6 --case 8-4-2-1 [--trace]
    python -m repro simulate --te-core-days 3e6 --case 8-4-2-1 --runs 20
    python -m repro experiment fig5 [--trace-dir out/]
    python -m repro serve --port 8765 [--store PATH] [--workers N]
    python -m repro obs --last
    python -m repro obs trace <trace-id>
    python -m repro obs load <report.json>

``optimize`` solves all four strategies for one configuration and prints
the comparison table (``--trace`` additionally prints Algorithm 1's
per-outer-iteration mu_i / E(T_w) convergence table); ``simulate``
additionally replays the ML(opt-scale) solution under the
randomized-failure simulator; ``experiment`` runs a registered paper
experiment (see ``--list``), optionally exporting per-replica event
traces with ``--trace-dir``; ``serve`` runs the long-lived JSON-over-HTTP
optimization service (:mod:`repro.service`, see docs/service.md) and
appends every finished request span to ``$REPRO_OBS_DIR/spans.jsonl``
(``--workers N`` scales it out to a sharded coordinator/worker cluster,
:mod:`repro.service.cluster`; the hidden ``serve-worker`` subcommand is
how the supervisor launches each shard);
``obs --last`` pretty-prints the previous command's observability
summary, ``obs load <report>`` renders a load-generator report
(``benchmarks/loadgen.py``) as a per-phase table with the SLO headline,
and ``obs trace <trace-id>`` renders one request's span tree —
client → server → scheduler batch → solver iterations → sim replicas —
with per-phase self-times (ids may be abbreviated to a unique prefix;
``obs trace`` with no id lists the recorded traces; with no ``--spans``
it merges the main sink with every ``spans-shard<i>.jsonl`` beside it,
and ``--url`` queries a live service's flight recorder instead —
see docs/observability.md).

``KeyboardInterrupt`` is handled globally: Ctrl-C on ``serve`` (or a
long experiment) drains cleanly and exits with code 130 — no traceback.

Global flags: ``-v`` / ``-vv`` raise the log level of the ``repro``
logger tree to INFO / DEBUG (see :mod:`repro.obs.logconf`; the
``REPRO_LOG`` environment variable layers per-logger overrides on top).
Every command writes a last-run summary to ``$REPRO_OBS_DIR`` (default
``.repro-obs/``) on exit; a divergent fixed-point solve exits with code 3
after printing the partial convergence trace.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

from repro.analysis.tables import solutions_table
from repro.core.algorithm1 import format_convergence_table
from repro.core.algorithm1 import optimize as algorithm1_optimize
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import make_params
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.core.memo import publish_cache_metrics
from repro.obs.logconf import configure_logging, get_logger
from repro.obs.metrics import METRICS
from repro.obs.runinfo import (
    format_last_run,
    last_run_path,
    obs_dir,
    read_last_run,
    spans_path,
    write_last_run,
)
from repro.obs.spans import (
    SpanRecorder,
    format_span_tree,
    read_spans_jsonl,
    set_span_recorder,
    span_from_dict,
)
from repro.parallel.timing import PhaseTimer
from repro.sim.runner import simulate_solution
from repro.util.iteration import FixedPointDiverged
from repro.util.units import seconds_to_days

logger = get_logger("cli")

#: Exit code for a divergent fixed-point solve (1/2 mean usage errors).
EXIT_DIVERGED = 3
#: Exit code for Ctrl-C (the shell convention: 128 + SIGINT).
EXIT_INTERRUPTED = 130


def _jobs_type(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"job count must be >= 0 (0 = all cores), got {jobs}"
        )
    return jobs


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help=(
            "parallel worker count for simulation ensembles (default: "
            "REPRO_JOBS env var, else 1 = serial; 0 = all cores; results "
            "are bit-identical for any value)"
        ),
    )


def _add_slo_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--slo",
        default=None,
        metavar="TARGET:THRESHOLD",
        help=(
            "enable the SLO health engine, e.g. 99.9:0.25s — requests "
            "slower than THRESHOLD (or shed/failed) burn the error "
            "budget; /healthz degrades on multi-window burn rate "
            "(see docs/observability.md)"
        ),
    )
    parser.add_argument(
        "--slo-fast-window",
        type=float,
        default=None,
        metavar="S",
        help="fast burn-rate window in seconds (default 300)",
    )
    parser.add_argument(
        "--slo-slow-window",
        type=float,
        default=None,
        metavar="S",
        help="slow burn-rate window in seconds (default 3600)",
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--te-core-days",
        type=float,
        default=3e6,
        help="workload T_e in core-days (default: 3e6, the Fig. 5 setting)",
    )
    parser.add_argument(
        "--case",
        default="8-4-2-1",
        help="failure-rate case, events/day per level at the baseline scale",
    )
    parser.add_argument(
        "--ideal-scale",
        type=float,
        default=1e6,
        help="N^(*): the failure-free optimal scale / baseline (default 1e6)",
    )
    parser.add_argument(
        "--allocation",
        type=float,
        default=60.0,
        help="resource allocation period A in seconds (default 60)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multilevel checkpoint-model optimization with uncertain "
            "execution scales (SC 2014 reproduction)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v: INFO logs on stderr; -vv: DEBUG (see also $REPRO_LOG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser(
        "optimize", help="solve all four strategies for one configuration"
    )
    _add_model_arguments(p_opt)
    p_opt.add_argument(
        "--trace",
        action="store_true",
        help=(
            "print Algorithm 1's per-outer-iteration convergence table "
            "(mu_i, E(T_w), residual) for the ML strategies"
        ),
    )

    p_sim = sub.add_parser(
        "simulate", help="optimize, then replay under the failure simulator"
    )
    _add_model_arguments(p_sim)
    p_sim.add_argument("--runs", type=int, default=20, help="ensemble size")
    p_sim.add_argument("--seed", type=int, default=0, help="root RNG seed")
    p_sim.add_argument(
        "--no-batch",
        action="store_true",
        help=(
            "force the per-replica engine instead of the batched one "
            "(results are bit-identical; diagnostic switch)"
        ),
    )
    _add_jobs_argument(p_sim)

    p_exp = sub.add_parser("experiment", help="run a registered paper experiment")
    p_exp.add_argument(
        "experiment_id",
        nargs="?",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    p_exp.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    p_exp.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "export per-replica JSONL event traces to DIR (simulation "
            "experiments only; one file per case x strategy ensemble)"
        ),
    )
    _add_jobs_argument(p_exp)

    p_srv = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP optimization service (repro.service)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_srv.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default 8765; 0 = pick a free port)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run a sharded coordinator with N worker subprocesses "
            "(consistent-hash routing, scatter/gather /v1/solve_batch, "
            "health-checked restart; see docs/service.md).  0 (default) "
            "keeps the single-process service"
        ),
    )
    p_srv.add_argument(
        "--queue-max",
        type=int,
        default=64,
        metavar="N",
        help="bounded request-queue depth; overflow answers 429 (default 64)",
    )
    p_srv.add_argument(
        "--batch-max",
        type=int,
        default=8,
        metavar="N",
        help="max requests batched into one pool fan-out (default 8)",
    )
    p_srv.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "persistent result store (sqlite; default "
            ".repro-service/results.sqlite).  With --workers N, a "
            "directory holding one shard-<i>.sqlite per worker"
        ),
    )
    p_srv.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store (memory-only service)",
    )
    p_srv.add_argument(
        "--cache-max-entries",
        type=int,
        default=4096,
        metavar="N",
        help="LRU bound on the in-memory solver cache (default 4096)",
    )
    p_srv.add_argument(
        "--no-batch-solve",
        action="store_true",
        help=(
            "drain solve bursts one scalar solve per worker instead of one "
            "vectorized kernel pass per scheduler batch (bit-identical "
            "responses; diagnostic switch, see also $REPRO_BATCH_SOLVE)"
        ),
    )
    p_srv.add_argument(
        "--no-spans",
        action="store_true",
        help=(
            "disable request-span recording (spans are otherwise appended "
            "to $REPRO_OBS_DIR/spans.jsonl for `repro obs trace`)"
        ),
    )
    p_srv.add_argument(
        "--no-keepalive",
        action="store_true",
        help=(
            "disable HTTP keep-alive: answer every request with "
            "Connection: close and make in-process clients open a fresh "
            "connection per request (debugging escape hatch; see also "
            "$REPRO_KEEPALIVE=0)"
        ),
    )
    _add_slo_arguments(p_srv)
    _add_jobs_argument(p_srv)

    p_wrk = sub.add_parser(
        "serve-worker",
        help=(
            "internal: run one cluster worker shard (launched by "
            "`repro serve --workers N`; see repro.service.supervisor)"
        ),
    )
    p_wrk.add_argument("--shard", type=int, required=True, metavar="I")
    p_wrk.add_argument("--port", type=int, default=0)
    p_wrk.add_argument("--queue-max", type=int, default=64, metavar="N")
    p_wrk.add_argument("--batch-max", type=int, default=8, metavar="N")
    p_wrk.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="directory for this shard's sqlite store (shard-<i>.sqlite)",
    )
    p_wrk.add_argument("--no-store", action="store_true")
    p_wrk.add_argument(
        "--cache-max-entries", type=int, default=4096, metavar="N"
    )
    p_wrk.add_argument("--no-batch-solve", action="store_true")
    p_wrk.add_argument(
        "--spans-dir",
        default=None,
        metavar="DIR",
        help="record spans to DIR/spans-shard<i>.jsonl",
    )
    p_wrk.add_argument(
        "--request-delay",
        type=float,
        default=0.0,
        metavar="S",
        help="fault-injection: sleep S seconds before each POST dispatch",
    )
    p_wrk.add_argument("--no-keepalive", action="store_true")
    _add_slo_arguments(p_wrk)
    _add_jobs_argument(p_wrk)

    p_obs = sub.add_parser(
        "obs", help="inspect observability output of previous runs"
    )
    p_obs.add_argument(
        "--last",
        action="store_true",
        help="pretty-print the last command's run summary",
    )
    p_obs.add_argument(
        "topic",
        nargs="?",
        choices=["trace", "load"],
        help=(
            "'trace': render a recorded request's span tree; "
            "'load': render a loadgen report (benchmarks/loadgen.py)"
        ),
    )
    p_obs.add_argument(
        "trace_id",
        nargs="?",
        metavar="TRACE_ID|REPORT",
        help=(
            "for 'trace': trace id (or unique prefix) to render, omit to "
            "list the recorded traces; for 'load': path to the report JSON"
        ),
    )
    p_obs.add_argument(
        "--spans",
        default=None,
        metavar="FILE",
        help=(
            "span JSONL file (default: $REPRO_OBS_DIR/spans.jsonl merged "
            "with any spans-shard<i>.jsonl files beside it)"
        ),
    )
    p_obs.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help=(
            "for 'trace': query a live service's flight recorder instead "
            "of span files (GET /v1/trace/<id>; a coordinator URL "
            "stitches fragments from every shard).  Omit the trace id to "
            "list the recently completed traces (GET /v1/debug/recent)"
        ),
    )
    return parser


def _cmd_optimize(args: argparse.Namespace) -> int:
    params = make_params(
        args.te_core_days,
        args.case,
        ideal_scale=args.ideal_scale,
        allocation_period=args.allocation,
    )
    solutions = compare_all_strategies(params)
    print(
        solutions_table(
            solutions,
            params.te_core_seconds,
            title=(
                f"T_e={args.te_core_days:g} core-days, case {args.case}, "
                f"N^(*)={args.ideal_scale:g}"
            ),
        )
    )
    if args.trace:
        # The solver is memoized, so these re-solves are cache hits; the
        # cached Algorithm1Result carries the full convergence trace.
        for strategy, fixed_scale in (
            ("ml-opt-scale", None),
            ("ml-ori-scale", params.scale_upper_bound),
        ):
            result = algorithm1_optimize(
                params, fixed_scale=fixed_scale, strategy_name=strategy
            )
            print(
                f"\n{strategy}: Algorithm 1 convergence "
                f"({result.outer_iterations} outer iterations)"
            )
            print(format_convergence_table(result.trace))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = make_params(
        args.te_core_days,
        args.case,
        ideal_scale=args.ideal_scale,
        allocation_period=args.allocation,
    )
    solutions = compare_all_strategies(params)
    print(solutions_table(solutions, params.te_core_seconds))
    best = solutions["ml-opt-scale"]
    ensemble = simulate_solution(
        params, best, n_runs=args.runs, seed=args.seed, jobs=args.jobs,
        batch=False if args.no_batch else None,
    )
    print(
        f"\nml-opt-scale replayed over {ensemble.n_runs} runs: "
        f"mean {seconds_to_days(ensemble.mean_wallclock):.2f} days "
        f"(model predicted {seconds_to_days(best.expected_wallclock):.2f})"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace, timer: PhaseTimer) -> int:
    if args.list or not args.experiment_id:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    try:
        driver = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    kwargs = {}
    parameters = inspect.signature(driver).parameters
    accepts_var_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    # Only the simulation-heavy drivers take a worker budget or emit event
    # traces; the analytic ones (fig1-fig4, table2, ...) have nothing to
    # fan out or record.
    if args.jobs is not None:
        if "jobs" in parameters or accepts_var_kwargs:
            kwargs["jobs"] = args.jobs
        else:
            print(
                f"note: experiment {args.experiment_id!r} runs analytically; "
                "--jobs ignored",
                file=sys.stderr,
            )
    if args.trace_dir is not None:
        if "trace_dir" in parameters or accepts_var_kwargs:
            kwargs["trace_dir"] = args.trace_dir
        else:
            print(
                f"note: experiment {args.experiment_id!r} has no simulation "
                "ensembles; --trace-dir ignored",
                file=sys.stderr,
            )
    if "timer" in parameters or accepts_var_kwargs:
        kwargs["timer"] = timer
    result = driver(**kwargs)
    print(f"{args.experiment_id}: {result!r}"[:2000])
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers:
        return _cmd_serve_cluster(args)
    # Imported lazily: the service stack (http.server, sqlite3) is only
    # needed by this subcommand.
    from repro.service.server import DEFAULT_STORE_PATH, ReproService

    store_path = None if args.no_store else (args.store or DEFAULT_STORE_PATH)
    previous_recorder = None
    if not args.no_spans:
        # Every finished span is appended to the JSONL sink immediately;
        # the in-memory side ring-buffers so a long-lived service stays
        # bounded.  `repro obs trace <id>` reads the sink back.
        recorder = SpanRecorder(spans_path(), maxlen=10_000)
        previous_recorder = set_span_recorder(recorder)
    service = ReproService(
        host=args.host,
        port=args.port,
        queue_max=args.queue_max,
        batch_max=args.batch_max,
        jobs=args.jobs,
        store_path=store_path,
        cache_max_entries=args.cache_max_entries,
        batch_solve=False if args.no_batch_solve else None,
        slo=args.slo,
        slo_fast_window_s=args.slo_fast_window,
        slo_slow_window_s=args.slo_slow_window,
        keepalive=False if args.no_keepalive else None,
    )
    print(f"repro.service listening on {service.url}")
    if store_path is None:
        print("persistent store: disabled")
    else:
        print(f"persistent store: {store_path} (version {service.store.version})")
    if not args.no_spans:
        print(f"request spans: {spans_path()} (repro obs trace <id>)")
    print(
        "endpoints: POST /v1/solve, POST /v1/simulate, "
        "POST /v1/solve_batch, GET /healthz, GET /metrics, "
        "GET /metrics.json, GET /v1/trace/<id>, GET /v1/debug/recent"
    )
    try:
        service.serve_forever()
    finally:
        # Reached on Ctrl-C (KeyboardInterrupt propagates to main()) or a
        # programmatic shutdown: drain in-flight work, then release.
        print("shutting down: draining in-flight requests...", file=sys.stderr)
        service.close(drain=True)
        if previous_recorder is not None:
            set_span_recorder(previous_recorder)
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --workers N``: coordinator + N worker subprocesses."""
    from repro.service.cluster import DEFAULT_STORE_DIR, ClusterService

    previous_recorder = None
    spans_dir = None
    if not args.no_spans:
        # Coordinator spans go to the usual sink; each worker records
        # its own spans-shard<i>.jsonl next to it (same trace ids, so
        # `repro obs trace` can merge the files when asked).
        recorder = SpanRecorder(spans_path(), maxlen=10_000)
        previous_recorder = set_span_recorder(recorder)
        spans_dir = spans_path().parent
    store_dir = None if args.no_store else (args.store or DEFAULT_STORE_DIR)
    service = ClusterService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_max=args.queue_max,
        batch_max=args.batch_max,
        jobs=args.jobs,
        store_dir=store_dir,
        cache_max_entries=args.cache_max_entries,
        batch_solve=False if args.no_batch_solve else None,
        spans_dir=spans_dir,
        slo=args.slo,
        slo_fast_window_s=args.slo_fast_window,
        slo_slow_window_s=args.slo_slow_window,
        keepalive=False if args.no_keepalive else None,
    )
    print(
        f"repro.service cluster coordinator on {service.url} "
        f"({args.workers} workers, consistent-hash routing)"
    )
    if store_dir is None:
        print("persistent store: disabled")
    else:
        print(f"persistent store: {store_dir}/shard-<i>.sqlite")
    print(
        "endpoints: POST /v1/solve, POST /v1/simulate, "
        "POST /v1/solve_batch, GET /healthz, GET /metrics, "
        "GET /metrics.json, GET /v1/trace/<id>, GET /v1/debug/recent"
    )
    try:
        service.serve_forever()
    finally:
        print(
            "shutting down: draining coordinator and workers...",
            file=sys.stderr,
        )
        service.close()
        if previous_recorder is not None:
            set_span_recorder(previous_recorder)
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    """``repro serve-worker``: one cluster shard (supervisor-launched).

    Announces readiness as one JSON line on stdout —
    ``{"event": "ready", "shard": I, "port": P}`` — then serves until
    SIGTERM/SIGINT, which it maps onto the normal draining-shutdown
    path (finish in-flight requests, flush the store, exit 130).
    """
    import json as _json
    import signal
    from pathlib import Path

    from repro.service.server import ReproService

    def _terminate(signum, frame):  # SIGTERM == Ctrl-C: drain and exit
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    previous_recorder = None
    if args.spans_dir is not None:
        sink = Path(args.spans_dir) / f"spans-shard{args.shard}.jsonl"
        sink.parent.mkdir(parents=True, exist_ok=True)
        recorder = SpanRecorder(sink, maxlen=10_000)
        previous_recorder = set_span_recorder(recorder)
    store_path = None
    if not args.no_store and args.store_dir is not None:
        store_path = Path(args.store_dir) / f"shard-{args.shard}.sqlite"
    service = ReproService(
        host="127.0.0.1",
        port=args.port,
        queue_max=args.queue_max,
        batch_max=args.batch_max,
        jobs=args.jobs,
        store_path=store_path,
        cache_max_entries=args.cache_max_entries,
        batch_solve=False if args.no_batch_solve else None,
        shard_id=args.shard,
        request_delay_s=args.request_delay,
        slo=args.slo,
        slo_fast_window_s=args.slo_fast_window,
        slo_slow_window_s=args.slo_slow_window,
        keepalive=False if args.no_keepalive else None,
    )
    print(
        _json.dumps(
            {"event": "ready", "shard": args.shard, "port": service.port}
        ),
        flush=True,
    )
    try:
        service.serve_forever()
    finally:
        service.close(drain=True)
        if previous_recorder is not None:
            set_span_recorder(previous_recorder)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.topic == "trace":
        return _cmd_obs_trace(args)
    if args.topic == "load":
        return _cmd_obs_load(args)
    if not args.last:
        print(
            "nothing to show; try: repro obs --last  or  repro obs trace <id>",
            file=sys.stderr,
        )
        return 2
    try:
        payload = read_last_run()
    except FileNotFoundError:
        print(
            f"no run summary at {last_run_path()} — run a repro command first",
            file=sys.stderr,
        )
        return 1
    print(format_last_run(payload))
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    """Render one recorded trace's span tree (or list the recorded ones)."""
    if args.url is not None:
        return _cmd_obs_trace_live(args)
    if args.spans is not None:
        sources = [args.spans]
    else:
        # Default discovery: the single-process sink plus every cluster
        # shard file beside it, merged — one view of the whole fleet.
        sources = [spans_path()]
        sources.extend(sorted(obs_dir().glob("spans-shard*.jsonl")))
    spans = []
    found = []
    for source in sources:
        try:
            spans.extend(read_spans_jsonl(source))
        except FileNotFoundError:
            continue
        found.append(source)
    path = found[0] if len(found) == 1 else sources[0]
    if not found:
        print(
            f"no span file at {sources[0]} — run `repro serve` (without "
            "--no-spans) and send it a request first",
            file=sys.stderr,
        )
        return 1
    if len(found) > 1:
        path = f"{len(found)} files under {obs_dir()}"
    if not spans:
        print(f"span file {path} is empty", file=sys.stderr)
        return 1
    if not args.trace_id:
        # Newest last, one line per trace: id, span count, root names.
        seen: dict[str, list] = {}
        for record in spans:
            seen.setdefault(record.trace_id, []).append(record)
        print(f"{len(seen)} trace(s) in {path}:")
        for trace_id, members in seen.items():
            roots = [r.name for r in members if r.parent_id is None]
            label = ", ".join(roots) if roots else members[0].name
            print(f"  {trace_id}  {len(members):>3} spans  {label}")
        return 0
    wanted = args.trace_id.lower()
    matches = sorted(
        {r.trace_id for r in spans if r.trace_id.startswith(wanted)}
    )
    if not matches:
        print(f"no trace starting with {wanted!r} in {path}", file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(
            f"ambiguous prefix {wanted!r}: matches {', '.join(matches)}",
            file=sys.stderr,
        )
        return 2
    selected = [r for r in spans if r.trace_id == matches[0]]
    print(format_span_tree(selected))
    return 0


def _cmd_obs_trace_live(args: argparse.Namespace) -> int:
    """``repro obs trace --url``: query a live service's flight recorder."""
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if not args.trace_id:
            payload = client.debug_recent()
            recording = payload.get("recording", False)
            print(
                f"{args.url}: span recording "
                f"{'on' if recording else 'off'}"
            )
            for section in ("recent", "slowest"):
                entries = payload.get(section) or []
                label = "newest first" if section == "recent" else "by duration"
                print(f"{section} ({label}):")
                if not entries:
                    print("  (none)")
                    continue
                for entry in entries:
                    shard = entry.get("shard")
                    where = f"  shard {shard}" if shard is not None else ""
                    roots = ", ".join(entry.get("roots") or [])
                    print(
                        f"  {entry['trace_id']}  {entry['spans']:>3} spans  "
                        f"{entry['duration_s'] * 1e3:8.1f} ms  "
                        f"{entry['status']}  {roots}{where}"
                    )
            return 0
        payload = client.trace(args.trace_id)
    except ServiceError as exc:
        print(f"error from {args.url}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    spans = [span_from_dict(record) for record in payload["spans"]]
    shards = payload.get("shards")
    if shards:
        noun = "shard" if len(shards) == 1 else "shards"
        print(
            f"trace {payload['trace_id']}: {payload['span_count']} spans "
            f"from {noun} {', '.join(str(s) for s in shards)}"
        )
    print(format_span_tree(spans))
    return 0


def _cmd_obs_load(args: argparse.Namespace) -> int:
    """Render a loadgen report (see benchmarks/loadgen.py) as a table."""
    import json

    from repro.obs.loadreport import ReportError, format_load_report

    if not args.trace_id:
        print("usage: repro obs load <report.json>", file=sys.stderr)
        return 2
    try:
        payload = json.loads(open(args.trace_id, encoding="utf-8").read())
    except FileNotFoundError:
        print(f"no report file at {args.trace_id}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{args.trace_id} is not JSON: {exc}", file=sys.stderr)
        return 1
    try:
        print(format_load_report(payload))
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _write_summary(
    command: str,
    argv: Sequence[str],
    exit_code: int,
    timer: PhaseTimer,
) -> None:
    """Record the last-run summary; never let bookkeeping kill the CLI."""
    # Materialize the memo.* series (zero-valued included) so cache
    # behaviour always shows in `repro obs --last`.
    publish_cache_metrics()
    payload = {
        "command": command,
        "argv": list(argv),
        "exit_code": exit_code,
        "phase_seconds": timer.report(),
        "metrics": METRICS.summary(),
    }
    try:
        path = write_last_run(payload)
    except OSError as exc:  # pragma: no cover - e.g. read-only cwd
        logger.debug("could not write run summary: %s", exc)
    else:
        logger.debug("run summary written to %s", path)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:  # pragma: no cover - convenience for python -m repro
        argv = sys.argv[1:]
    args = _build_parser().parse_args(argv)
    configure_logging(args.verbose)
    timer = PhaseTimer()
    if args.command == "obs":
        # Read-only inspection: never overwrite the summary it displays.
        return _cmd_obs(args)
    try:
        if args.command == "optimize":
            code = _cmd_optimize(args)
        elif args.command == "simulate":
            code = _cmd_simulate(args)
        elif args.command == "experiment":
            code = _cmd_experiment(args, timer)
        elif args.command == "serve":
            code = _cmd_serve(args)
        elif args.command == "serve-worker":
            code = _cmd_serve_worker(args)
        else:  # pragma: no cover - argparse enforces the choices
            raise AssertionError(f"unhandled command {args.command!r}")
    except KeyboardInterrupt:
        # Ctrl-C is a normal way to stop `repro serve` and long
        # experiments: exit 130 (128+SIGINT), no traceback.
        print("interrupted", file=sys.stderr)
        _write_summary(args.command, argv, EXIT_INTERRUPTED, timer)
        return EXIT_INTERRUPTED
    except FixedPointDiverged as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.trace:
            print("partial convergence trace:", file=sys.stderr)
            print(format_convergence_table(exc.trace), file=sys.stderr)
        _write_summary(args.command, argv, EXIT_DIVERGED, timer)
        return EXIT_DIVERGED
    _write_summary(args.command, argv, code, timer)
    return code
