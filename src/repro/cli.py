"""Command-line interface.

Three subcommands::

    python -m repro optimize --te-core-days 3e6 --case 8-4-2-1
    python -m repro simulate --te-core-days 3e6 --case 8-4-2-1 --runs 20
    python -m repro experiment fig3

``optimize`` solves all four strategies for one configuration and prints
the comparison table; ``simulate`` additionally replays the ML(opt-scale)
solution under the randomized-failure simulator; ``experiment`` runs a
registered paper experiment (see ``--list``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

from repro.analysis.tables import solutions_table
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import make_params
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.sim.runner import simulate_solution
from repro.util.units import seconds_to_days


def _jobs_type(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"job count must be >= 0 (0 = all cores), got {jobs}"
        )
    return jobs


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help=(
            "parallel worker count for simulation ensembles (default: "
            "REPRO_JOBS env var, else 1 = serial; 0 = all cores; results "
            "are bit-identical for any value)"
        ),
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--te-core-days",
        type=float,
        default=3e6,
        help="workload T_e in core-days (default: 3e6, the Fig. 5 setting)",
    )
    parser.add_argument(
        "--case",
        default="8-4-2-1",
        help="failure-rate case, events/day per level at the baseline scale",
    )
    parser.add_argument(
        "--ideal-scale",
        type=float,
        default=1e6,
        help="N^(*): the failure-free optimal scale / baseline (default 1e6)",
    )
    parser.add_argument(
        "--allocation",
        type=float,
        default=60.0,
        help="resource allocation period A in seconds (default 60)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multilevel checkpoint-model optimization with uncertain "
            "execution scales (SC 2014 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser(
        "optimize", help="solve all four strategies for one configuration"
    )
    _add_model_arguments(p_opt)

    p_sim = sub.add_parser(
        "simulate", help="optimize, then replay under the failure simulator"
    )
    _add_model_arguments(p_sim)
    p_sim.add_argument("--runs", type=int, default=20, help="ensemble size")
    p_sim.add_argument("--seed", type=int, default=0, help="root RNG seed")
    _add_jobs_argument(p_sim)

    p_exp = sub.add_parser("experiment", help="run a registered paper experiment")
    p_exp.add_argument(
        "experiment_id",
        nargs="?",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    p_exp.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    _add_jobs_argument(p_exp)
    return parser


def _cmd_optimize(args: argparse.Namespace) -> int:
    params = make_params(
        args.te_core_days,
        args.case,
        ideal_scale=args.ideal_scale,
        allocation_period=args.allocation,
    )
    solutions = compare_all_strategies(params)
    print(
        solutions_table(
            solutions,
            params.te_core_seconds,
            title=(
                f"T_e={args.te_core_days:g} core-days, case {args.case}, "
                f"N^(*)={args.ideal_scale:g}"
            ),
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = make_params(
        args.te_core_days,
        args.case,
        ideal_scale=args.ideal_scale,
        allocation_period=args.allocation,
    )
    solutions = compare_all_strategies(params)
    print(solutions_table(solutions, params.te_core_seconds))
    best = solutions["ml-opt-scale"]
    ensemble = simulate_solution(
        params, best, n_runs=args.runs, seed=args.seed, jobs=args.jobs
    )
    print(
        f"\nml-opt-scale replayed over {ensemble.n_runs} runs: "
        f"mean {seconds_to_days(ensemble.mean_wallclock):.2f} days "
        f"(model predicted {seconds_to_days(best.expected_wallclock):.2f})"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.list or not args.experiment_id:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    try:
        driver = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    kwargs = {}
    if args.jobs is not None:
        # Only the simulation-heavy drivers take a worker budget; the
        # analytic ones (fig1-fig4, table2, ...) have nothing to fan out.
        parameters = inspect.signature(driver).parameters
        accepts_jobs = "jobs" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )
        if accepts_jobs:
            kwargs["jobs"] = args.jobs
        else:
            print(
                f"note: experiment {args.experiment_id!r} runs analytically; "
                "--jobs ignored",
                file=sys.stderr,
            )
    result = driver(**kwargs)
    print(f"{args.experiment_id}: {result!r}"[:2000])
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
