"""Convergence diagnostics for Algorithm 1.

The paper's claims: Algorithm 1 converges in 7-15 outer iterations (at
delta = 1e-12); the single-level fixed point needs 30-40 iterations; the
bisection stops in ~10 steps.  :func:`convergence_report` extracts the
observable counts from a solved result so the convergence bench can print
and check them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithm1 import Algorithm1Result


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one Algorithm 1 run's convergence behaviour.

    Attributes
    ----------
    outer_iterations:
        Outer mu-iterations (the 7-15 claim).
    inner_iterations_total:
        Total inner fixed-point sweeps across the outer loop.
    mu_residuals:
        Per-outer-iteration max relative mu change (should decay
        geometrically for a contraction).
    monotone_tail:
        Whether the residuals are non-increasing over the final half of the
        trajectory (a practical contraction check).
    """

    outer_iterations: int
    inner_iterations_total: int
    mu_residuals: tuple[float, ...]
    monotone_tail: bool


def convergence_report(result: Algorithm1Result) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` from an Algorithm 1 result."""
    history = np.asarray(result.mu_history, dtype=float)
    residuals: list[float] = []
    for prev, new in zip(history[:-1], history[1:]):
        residuals.append(
            float(np.max(np.abs(new - prev) / np.maximum(np.abs(prev), 1.0)))
        )
    tail = residuals[len(residuals) // 2 :]
    monotone = all(b <= a * (1 + 1e-9) for a, b in zip(tail[:-1], tail[1:]))
    return ConvergenceReport(
        outer_iterations=result.outer_iterations,
        inner_iterations_total=result.inner_iterations_total,
        mu_residuals=tuple(residuals),
        monotone_tail=monotone,
    )
