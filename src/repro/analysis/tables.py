"""Table rendering for experiment outputs (paper-style rows)."""

from __future__ import annotations

from typing import Mapping

from repro.core.notation import Solution
from repro.sim.metrics import EnsembleResult, PORTION_KEYS
from repro.util.tablefmt import format_table
from repro.util.units import seconds_to_days


def solutions_table(
    solutions: Mapping[str, Solution], te_core_seconds: float, *, title: str | None = None
) -> str:
    """Render strategy solutions: scale, intervals, predicted WCT, efficiency."""
    rows = []
    for name, sol in solutions.items():
        wct = (
            "inf"
            if not sol.feasible
            else f"{seconds_to_days(sol.expected_wallclock):.2f}"
        )
        rows.append(
            [
                name,
                f"{sol.scale / 1000:.1f}k",
                " ".join(f"{round(x)}" for x in sol.intervals),
                wct,
                f"{sol.efficiency(te_core_seconds):.4f}",
            ]
        )
    return format_table(
        ["strategy", "N", "intervals x_i", "E(T_w) days", "efficiency"],
        rows,
        title=title,
    )


def portions_table(
    ensembles: Mapping[str, EnsembleResult], *, title: str | None = None
) -> str:
    """Render simulated time portions per strategy (Fig. 5/6 rows, days)."""
    rows = []
    for name, ens in ensembles.items():
        portions = ens.mean_portions()
        row = [name]
        for key in PORTION_KEYS:
            row.append(f"{seconds_to_days(portions[key]):.2f}")
        wct = f"{seconds_to_days(ens.mean_wallclock):.2f}"
        if not ens.all_completed:
            wct = f">{wct} (censored)"
        row.append(wct)
        rows.append(row)
    return format_table(
        ["strategy", *PORTION_KEYS, "wallclock (days)"], rows, title=title
    )
