"""CSV export of figure data.

The benches print paper-style ASCII tables; for external plotting
(matplotlib is not a dependency) every figure's underlying series can be
exported as plain CSV.  Only the standard library is used.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Sequence

from repro.experiments.fig1 import Fig1Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig5 import Fig5Result
from repro.sim.metrics import PORTION_KEYS


def write_csv(
    path, header: Sequence[str], rows: Iterable[Sequence]
) -> pathlib.Path:
    """Write ``rows`` under ``header`` to ``path``; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            if len(row) != len(header):
                raise ValueError(
                    f"row {count} has {len(row)} cells for {len(header)} columns"
                )
            writer.writerow(row)
            count += 1
    return target


def export_fig1(result: Fig1Result, path) -> pathlib.Path:
    """Fig. 1 series: scale, failure-free and checkpointed performance."""
    rows = zip(
        result.scales,
        result.performance_no_checkpoint,
        result.performance_with_checkpoint,
    )
    return write_csv(
        path, ["scale", "performance_no_checkpoint", "performance_with_checkpoint"], rows
    )


def export_fig3(result: Fig3Result, path_prefix) -> list[pathlib.Path]:
    """Fig. 3 sweeps: one CSV per scenario per axis (4 files)."""
    prefix = pathlib.Path(path_prefix)
    written = []
    for scenario, tag in (
        (result.constant_cost, "constant"),
        (result.linear_cost, "linear"),
    ):
        written.append(
            write_csv(
                prefix.with_name(f"{prefix.name}_{tag}_x.csv"),
                ["x", "expected_wallclock"],
                zip(scenario.sweep_x, scenario.sweep_x_objective),
            )
        )
        written.append(
            write_csv(
                prefix.with_name(f"{prefix.name}_{tag}_n.csv"),
                ["n", "expected_wallclock"],
                zip(scenario.sweep_n, scenario.sweep_n_objective),
            )
        )
    return written


def export_fig5(result: Fig5Result, path) -> pathlib.Path:
    """Fig. 5 portions: one row per (case, strategy) with the four portions."""
    rows = []
    for case in result.cases:
        for strategy, ensemble in case.ensembles.items():
            portions = ensemble.mean_portions()
            rows.append(
                [
                    case.case,
                    strategy,
                    *(portions[key] for key in PORTION_KEYS),
                    ensemble.mean_wallclock,
                    int(ensemble.all_completed),
                ]
            )
    return write_csv(
        path,
        ["case", "strategy", *PORTION_KEYS, "mean_wallclock", "all_completed"],
        rows,
    )
