"""Efficiency (processor utilization) — the paper's second key indicator.

"The efficiency is also called processor utilization, which is defined as
the ratio of the wall-clock-time based speedup to the number of
processes/cores used" — i.e. ``(T_e / T_w) / N``, where the speedup counts
*all* overheads (unlike ``g(N)``).
"""

from __future__ import annotations

from repro.sim.metrics import EnsembleResult


def efficiency(te_core_seconds: float, wallclock_seconds: float, n: float) -> float:
    """``(T_e / T_w) / N`` for one observed wall-clock length."""
    if te_core_seconds <= 0:
        raise ValueError(f"te must be positive, got {te_core_seconds}")
    if wallclock_seconds <= 0:
        raise ValueError(f"wallclock must be positive, got {wallclock_seconds}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (te_core_seconds / wallclock_seconds) / n


def efficiency_from_ensemble(
    ensemble: EnsembleResult, te_core_seconds: float, n: float
) -> float:
    """Mean per-run efficiency of an ensemble (Fig. 7 / Table IV metric)."""
    return ensemble.mean_efficiency(te_core_seconds, n)
