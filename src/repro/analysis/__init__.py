"""Analysis helpers: efficiency, portions, sweeps, tables, convergence."""

from repro.analysis.efficiency import efficiency, efficiency_from_ensemble
from repro.analysis.export import export_fig1, export_fig3, export_fig5, write_csv
from repro.analysis.pareto import ParetoPoint, ParetoResult, pareto_sweep
from repro.analysis.sweep import sweep_objective_scale, sweep_objective_intervals
from repro.analysis.tables import portions_table, solutions_table
from repro.analysis.convergence import ConvergenceReport, convergence_report

__all__ = [
    "efficiency",
    "efficiency_from_ensemble",
    "export_fig1",
    "export_fig3",
    "export_fig5",
    "write_csv",
    "ParetoPoint",
    "ParetoResult",
    "pareto_sweep",
    "sweep_objective_scale",
    "sweep_objective_intervals",
    "portions_table",
    "solutions_table",
    "ConvergenceReport",
    "convergence_report",
]
