"""Objective-surface sweeps (the Fig. 3 confirmation methodology).

Figure 3 confirms the optimizer's output by plotting ``E(T_w)`` against
both decision variables around the computed optimum and checking the
computed point sits at the valley.  These helpers produce those series for
any configuration; the Fig. 3 bench asserts the optimizer beats every swept
neighbour.

Grid points are independent, so both sweeps fan out through the
:mod:`repro.parallel` execution layer (``jobs`` / ``executor`` /
``REPRO_JOBS``); evaluation order is preserved, so parallel sweeps return
the identical array a serial sweep does.
"""

from __future__ import annotations

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import self_consistent_wallclock
from repro.parallel.executor import Executor, ensure_executor


def _eval_scale_point(task) -> float:
    """Worker: one (params, x, n) objective evaluation (picklable)."""
    params, x, n = task
    try:
        wallclock, _ = self_consistent_wallclock(params, x, n)
        return float(wallclock)
    except ValueError:
        return float(np.inf)


def sweep_objective_scale(
    params: ModelParameters,
    x,
    scales,
    *,
    jobs: int | None = None,
    executor: Executor | None = None,
) -> np.ndarray:
    """``E(T_w)`` (self-consistent) over ``scales`` with intervals fixed.

    Infeasible points (expected loss >= 1) come back as ``inf``.
    """
    x_arr = np.asarray(x, dtype=float)
    tasks = [(params, x_arr, float(n)) for n in scales]
    executor, owned = ensure_executor(executor, jobs, len(tasks))
    try:
        out = executor.map(_eval_scale_point, tasks)
    finally:
        if owned:
            executor.close()
    return np.asarray(out, dtype=float)


def sweep_objective_intervals(
    params: ModelParameters,
    x,
    n: float,
    level: int,
    values,
    *,
    jobs: int | None = None,
    executor: Executor | None = None,
) -> np.ndarray:
    """``E(T_w)`` over candidate interval counts for one level (1-based),
    the other levels and the scale held fixed."""
    if not 1 <= level <= params.num_levels:
        raise ValueError(f"level must be in [1, {params.num_levels}], got {level}")
    x_base = np.asarray(x, dtype=float).copy()
    if x_base.size != params.num_levels:
        raise ValueError(f"x has {x_base.size} entries for {params.num_levels} levels")
    tasks = []
    for v in values:
        x_try = x_base.copy()
        x_try[level - 1] = float(v)
        tasks.append((params, x_try, float(n)))
    executor, owned = ensure_executor(executor, jobs, len(tasks))
    try:
        out = executor.map(_eval_scale_point, tasks)
    finally:
        if owned:
            executor.close()
    return np.asarray(out, dtype=float)
