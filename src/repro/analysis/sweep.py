"""Objective-surface sweeps (the Fig. 3 confirmation methodology).

Figure 3 confirms the optimizer's output by plotting ``E(T_w)`` against
both decision variables around the computed optimum and checking the
computed point sits at the valley.  These helpers produce those series for
any configuration; the Fig. 3 bench asserts the optimizer beats every swept
neighbour.
"""

from __future__ import annotations

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import self_consistent_wallclock


def sweep_objective_scale(
    params: ModelParameters, x, scales
) -> np.ndarray:
    """``E(T_w)`` (self-consistent) over ``scales`` with intervals fixed.

    Infeasible points (expected loss >= 1) come back as ``inf``.
    """
    out = np.empty(len(scales))
    for i, n in enumerate(scales):
        try:
            out[i], _ = self_consistent_wallclock(params, x, float(n))
        except ValueError:
            out[i] = np.inf
    return out


def sweep_objective_intervals(
    params: ModelParameters, x, n: float, level: int, values
) -> np.ndarray:
    """``E(T_w)`` over candidate interval counts for one level (1-based),
    the other levels and the scale held fixed."""
    if not 1 <= level <= params.num_levels:
        raise ValueError(f"level must be in [1, {params.num_levels}], got {level}")
    x_base = np.asarray(x, dtype=float).copy()
    if x_base.size != params.num_levels:
        raise ValueError(f"x has {x_base.size} entries for {params.num_levels} levels")
    out = np.empty(len(values))
    for i, v in enumerate(values):
        x_try = x_base.copy()
        x_try[level - 1] = float(v)
        try:
            out[i], _ = self_consistent_wallclock(params, x_try, n)
        except ValueError:
            out[i] = np.inf
    return out
