"""Wall-clock vs. efficiency Pareto analysis (the Fig. 7 discussion).

The paper's Fig. 7 argument is a two-objective one: users want short
wall-clock, operators want high processor utilization; SL(opt-scale) wins
the second while losing the first badly, and ML(opt-scale) "can satisfy
both users and system managers".  This module makes the tradeoff explicit:
sweep the scale, compute both objectives per point (with per-scale
re-optimized intervals), and extract the Pareto frontier — ML(opt-scale)'s
configuration must land on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithm1 import optimize
from repro.core.notation import ModelParameters
from repro.util.iteration import FixedPointDiverged


@dataclass(frozen=True)
class ParetoPoint:
    """One scale's objective pair (intervals re-optimized at that scale)."""

    scale: float
    wallclock: float
    efficiency: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """Shorter-or-equal wall-clock AND higher-or-equal efficiency,
        strictly better in at least one."""
        return (
            self.wallclock <= other.wallclock
            and self.efficiency >= other.efficiency
            and (
                self.wallclock < other.wallclock
                or self.efficiency > other.efficiency
            )
        )


@dataclass(frozen=True)
class ParetoResult:
    """Sweep outcome: all points plus the non-dominated frontier."""

    points: tuple[ParetoPoint, ...]
    frontier: tuple[ParetoPoint, ...]


def pareto_sweep(
    params: ModelParameters,
    *,
    n_points: int = 12,
    scales=None,
) -> ParetoResult:
    """Sweep scales; per scale, optimize intervals and record both objectives.

    Infeasible scales are skipped.  The frontier is returned sorted by
    wall-clock ascending.
    """
    if scales is None:
        upper = params.scale_upper_bound
        scales = np.linspace(upper / n_points, upper, n_points)
    te = params.te_core_seconds
    points: list[ParetoPoint] = []
    for n in scales:
        try:
            solution = optimize(params, fixed_scale=float(n)).solution
        except (ValueError, FixedPointDiverged):
            continue  # infeasible at this scale (loss rate >= 1)
        points.append(
            ParetoPoint(
                scale=float(n),
                wallclock=solution.expected_wallclock,
                efficiency=solution.efficiency(te),
            )
        )
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    frontier.sort(key=lambda p: p.wallclock)
    return ParetoResult(points=tuple(points), frontier=tuple(frontier))
