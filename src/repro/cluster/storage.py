"""Storage hierarchy: per-level checkpoint/recovery timing from device models.

This is the physical model beneath Table II.  Each FTI level maps to a
storage path:

* **Level 1 (local)** — every process writes its checkpoint to the
  node-local device; processes on a node share its bandwidth.
* **Level 2 (partner copy)** — level-1 write plus a network transfer of the
  copy to the ring partner and the partner's local write.
* **Level 3 (RS encoding)** — level-1 write plus Reed-Solomon encoding
  compute and the intra-group parity exchange.
* **Level 4 (PFS)** — all processes write through the parallel file system;
  the aggregate PFS bandwidth is shared, so the time grows linearly with
  the number of writers (plus a per-file metadata cost), which is exactly
  the ``alpha_4 > 0`` behaviour in Table II.  Setting
  ``contention=False`` models a Blue-Waters-class PFS whose delivered
  bandwidth scales with the writers (Table IV's constant-PFS scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkModel


@dataclass(frozen=True)
class LocalStoreModel:
    """Node-local storage device shared by the node's processes."""

    bandwidth: float = 500e6
    base_latency: float = 0.05

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.base_latency < 0:
            raise ValueError(f"base_latency must be >= 0, got {self.base_latency}")

    def write_time(self, bytes_per_process: float, procs_per_node: int) -> float:
        """Seconds for all of a node's processes to write locally."""
        if bytes_per_process < 0:
            raise ValueError(f"bytes_per_process must be >= 0, got {bytes_per_process}")
        if procs_per_node < 1:
            raise ValueError(f"procs_per_node must be >= 1, got {procs_per_node}")
        return self.base_latency + bytes_per_process * procs_per_node / self.bandwidth


@dataclass(frozen=True)
class PFSModel:
    """Parallel file system with shared aggregate bandwidth.

    ``aggregate_bandwidth`` is the delivered write bandwidth shared by all
    writers; ``metadata_cost`` is charged once per file create on the
    metadata server (serialized).  With ``contention=True`` total write time
    grows linearly in the number of writers — the Table II PFS behaviour.
    With ``contention=False`` the PFS delivers ``per_client_bandwidth`` to
    each writer independently (ideal scale-out), giving constant checkpoint
    cost (Table IV scenario).
    """

    aggregate_bandwidth: float = 2.4e9
    metadata_cost: float = 2e-6
    base_latency: float = 5.0
    contention: bool = True
    per_client_bandwidth: float = 50e6

    def __post_init__(self):
        if self.aggregate_bandwidth <= 0:
            raise ValueError(
                f"aggregate_bandwidth must be positive, got {self.aggregate_bandwidth}"
            )
        if self.metadata_cost < 0:
            raise ValueError(f"metadata_cost must be >= 0, got {self.metadata_cost}")
        if self.base_latency < 0:
            raise ValueError(f"base_latency must be >= 0, got {self.base_latency}")
        if self.per_client_bandwidth <= 0:
            raise ValueError(
                f"per_client_bandwidth must be positive, got {self.per_client_bandwidth}"
            )

    def write_time(self, bytes_per_process: float, n_processes: int) -> float:
        """Seconds for ``n_processes`` writers to checkpoint to the PFS."""
        if bytes_per_process < 0:
            raise ValueError(f"bytes_per_process must be >= 0, got {bytes_per_process}")
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        meta = self.metadata_cost * n_processes
        if self.contention:
            return (
                self.base_latency
                + meta
                + bytes_per_process * n_processes / self.aggregate_bandwidth
            )
        return self.base_latency + meta + bytes_per_process / self.per_client_bandwidth


@dataclass(frozen=True)
class StorageHierarchy:
    """All four storage paths bound to one interconnect.

    ``checkpoint_time(level, ...)`` gives the time to take a checkpoint at
    that level at a given scale — the physical source of the Table II rows.
    Recovery reads run the same paths in reverse and are modelled with the
    same costs (the paper's default R_i ~ C_i).
    """

    local: LocalStoreModel = LocalStoreModel()
    network: NetworkModel = NetworkModel()
    pfs: PFSModel = PFSModel()
    #: Reed-Solomon encode throughput per node, bytes/second (GF(256) math).
    rs_encode_bandwidth: float = 300e6
    #: Fixed software overhead per level (hashing, metadata, FTI bookkeeping).
    software_overhead: tuple[float, float, float, float] = (0.3, 1.0, 1.0, 0.0)

    def __post_init__(self):
        if self.rs_encode_bandwidth <= 0:
            raise ValueError(
                f"rs_encode_bandwidth must be positive, got {self.rs_encode_bandwidth}"
            )
        if len(self.software_overhead) != 4:
            raise ValueError(
                f"software_overhead needs 4 entries, got {len(self.software_overhead)}"
            )
        if any(o < 0 for o in self.software_overhead):
            raise ValueError(
                f"software overheads must be >= 0, got {self.software_overhead}"
            )

    def checkpoint_time(
        self,
        level: int,
        bytes_per_process: float,
        n_processes: int,
        procs_per_node: int,
    ) -> float:
        """Seconds to take one checkpoint at ``level`` (1-4) at this scale."""
        if not 1 <= level <= 4:
            raise ValueError(f"level must be in [1, 4], got {level}")
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        if procs_per_node < 1:
            raise ValueError(f"procs_per_node must be >= 1, got {procs_per_node}")
        overhead = self.software_overhead[level - 1]
        local_write = self.local.write_time(bytes_per_process, procs_per_node)
        node_bytes = bytes_per_process * procs_per_node
        if level == 1:
            return overhead + local_write
        if level == 2:
            transfer = self.network.p2p_time(node_bytes)
            partner_write = self.local.write_time(bytes_per_process, procs_per_node)
            return overhead + local_write + transfer + partner_write
        if level == 3:
            encode = node_bytes / self.rs_encode_bandwidth
            exchange = self.network.p2p_time(node_bytes)
            parity_write = self.local.write_time(bytes_per_process, procs_per_node)
            return overhead + local_write + encode + exchange + parity_write
        return overhead + self.pfs.write_time(bytes_per_process, n_processes)

    def recovery_time(
        self,
        level: int,
        bytes_per_process: float,
        n_processes: int,
        procs_per_node: int,
    ) -> float:
        """Seconds to restore from a level-``level`` checkpoint.

        Reads mirror the write paths; level 3 additionally pays the RS
        decode, which costs the same GF(256) arithmetic as the encode.
        """
        return self.checkpoint_time(level, bytes_per_process, n_processes, procs_per_node)
