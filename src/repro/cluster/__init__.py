"""Simulated cluster substrate.

The paper characterizes FTI's per-level checkpoint overheads on the Argonne
Fusion cluster (Table II) and feeds the fitted cost models into both the
analytical optimizer and the exascale simulator.  This subpackage stands in
for the physical cluster: nodes with local storage, a partner/rack topology,
an interconnect, a parallel file system with contention, and a resource
allocator with a constant allocation period ``A``.

:mod:`repro.cluster.characterize` runs the same characterization experiment
the paper ran — write checkpoints at each level across a range of scales —
and regenerates a Table II-shaped cost table from first principles (device
bandwidths), which :func:`repro.costs.fitting.fit_cost_model` then reduces
to Formula (19) coefficients.
"""

from repro.cluster.node import Node, NodeState
from repro.cluster.topology import ClusterTopology
from repro.cluster.network import NetworkModel
from repro.cluster.storage import StorageHierarchy, PFSModel, LocalStoreModel
from repro.cluster.allocation import AllocationEvent, ResourceAllocator
from repro.cluster.characterize import (
    CharacterizationResult,
    characterize_checkpoint_costs,
    fusion_like_cluster,
)

__all__ = [
    "Node",
    "NodeState",
    "ClusterTopology",
    "NetworkModel",
    "StorageHierarchy",
    "PFSModel",
    "LocalStoreModel",
    "AllocationEvent",
    "ResourceAllocator",
    "CharacterizationResult",
    "characterize_checkpoint_costs",
    "fusion_like_cluster",
]
