"""Interconnect model.

A deliberately simple latency/bandwidth (Hockney-style) model: transferring
``b`` bytes point-to-point costs ``latency + b / bandwidth`` seconds.  The
partner-copy and RS-encoding checkpoint levels use it for their node-to-node
transfers; :mod:`repro.apps.simmpi` uses it for message costs so that the
Heat Distribution emulation exhibits the communication-bound speedup
flattening of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point latency/bandwidth interconnect.

    Parameters
    ----------
    latency:
        Per-message latency in seconds (default 1 microsecond, typical of
        an InfiniBand-class fabric like Fusion's).
    bandwidth:
        Per-link bandwidth in bytes/second (default 2 GB/s).
    bisection_factor:
        Fraction of aggregate link bandwidth available under all-to-all
        pressure; collective operations are charged against it.
    """

    latency: float = 1e-6
    bandwidth: float = 2e9
    bisection_factor: float = 0.5

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if not 0 < self.bisection_factor <= 1:
            raise ValueError(
                f"bisection_factor must be in (0, 1], got {self.bisection_factor}"
            )

    def p2p_time(self, nbytes: float) -> float:
        """Seconds to send ``nbytes`` point-to-point."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def broadcast_time(self, nbytes: float, n_ranks: int) -> float:
        """Binomial-tree broadcast: ``ceil(log2 P)`` p2p stages."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if n_ranks == 1:
            return 0.0
        stages = int(np.ceil(np.log2(n_ranks)))
        return stages * self.p2p_time(nbytes)

    def allreduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Recursive-doubling allreduce: ``ceil(log2 P)`` exchange stages."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if n_ranks == 1:
            return 0.0
        stages = int(np.ceil(np.log2(n_ranks)))
        return stages * self.p2p_time(nbytes)

    def alltoall_time(self, nbytes_per_pair: float, n_ranks: int) -> float:
        """All-to-all under bisection pressure."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if n_ranks == 1:
            return 0.0
        total = nbytes_per_pair * n_ranks
        effective_bw = self.bandwidth * self.bisection_factor
        return self.latency * (n_ranks - 1) + total / effective_bw
