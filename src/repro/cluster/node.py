"""Compute node model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeState(enum.Enum):
    """Lifecycle of a node in the simulated cluster."""

    HEALTHY = "healthy"
    FAILED = "failed"
    #: Held in the spare pool, not running application processes.
    SPARE = "spare"


@dataclass
class Node:
    """One compute node.

    Attributes
    ----------
    node_id:
        Unique id within the cluster.
    cores:
        Cores per node (the paper's Fusion nodes have 8).
    local_bandwidth:
        Sequential write bandwidth of the node-local storage device in
        bytes/second (SSD or NVDIMM; the paper highlights NVDRAM as the
        technology widening the local-vs-PFS gap).
    rack:
        Rack (failure-domain) index; nodes sharing a rack can fail together
        when a switch or power board dies.
    state:
        Current :class:`NodeState`.
    """

    node_id: int
    cores: int = 8
    local_bandwidth: float = 500e6
    rack: int = 0
    state: NodeState = field(default=NodeState.HEALTHY)

    def __post_init__(self):
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.local_bandwidth <= 0:
            raise ValueError(
                f"local_bandwidth must be positive, got {self.local_bandwidth}"
            )

    @property
    def is_healthy(self) -> bool:
        """True while the node can run application processes."""
        return self.state == NodeState.HEALTHY

    def fail(self) -> None:
        """Mark the node failed; idempotent."""
        self.state = NodeState.FAILED

    def repair(self) -> None:
        """Return the node to service (post-allocation replacement)."""
        self.state = NodeState.HEALTHY
