"""Checkpoint-cost characterization harness (regenerates Table II).

The paper measured FTI's per-level checkpoint overheads on Fusion at
128-1,024 cores (Table II) and fitted Formula (19) by least squares.  This
module runs the same experiment against the simulated storage hierarchy:
sweep the scale, time a checkpoint at each level (optionally with measurement
noise, as real runs jitter), and fit cost models from the resulting table.

``fusion_like_cluster()`` returns a hierarchy calibrated so the regenerated
table matches Table II's values; the `table2` bench prints both side by side
and checks the fitted coefficients against the paper's quoted
``(0.866, 0), (2.586, 0), (3.886, 0), (5.5, 0.0212)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import NetworkModel
from repro.cluster.storage import LocalStoreModel, PFSModel, StorageHierarchy
from repro.costs.fitting import fit_cost_model
from repro.costs.model import LevelCostModel
from repro.util.rng import SeedLike, as_generator

#: Checkpoint bytes per process used in the Fusion-like calibration
#: (Heat Distribution block state, ~50 MB/process).
FUSION_BYTES_PER_PROCESS: float = 50e6
FUSION_CORES_PER_NODE: int = 8


def fusion_like_cluster() -> StorageHierarchy:
    """Storage hierarchy calibrated to reproduce Table II.

    Calibration targets: level 1 ~ 0.87 s, level 2 ~ 2.6 s, level 3 ~ 3.9 s
    (all scale-independent), level 4 ~ 5.5 + 0.0212 * N seconds.
    The PFS slope comes from sharing ~2.36 GB/s of aggregate bandwidth
    across writers of 50 MB each: 50e6 / 2.36e9 = 0.0212 s per writer.
    """
    return StorageHierarchy(
        local=LocalStoreModel(bandwidth=800e6, base_latency=0.05),
        network=NetworkModel(latency=1e-6, bandwidth=2e9),
        pfs=PFSModel(
            aggregate_bandwidth=FUSION_BYTES_PER_PROCESS / 0.0212,
            metadata_cost=0.0,
            base_latency=5.5,
            contention=True,
        ),
        rs_encode_bandwidth=400e6,
        software_overhead=(0.32, 1.28, 1.58, 0.0),
    )


@dataclass(frozen=True)
class CharacterizationResult:
    """Outcome of a checkpoint-cost characterization sweep.

    Attributes
    ----------
    scales:
        Core counts characterized.
    table:
        Measured checkpoint cost (seconds), shape ``(len(scales), 4)`` —
        the Table II analogue.
    cost_model:
        Formula (19)/(20) models fitted to ``table`` by least squares.
    """

    scales: np.ndarray
    table: np.ndarray
    cost_model: LevelCostModel


def characterize_checkpoint_costs(
    hierarchy: StorageHierarchy | None = None,
    *,
    scales=(128, 256, 384, 512, 1024),
    bytes_per_process: float = FUSION_BYTES_PER_PROCESS,
    cores_per_node: int = FUSION_CORES_PER_NODE,
    noise: float = 0.0,
    repeats: int = 1,
    seed: SeedLike = None,
) -> CharacterizationResult:
    """Sweep scales, timing one checkpoint per level at each scale.

    Parameters
    ----------
    hierarchy:
        Storage hierarchy to characterize (default: the Fusion-like one).
    scales:
        Core counts to test (Table II uses 128..1024).
    bytes_per_process, cores_per_node:
        Application checkpoint footprint and node width.
    noise:
        Relative std-dev of multiplicative measurement jitter (real
        characterizations jitter; Table II's level-1 column spans
        0.67-1.1 s).
    repeats:
        Measurements averaged per (scale, level) cell.
    """
    if hierarchy is None:
        hierarchy = fusion_like_cluster()
    if not 0.0 <= noise < 1.0:
        raise ValueError(f"noise must be in [0, 1), got {noise}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rng = as_generator(seed)
    scales_arr = np.asarray(scales, dtype=float)
    if np.any(scales_arr < cores_per_node):
        raise ValueError(
            f"every scale must be at least one node ({cores_per_node} cores)"
        )
    table = np.zeros((scales_arr.size, 4))
    for i, n in enumerate(scales_arr):
        for level in range(1, 5):
            ideal = hierarchy.checkpoint_time(
                level, bytes_per_process, int(n), cores_per_node
            )
            if noise > 0:
                samples = ideal * (
                    1.0 + np.clip(rng.normal(0.0, noise, size=repeats), -0.9, 0.9)
                )
                table[i, level - 1] = float(np.mean(samples))
            else:
                table[i, level - 1] = ideal
    models = tuple(
        fit_cost_model(scales_arr, table[:, level]) for level in range(4)
    )
    return CharacterizationResult(
        scales=scales_arr,
        table=table,
        cost_model=LevelCostModel(checkpoint=models, recovery=models),
    )
