"""Cluster topology: nodes, racks, and the partner-copy mapping.

FTI's level-2 (partner-copy) protection stores each node's checkpoint on a
*partner* node; recovery succeeds as long as no node and its partner fail in
the same correlated window.  The standard mapping — used by FTI and
reproduced here — is a ring: node ``k`` partners with node ``(k + 1) % M``.

The topology also assigns nodes to racks (shared switch/power failure
domains, paper footnote 1) and to RS-encoding groups for level 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.node import Node, NodeState


@dataclass
class ClusterTopology:
    """A cluster of homogeneous nodes with ring partners and rack domains.

    Parameters
    ----------
    num_nodes:
        Compute nodes available to the application.
    cores_per_node:
        Cores per node.
    nodes_per_rack:
        Rack (failure domain) width.
    rs_group_size:
        Nodes per Reed-Solomon encoding group (level 3); each group can
        tolerate ``rs_parity`` simultaneous node losses.
    rs_parity:
        Parity blocks per RS group.
    local_bandwidth:
        Node-local storage write bandwidth (bytes/s).
    spare_nodes:
        Extra nodes kept aside for failure replacement.
    """

    num_nodes: int
    cores_per_node: int = 8
    nodes_per_rack: int = 16
    rs_group_size: int = 8
    rs_parity: int = 2
    local_bandwidth: float = 500e6
    spare_nodes: int = 0
    nodes: list[Node] = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.nodes_per_rack < 1:
            raise ValueError(
                f"nodes_per_rack must be >= 1, got {self.nodes_per_rack}"
            )
        if self.rs_group_size < 2:
            raise ValueError(
                f"rs_group_size must be >= 2, got {self.rs_group_size}"
            )
        if not 1 <= self.rs_parity < self.rs_group_size:
            raise ValueError(
                f"rs_parity must be in [1, rs_group_size), got {self.rs_parity}"
            )
        if self.spare_nodes < 0:
            raise ValueError(f"spare_nodes must be >= 0, got {self.spare_nodes}")
        self.nodes = [
            Node(
                node_id=i,
                cores=self.cores_per_node,
                local_bandwidth=self.local_bandwidth,
                rack=i // self.nodes_per_rack,
                state=NodeState.HEALTHY if i < self.num_nodes else NodeState.SPARE,
            )
            for i in range(self.num_nodes + self.spare_nodes)
        ]

    @property
    def total_cores(self) -> int:
        """Cores across active (non-spare) nodes."""
        return self.num_nodes * self.cores_per_node

    def partner_of(self, node_id: int) -> int:
        """Ring partner: node ``(k + 1) % num_nodes``."""
        self._check_active(node_id)
        return (node_id + 1) % self.num_nodes

    def rs_group_of(self, node_id: int) -> int:
        """RS-encoding group index of a node."""
        self._check_active(node_id)
        return node_id // self.rs_group_size

    def rack_of(self, node_id: int) -> int:
        """Rack (failure-domain) index of a node."""
        self._check_active(node_id)
        return self.nodes[node_id].rack

    def rs_group_members(self, group: int) -> list[int]:
        """Node ids in RS group ``group`` (last group may be short)."""
        start = group * self.rs_group_size
        if start >= self.num_nodes or group < 0:
            raise ValueError(f"no such RS group: {group}")
        return list(range(start, min(start + self.rs_group_size, self.num_nodes)))

    def rack_members(self, rack: int) -> list[int]:
        """Node ids in rack ``rack``."""
        members = [n.node_id for n in self.nodes[: self.num_nodes] if n.rack == rack]
        if not members:
            raise ValueError(f"no such rack: {rack}")
        return members

    def partner_survives(self, failed: Iterable[int]) -> bool:
        """Whether partner-copy (level 2) can recover from losing ``failed``.

        Recovery fails iff some failed node's partner also failed — then
        both copies of that node's checkpoint are gone.
        """
        failed_set = self._validated_set(failed)
        return all(self.partner_of(f) not in failed_set for f in failed_set)

    def rs_survives(self, failed: Iterable[int]) -> bool:
        """Whether RS encoding (level 3) can recover from losing ``failed``.

        Each RS group tolerates at most ``rs_parity`` simultaneous losses.
        """
        failed_set = self._validated_set(failed)
        per_group: dict[int, int] = {}
        for f in failed_set:
            g = self.rs_group_of(f)
            per_group[g] = per_group.get(g, 0) + 1
        return all(count <= self.rs_parity for count in per_group.values())

    def lowest_recovery_level(self, failed: Iterable[int]) -> int:
        """Cheapest level that recovers a simultaneous loss of ``failed``.

        Returns 1 for an empty set (software error: local restart works),
        2 when partners survive, 3 when RS groups survive, else 4 (PFS).
        This is the level-classification rule of FTI that maps hardware
        failure patterns onto the paper's checkpoint levels.
        """
        failed_set = self._validated_set(failed)
        if not failed_set:
            return 1
        if self.partner_survives(failed_set):
            return 2
        if self.rs_survives(failed_set):
            return 3
        return 4

    def _validated_set(self, failed: Iterable[int]) -> set[int]:
        failed_set = set(failed)
        for f in failed_set:
            self._check_active(f)
        return failed_set

    def _check_active(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(
                f"node_id {node_id} outside active range [0, {self.num_nodes})"
            )
