"""Resource allocation after hardware failures.

"Upon any type of hardware failure, the system will reallocate a new set of
nodes/cores to replace the crashed nodes/cores; and the resource allocation
is a constant period, denoted by A" (Section II).  The allocator draws
replacements from the spare pool when available, otherwise repairs the
failed nodes in place; either way the application is charged exactly ``A``
seconds, matching the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.node import NodeState
from repro.cluster.topology import ClusterTopology

#: The paper treats A as a constant far shorter than the execution; 60 s is
#: within the 1-2 minute correlated-window range cited in footnote 1.
DEFAULT_ALLOCATION_PERIOD: float = 60.0


@dataclass(frozen=True)
class AllocationEvent:
    """Record of one replacement action."""

    time: float
    failed_nodes: tuple[int, ...]
    replacement_nodes: tuple[int, ...]
    duration: float


@dataclass
class ResourceAllocator:
    """Replaces failed nodes at a constant allocation period ``A``."""

    topology: ClusterTopology
    allocation_period: float = DEFAULT_ALLOCATION_PERIOD
    history: list[AllocationEvent] = field(default_factory=list)

    def __post_init__(self):
        if self.allocation_period < 0:
            raise ValueError(
                f"allocation_period must be >= 0, got {self.allocation_period}"
            )

    def allocate_replacements(
        self, time: float, failed_nodes: Iterable[int]
    ) -> AllocationEvent:
        """Replace ``failed_nodes``; returns the allocation record.

        Marks failed nodes down, activates spares when available (spares
        become healthy replacements) and repairs in place otherwise — the
        model charges the same constant ``A`` in both cases.
        """
        failed = tuple(sorted(set(failed_nodes)))
        for node_id in failed:
            self.topology.nodes[node_id].fail()
        spares = [
            n for n in self.topology.nodes if n.state == NodeState.SPARE
        ]
        replacements: list[int] = []
        for node_id in failed:
            if spares:
                spare = spares.pop(0)
                spare.state = NodeState.HEALTHY
                replacements.append(spare.node_id)
            else:
                self.topology.nodes[node_id].repair()
                replacements.append(node_id)
        event = AllocationEvent(
            time=time,
            failed_nodes=failed,
            replacement_nodes=tuple(replacements),
            duration=self.allocation_period,
        )
        self.history.append(event)
        return event

    @property
    def total_allocation_time(self) -> float:
        """Cumulative seconds spent in allocations so far."""
        return sum(e.duration for e in self.history)
