"""Speedup models ``g(N)`` and fitting tools (paper Section III-C.2, Fig. 2).

The optimizer only ever sees the abstract interface
:class:`~repro.speedup.base.SpeedupModel` — ``g(N)``, ``g'(N)`` and the
ideal scale ``N^(*)`` — so any subclass (linear, the paper's quadratic,
Amdahl, Gustafson) plugs into every solver unchanged.
"""

from repro.speedup.base import SpeedupModel
from repro.speedup.linear import LinearSpeedup
from repro.speedup.quadratic import QuadraticSpeedup
from repro.speedup.amdahl import AmdahlSpeedup
from repro.speedup.gustafson import GustafsonSpeedup
from repro.speedup.interpolated import InterpolatedSpeedup
from repro.speedup.karpflatt import karp_flatt_metric
from repro.speedup.fitting import (
    QuadraticFit,
    fit_quadratic_speedup,
    select_initial_range,
)
from repro.speedup.datasets import (
    heat_distribution_speedup_points,
    nek5000_eddy_speedup_points,
)

__all__ = [
    "SpeedupModel",
    "LinearSpeedup",
    "QuadraticSpeedup",
    "AmdahlSpeedup",
    "GustafsonSpeedup",
    "InterpolatedSpeedup",
    "karp_flatt_metric",
    "QuadraticFit",
    "fit_quadratic_speedup",
    "select_initial_range",
    "heat_distribution_speedup_points",
    "nek5000_eddy_speedup_points",
]
