"""Speedup model interpolated from measured points.

The paper fits Formula (12)'s quadratic because it needs a closed-form
``g'(N)``; with SciPy available, measured speedup curves can be used
*directly*: a monotone PCHIP interpolant through the measured points (plus
the origin) supplies both ``g(N)`` and ``g'(N)`` to every solver, with no
functional-form assumption.  Useful when the measured curve has structure a
quadratic cannot capture (plateaus, early saturation).

Only the increasing range up to the measured peak is retained — the same
argument as the paper's Fig. 2(b) treatment: the checkpointed optimum can
never sit beyond the failure-free optimum.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.speedup.base import ArrayLike, SpeedupModel
from repro.speedup.fitting import select_initial_range


class InterpolatedSpeedup(SpeedupModel):
    """Monotone (PCHIP) interpolation of measured ``(N, speedup)`` points.

    Parameters
    ----------
    scales, speedups:
        Measured points (>= 3 after initial-range selection).  The origin
        (0, 0) is prepended automatically; the measured peak becomes the
        ideal scale.

    Notes
    -----
    PCHIP preserves monotonicity of the data, so ``g`` is nondecreasing on
    ``(0, N^(*))`` and the solvers' bisection preconditions hold.
    """

    def __init__(self, scales, speedups):
        scales = np.asarray(scales, dtype=float)
        speedups = np.asarray(speedups, dtype=float)
        if np.any(scales <= 0):
            raise ValueError("all measured scales must be positive")
        if np.any(speedups < 0):
            raise ValueError("speedups must be non-negative")
        scales, speedups = select_initial_range(scales, speedups)
        # drop any non-increasing stragglers so PCHIP stays monotone
        keep = np.concatenate([[True], np.diff(speedups) > 0])
        scales, speedups = scales[keep], speedups[keep]
        if scales.size < 3:
            raise ValueError(
                "need at least 3 strictly increasing points to interpolate, "
                f"got {scales.size}"
            )
        x = np.concatenate([[0.0], scales])
        y = np.concatenate([[0.0], speedups])
        self._interp = PchipInterpolator(x, y, extrapolate=False)
        self._deriv = self._interp.derivative()
        self._ideal = float(scales[-1])
        self._peak = float(speedups[-1])

    def speedup(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        clipped = np.clip(n_arr, 0.0, self._ideal)
        out = self._interp(clipped)
        if out.ndim == 0:
            return float(out)
        return out

    def derivative(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        clipped = np.clip(n_arr, 0.0, self._ideal)
        out = self._deriv(clipped)
        # beyond the last measurement the curve is flat (peak plateau)
        out = np.where(n_arr >= self._ideal, 0.0, out)
        if out.ndim == 0:
            return float(out)
        return out

    @property
    def ideal_scale(self) -> float:
        return self._ideal

    @property
    def peak_speedup(self) -> float:
        """Speedup at the last measured (peak) point."""
        return self._peak

    def __repr__(self) -> str:
        return (
            f"InterpolatedSpeedup(ideal_scale={self._ideal}, "
            f"peak_speedup={self._peak:.1f})"
        )
