"""Abstract speedup model interface.

The paper (Table I) characterizes an application by its speedup function
``g(N)`` — the ratio of single-core execution length to parallel execution
time at scale ``N`` — and its parallel productive time
``f(T_e, N) = T_e / g(N)``.  Every solver in :mod:`repro.core` consumes this
interface and nothing else, which is what makes the model "generic enough to
be suitable for different scenarios" (strong vs weak scaling differ only in
the speedup / cost functions).
"""

from __future__ import annotations

import abc
import math
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def _freeze(value):
    """A comparable, hashable stand-in for one instance attribute."""
    if isinstance(value, np.ndarray):
        return (value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return value
    # Derived callables (interpolators, their derivatives) carry no state
    # beyond what the constructing attributes already capture.
    return type(value).__qualname__


class SpeedupModel(abc.ABC):
    """Speedup function ``g(N)`` with derivative and ideal-scale knowledge.

    Models compare by *value*: two instances of the same class with equal
    constructor state are equal (and hash equal), so parameter objects
    built twice from the same inputs — e.g. by repeated ``make_params``
    calls — compare equal, which the solver memo cache and the
    serial-vs-parallel bit-identity tests rely on.
    """

    def _state(self) -> tuple:
        """Comparable snapshot of the instance attributes (overridable)."""
        return tuple(
            (name, _freeze(value)) for name, value in sorted(vars(self).items())
        )

    def __eq__(self, other) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._state() == other._state()

    def __hash__(self) -> int:
        return hash((type(self).__qualname__, self._state()))

    @abc.abstractmethod
    def speedup(self, n: ArrayLike) -> ArrayLike:
        """Return ``g(N)`` for scale(s) ``n`` (cores)."""

    @abc.abstractmethod
    def derivative(self, n: ArrayLike) -> ArrayLike:
        """Return ``g'(N)`` for scale(s) ``n``."""

    @property
    @abc.abstractmethod
    def ideal_scale(self) -> float:
        """The scale ``N^(*)`` with maximum failure-free speedup.

        ``math.inf`` for models whose speedup grows without bound (linear).
        The optimal checkpointed scale is provably no larger than this
        (Section III-C.2), so solvers restrict their search to
        ``(0, N^(*)]``.
        """

    def productive_time(self, te_core_seconds: float, n: ArrayLike) -> ArrayLike:
        """``f(T_e, N) = T_e / g(N)`` — parallel productive time in seconds.

        ``te_core_seconds`` is the single-core productive time (core-seconds).
        """
        g = self.speedup(n)
        return te_core_seconds / g

    def validate_scale(self, n: float) -> None:
        """Raise ``ValueError`` when ``n`` is outside the usable range."""
        if not n > 0:
            raise ValueError(f"scale must be positive, got {n}")
        if math.isfinite(self.ideal_scale) and n > self.ideal_scale:
            raise ValueError(
                f"scale {n} exceeds the ideal scale N^(*)={self.ideal_scale}; "
                "beyond it the speedup decreases and the model is not fitted"
            )

    def efficiency(self, n: ArrayLike) -> ArrayLike:
        """Failure-free parallel efficiency ``g(N)/N``."""
        return self.speedup(n) / np.asarray(n, dtype=float)
