"""Karp-Flatt metric: experimentally determined serial fraction.

Given a measured speedup ``psi`` on ``N`` cores, the Karp-Flatt metric

``e = (1/psi - 1/N) / (1 - 1/N)``

estimates the serial fraction including parallel overheads.  A rising ``e``
with scale signals growing communication cost — exactly the regime where the
paper's quadratic curve (Formula 12) bends over.
"""

from __future__ import annotations

import numpy as np


def karp_flatt_metric(speedup, n):
    """Return the Karp-Flatt experimentally-determined serial fraction.

    Parameters
    ----------
    speedup:
        Measured speedup(s) ``psi`` (scalar or array).
    n:
        Core count(s), each > 1.
    """
    psi = np.asarray(speedup, dtype=float)
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr <= 1):
        raise ValueError("Karp-Flatt metric requires N > 1")
    if np.any(psi <= 0):
        raise ValueError("speedup must be positive")
    result = (1.0 / psi - 1.0 / n_arr) / (1.0 - 1.0 / n_arr)
    if result.ndim == 0:
        return float(result)
    return result
