"""Gustafson-Barsis scaled speedup model (weak scaling).

``g(N) = N - s * (N - 1)`` where ``s`` is the serial fraction measured on
the parallel system.  Used for weak-scaling scenarios, which the paper's
generic formulation covers through the speedup-function abstraction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.speedup.base import ArrayLike, SpeedupModel


class GustafsonSpeedup(SpeedupModel):
    """Gustafson-Barsis law: ``g(N) = N - s (N - 1)``."""

    def __init__(self, serial_fraction: float, *, max_scale: float = math.inf):
        if not 0.0 <= serial_fraction < 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1), got {serial_fraction}"
            )
        if not max_scale > 0:
            raise ValueError(f"max_scale must be positive, got {max_scale}")
        self.serial_fraction = float(serial_fraction)
        self._max_scale = float(max_scale)

    def speedup(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        s = self.serial_fraction
        return n_arr - s * (n_arr - 1.0)

    def derivative(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        slope = 1.0 - self.serial_fraction
        if n_arr.ndim:
            return np.full(n_arr.shape, slope)
        return slope

    @property
    def ideal_scale(self) -> float:
        return self._max_scale

    def __repr__(self) -> str:
        return (
            f"GustafsonSpeedup(serial_fraction={self.serial_fraction}, "
            f"max_scale={self._max_scale})"
        )
