"""Amdahl's-law speedup model.

The paper notes (Section III-C.2) that Formula (12)'s coefficients can also
be estimated through Amdahl's law, Gustafson-Barsis's law and the Karp-Flatt
metric.  This model is provided so users can plug an Amdahl-characterized
application directly into the solvers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.speedup.base import ArrayLike, SpeedupModel


class AmdahlSpeedup(SpeedupModel):
    """``g(N) = 1 / (s + (1 - s)/N)`` with serial fraction ``s``.

    Strictly increasing and bounded by ``1/s``; since it has no interior
    maximum, the ideal scale is taken as the supplied machine cap (or
    infinity).
    """

    def __init__(self, serial_fraction: float, *, max_scale: float = math.inf):
        if not 0.0 <= serial_fraction < 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1), got {serial_fraction}"
            )
        if not max_scale > 0:
            raise ValueError(f"max_scale must be positive, got {max_scale}")
        self.serial_fraction = float(serial_fraction)
        self._max_scale = float(max_scale)

    def speedup(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / n_arr)

    def derivative(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        s = self.serial_fraction
        denom = (s * n_arr + (1.0 - s)) ** 2
        return (1.0 - s) / denom

    @property
    def ideal_scale(self) -> float:
        return self._max_scale

    @property
    def asymptotic_speedup(self) -> float:
        """``1/s`` — the Amdahl ceiling (``inf`` when fully parallel)."""
        if self.serial_fraction == 0.0:
            return math.inf
        return 1.0 / self.serial_fraction

    def __repr__(self) -> str:
        return (
            f"AmdahlSpeedup(serial_fraction={self.serial_fraction}, "
            f"max_scale={self._max_scale})"
        )
