"""Least-squares fitting of the paper's quadratic speedup curve (Fig. 2).

Formula (12) constrains the quadratic through the origin:

``g(N) = a N^2 + kappa N`` with ``a = -kappa / (2 N^(*))``.

Fitting therefore solves the linear least-squares problem in the two free
coefficients ``(a, kappa)`` on the design matrix ``[N^2, N]``.

For applications whose measured speedup rises and then *falls* (the Nek5000
eddy_uv example, Fig. 2(b)), the paper fits only the initial increasing
range through the maximum observed speedup — the checkpoint-optimal scale
cannot exceed the failure-free optimum, so only that range matters.
:func:`select_initial_range` implements that truncation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.speedup.quadratic import QuadraticSpeedup


@dataclass(frozen=True)
class QuadraticFit:
    """Result of fitting Formula (12) to measured speedup points.

    Attributes
    ----------
    model:
        The fitted :class:`QuadraticSpeedup`.
    kappa:
        Fitted origin slope.
    ideal_scale:
        Fitted symmetry axis ``N^(*) = -kappa / (2 a)``.
    residual_rms:
        Root-mean-square residual of the fit over the points used.
    n_points_used:
        Number of points retained after initial-range selection.
    """

    model: QuadraticSpeedup
    kappa: float
    ideal_scale: float
    residual_rms: float
    n_points_used: int


def select_initial_range(
    scales: np.ndarray, speedups: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Keep points up to and including the maximum measured speedup.

    Implements the Fig. 2(b) treatment: for rise-then-fall speedup data only
    the initial increasing range (through the peak) is fitted, because the
    checkpoint-optimal scale is provably no larger than the failure-free
    optimum.  Points must be pre-sorted by scale; this function sorts
    defensively.
    """
    scales = np.asarray(scales, dtype=float)
    speedups = np.asarray(speedups, dtype=float)
    if scales.shape != speedups.shape:
        raise ValueError(
            f"scales and speedups differ in shape: {scales.shape} vs {speedups.shape}"
        )
    if scales.size == 0:
        raise ValueError("no speedup points supplied")
    order = np.argsort(scales)
    scales = scales[order]
    speedups = speedups[order]
    peak = int(np.argmax(speedups))
    return scales[: peak + 1], speedups[: peak + 1]


def fit_quadratic_speedup(
    scales,
    speedups,
    *,
    restrict_to_initial_range: bool = True,
) -> QuadraticFit:
    """Fit Formula (12) to measured ``(scale, speedup)`` points.

    Parameters
    ----------
    scales, speedups:
        Measured core counts and speedups (array-likes of equal length,
        at least 2 points).
    restrict_to_initial_range:
        Apply :func:`select_initial_range` first (the paper's Fig. 2(b)
        procedure).  Disable to fit all points as-is.

    Raises
    ------
    ValueError
        If fewer than two points remain, or the fitted curvature is not
        negative (no interior maximum — the data does not bend over, so a
        linear or Amdahl model should be used instead).
    """
    scales = np.asarray(scales, dtype=float)
    speedups = np.asarray(speedups, dtype=float)
    if np.any(scales <= 0):
        raise ValueError("all scales must be positive core counts")
    if np.any(speedups < 0):
        raise ValueError("speedups must be non-negative")
    if restrict_to_initial_range:
        scales, speedups = select_initial_range(scales, speedups)
    if scales.size < 2:
        raise ValueError(
            f"need at least 2 points to fit the quadratic, got {scales.size}"
        )
    # Through-origin design matrix [N^2, N]; solve for (a, kappa).
    design = np.column_stack([scales**2, scales])
    coeffs, _, _, _ = np.linalg.lstsq(design, speedups, rcond=None)
    a, kappa = float(coeffs[0]), float(coeffs[1])
    if kappa <= 0:
        raise ValueError(f"fitted origin slope kappa={kappa:.4g} is not positive")
    if a >= 0:
        raise ValueError(
            f"fitted curvature a={a:.4g} is not negative; the data shows no "
            "interior speedup maximum (use LinearSpeedup or AmdahlSpeedup)"
        )
    ideal_scale = -kappa / (2.0 * a)
    model = QuadraticSpeedup(kappa=kappa, ideal_scale=ideal_scale)
    residuals = model.speedup(scales) - speedups
    rms = float(np.sqrt(np.mean(residuals**2)))
    return QuadraticFit(
        model=model,
        kappa=kappa,
        ideal_scale=ideal_scale,
        residual_rms=rms,
        n_points_used=int(scales.size),
    )
