"""The paper's quadratic speedup curve (Formula 12).

``g(N) = -kappa/(2 N^(*)) * N^2 + kappa * N``

where ``kappa`` is the slope at the origin and ``N^(*)`` the symmetry-axis
location, i.e. the ideal (failure-free) optimal scale.  The curve passes
through the origin and peaks at ``g(N^(*)) = kappa * N^(*) / 2``.
"""

from __future__ import annotations

import numpy as np

from repro.speedup.base import ArrayLike, SpeedupModel


class QuadraticSpeedup(SpeedupModel):
    """Quadratic speedup of Formula (12).

    Parameters
    ----------
    kappa:
        Slope of the speedup curve at ``N = 0``; estimable from a single
        small-scale run (the paper's Heat Distribution example: speedup 77 at
        160 cores gives ``kappa ~ 0.48``, close to the fitted 0.46).
    ideal_scale:
        ``N^(*)``, the scale of maximum speedup (symmetry axis).
    """

    def __init__(self, kappa: float, ideal_scale: float):
        if not kappa > 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        if not ideal_scale > 0:
            raise ValueError(f"ideal_scale must be positive, got {ideal_scale}")
        self.kappa = float(kappa)
        self._ideal_scale = float(ideal_scale)

    @property
    def curvature(self) -> float:
        """The quadratic coefficient ``-kappa / (2 N^(*))``."""
        return -self.kappa / (2.0 * self._ideal_scale)

    def speedup(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        return self.curvature * n_arr * n_arr + self.kappa * n_arr

    def derivative(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        return 2.0 * self.curvature * n_arr + self.kappa

    @property
    def ideal_scale(self) -> float:
        return self._ideal_scale

    @property
    def peak_speedup(self) -> float:
        """``g(N^(*)) = kappa * N^(*) / 2``."""
        return self.kappa * self._ideal_scale / 2.0

    @classmethod
    def from_single_measurement(
        cls, n_measured: float, speedup_measured: float, ideal_scale: float
    ) -> "QuadraticSpeedup":
        """Estimate ``kappa`` from one (scale, speedup) observation.

        Inverts Formula (12):
        ``kappa = s / (N - N^2 / (2 N^(*)))``.  Only valid for
        ``n_measured < 2 * ideal_scale``.
        """
        denom = n_measured - n_measured**2 / (2.0 * ideal_scale)
        if denom <= 0:
            raise ValueError(
                f"measurement scale {n_measured} too large relative to the "
                f"ideal scale {ideal_scale} (denominator {denom} <= 0)"
            )
        return cls(kappa=speedup_measured / denom, ideal_scale=ideal_scale)

    def __repr__(self) -> str:
        return f"QuadraticSpeedup(kappa={self.kappa}, ideal_scale={self._ideal_scale})"
