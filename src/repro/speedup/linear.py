"""Linear speedup ``g(N) = kappa * N`` (paper Section III-C.1)."""

from __future__ import annotations

import math

import numpy as np

from repro.speedup.base import ArrayLike, SpeedupModel


class LinearSpeedup(SpeedupModel):
    """``g(N) = kappa N`` — embarrassingly parallel applications.

    ``kappa`` is the per-core efficiency constant; ``kappa = 1`` is perfect
    scaling.  The ideal scale is unbounded, so solvers must be given an
    explicit upper bound (e.g. the machine size) when using this model.
    """

    def __init__(self, kappa: float = 1.0, *, max_scale: float = math.inf):
        if not kappa > 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        if not max_scale > 0:
            raise ValueError(f"max_scale must be positive, got {max_scale}")
        self.kappa = float(kappa)
        self._max_scale = float(max_scale)

    def speedup(self, n: ArrayLike) -> ArrayLike:
        return self.kappa * np.asarray(n, dtype=float)

    def derivative(self, n: ArrayLike) -> ArrayLike:
        n_arr = np.asarray(n, dtype=float)
        return np.broadcast_to(np.float64(self.kappa), n_arr.shape).copy() if n_arr.ndim else self.kappa

    @property
    def ideal_scale(self) -> float:
        """Machine-size cap (``inf`` unless ``max_scale`` was given)."""
        return self._max_scale

    def __repr__(self) -> str:
        return f"LinearSpeedup(kappa={self.kappa}, max_scale={self._max_scale})"
