"""Reference speedup datasets for the two applications in Fig. 2.

The paper plots measured speedup points for:

* **Heat Distribution** on the Argonne Fusion cluster, up to 1,024 cores,
  whose fitted quadratic has ``kappa = 0.46`` and (in the Fig. 3 / Section
  III-C numerical study) an ideal scale ``N^(*) = 100,000`` cores.  The
  paper also quotes one raw observation: speedup 77 at 160 cores.
* **Nek5000 eddy_uv**, whose speedup rises quickly then *decreases* beyond
  ~100 cores due to communication cost; the quadratic is fitted on the
  initial range (1-100 cores).

The raw per-point values are not tabulated in the paper, so these datasets
are *regenerated* from the quoted fitted curves plus bounded multiplicative
measurement noise.  What matters downstream is that the least-squares fit of
these points recovers the paper's coefficients (property-tested in
``tests/speedup/test_datasets.py``), so every experiment driver starts from
the same fitted model the paper used.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator

#: Fitted origin slope for Heat Distribution quoted in the paper.
HEAT_KAPPA: float = 0.46
#: Ideal scale used throughout the paper's numerical studies for Heat.
HEAT_IDEAL_SCALE: float = 100_000.0
#: The paper's single quoted raw measurement (Section III-C.2).
HEAT_RAW_POINT: tuple[float, float] = (160.0, 77.0)

#: eddy_uv speedup peaks near 100 cores (Fig. 2(b)).
EDDY_PEAK_SCALE: float = 100.0
#: Origin slope of the eddy_uv initial-range quadratic (shape-matched).
EDDY_KAPPA: float = 0.9


def _quadratic(n: np.ndarray, kappa: float, ideal: float) -> np.ndarray:
    return -kappa / (2.0 * ideal) * n**2 + kappa * n


def heat_distribution_speedup_points(
    *, noise: float = 0.03, seed: SeedLike = 20140101
) -> tuple[np.ndarray, np.ndarray]:
    """Measured-style speedup points for Heat Distribution (Fig. 2(a)).

    Returns ``(scales, speedups)`` for the power-of-two scales the Fusion
    experiments used (16..1,024 cores) plus the quoted (160, 77) raw point.
    ``noise`` is the relative std-dev of multiplicative measurement jitter.
    """
    if not 0.0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5), got {noise}")
    rng = as_generator(seed)
    scales = np.array([16, 32, 64, 128, 256, 384, 512, 768, 1024], dtype=float)
    ideal = _quadratic(scales, HEAT_KAPPA, HEAT_IDEAL_SCALE)
    jitter = 1.0 + rng.normal(0.0, noise, size=scales.shape)
    speedups = ideal * np.clip(jitter, 0.5, 1.5)
    scales = np.append(scales, HEAT_RAW_POINT[0])
    speedups = np.append(speedups, HEAT_RAW_POINT[1])
    order = np.argsort(scales)
    return scales[order], speedups[order]


def nek5000_eddy_speedup_points(
    *, noise: float = 0.04, seed: SeedLike = 20140102
) -> tuple[np.ndarray, np.ndarray]:
    """Rise-then-fall speedup points for Nek5000 eddy_uv (Fig. 2(b)).

    The increasing range (up to ~100 cores) follows the initial-range
    quadratic; beyond the peak the speedup decays with growing communication
    cost, reproducing the shape the paper's Fig. 2(b) shows.  Only the
    initial range is meant to be fitted (see
    :func:`repro.speedup.fitting.select_initial_range`).
    """
    if not 0.0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5), got {noise}")
    rng = as_generator(seed)
    rising = np.array([4, 8, 16, 32, 48, 64, 80, 100], dtype=float)
    falling = np.array([128, 160, 192, 224, 256], dtype=float)
    peak_speedup = _quadratic(np.array([EDDY_PEAK_SCALE]), EDDY_KAPPA, EDDY_PEAK_SCALE)[0]
    rise = _quadratic(rising, EDDY_KAPPA, EDDY_PEAK_SCALE)
    # Past the peak, communication cost makes speedup decay hyperbolically.
    fall = peak_speedup * (EDDY_PEAK_SCALE / falling) ** 0.8
    scales = np.concatenate([rising, falling])
    speedups = np.concatenate([rise, fall])
    jitter = 1.0 + rng.normal(0.0, noise, size=scales.shape)
    speedups = speedups * np.clip(jitter, 0.5, 1.5)
    return scales, speedups
