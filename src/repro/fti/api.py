"""Application-facing FTI-like API.

Mirrors the FTI toolkit's workflow on the simulated cluster:

* ``protect(rank, name, array)`` registers application state, like
  ``FTI_Protect``;
* ``checkpoint(level)`` snapshots every rank's protected state into the
  chosen level's storage, like ``FTI_Checkpoint``;
* ``fail_nodes(...)`` crashes nodes, erasing whatever they stored;
* ``recover()`` restores all protected state from the cheapest level that
  survives the observed failure pattern, like ``FTI_Recover``.

Storage semantics per level:

* **Level 1** — blob kept only on the owner node; lost with the node.
* **Level 2** — blob additionally on the ring partner
  (:class:`repro.fti.partner.PartnerStore`).
* **Level 3** — per RS group, real Reed-Solomon parity over the member
  blobs (:class:`repro.fti.rs.ReedSolomonErasure`).  FTI interleaves the
  parity chunks across members; here every surviving member can serve the
  group parity (replicated), which yields the identical node-granularity
  guarantee — the group survives up to ``m`` simultaneous member losses —
  with simpler bookkeeping (substitution documented in DESIGN.md).
* **Level 4** — blob on the PFS, which never fails in this model.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.fti.levels import CheckpointLevel
from repro.fti.partner import PartnerStore
from repro.fti.recovery import RecoveryDecision, RecoveryPlanner
from repro.fti.rs import ReedSolomonErasure


def _pad_blocks(blobs: list[bytes]) -> np.ndarray:
    """Stack variable-length blobs into an equal-length uint8 matrix."""
    width = max(len(b) for b in blobs)
    out = np.zeros((len(blobs), width), dtype=np.uint8)
    for i, b in enumerate(blobs):
        out[i, : len(b)] = np.frombuffer(b, dtype=np.uint8)
    return out


@dataclass
class _RSGroupCheckpoint:
    """One RS group's encoded checkpoint: member blobs + replicated parity."""

    members: list[int]
    blob_lengths: list[int]
    data_on_node: dict[int, bytes]
    parity: np.ndarray  # (m, width)
    code: ReedSolomonErasure


@dataclass
class FTIContext:
    """FTI-like multilevel checkpoint context for one application run."""

    topology: ClusterTopology
    ranks_per_node: int = 1
    _protected: dict[int, dict[str, np.ndarray]] = field(
        default_factory=dict, repr=False
    )
    _level1: dict[int, bytes] = field(default_factory=dict, repr=False)
    _partner: PartnerStore = field(init=False, repr=False)
    _level3: list[_RSGroupCheckpoint] = field(default_factory=list, repr=False)
    _level4: dict[int, bytes] = field(default_factory=dict, repr=False)
    _failed: set[int] = field(default_factory=set, repr=False)
    _planner: RecoveryPlanner = field(init=False, repr=False)
    #: checkpoint recency: level -> sequence number of its newest checkpoint
    _seq: dict[int, int] = field(default_factory=dict, repr=False)
    _next_seq: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )
        self._partner = PartnerStore(self.topology)
        self._planner = RecoveryPlanner(self.topology)

    # -- registration -----------------------------------------------------

    @property
    def num_ranks(self) -> int:
        """Total MPI ranks in the job."""
        return self.topology.num_nodes * self.ranks_per_node

    def node_of_rank(self, rank: int) -> int:
        """Block distribution of ranks onto nodes."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        return rank // self.ranks_per_node

    def protect(self, rank: int, name: str, array: np.ndarray) -> None:
        """Register ``array`` as rank-``rank`` state to be checkpointed.

        The live array object is referenced (not copied) so in-place updates
        between checkpoints are captured, exactly like ``FTI_Protect``.
        """
        self.node_of_rank(rank)  # validates
        self._protected.setdefault(rank, {})[name] = array

    # -- checkpointing ----------------------------------------------------

    def _node_blob(self, node_id: int) -> bytes:
        """Serialize all protected state of the ranks living on a node."""
        payload = {}
        for rank in range(
            node_id * self.ranks_per_node, (node_id + 1) * self.ranks_per_node
        ):
            if rank in self._protected:
                payload[rank] = {
                    name: arr.copy() for name, arr in self._protected[rank].items()
                }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def checkpoint(self, level: CheckpointLevel | int) -> None:
        """Take a checkpoint of every protected rank at ``level``."""
        level = CheckpointLevel(level)
        if not self._protected:
            raise RuntimeError("nothing protected: call protect() first")
        blobs = {
            node: self._node_blob(node) for node in range(self.topology.num_nodes)
        }
        if level == CheckpointLevel.LOCAL:
            self._level1 = dict(blobs)
        elif level == CheckpointLevel.PARTNER:
            self._level1 = dict(blobs)
            for node, blob in blobs.items():
                self._partner.store(node, blob)
        elif level == CheckpointLevel.RS_ENCODING:
            self._level1 = dict(blobs)
            self._level3 = []
            n_groups = -(-self.topology.num_nodes // self.topology.rs_group_size)
            for g in range(n_groups):
                members = self.topology.rs_group_members(g)
                member_blobs = [blobs[m] for m in members]
                k = len(members)
                m = min(self.topology.rs_parity, max(1, k - 1))
                code = ReedSolomonErasure(k=k, m=m)
                data = _pad_blocks(member_blobs)
                parity = code.encode(data)
                self._level3.append(
                    _RSGroupCheckpoint(
                        members=members,
                        blob_lengths=[len(b) for b in member_blobs],
                        data_on_node={mm: blobs[mm] for mm in members},
                        parity=parity,
                        code=code,
                    )
                )
        elif level == CheckpointLevel.PFS:
            self._level4 = dict(blobs)
        else:  # pragma: no cover - CheckpointLevel() already validates
            raise ValueError(f"unknown level {level}")
        self._seq[int(level)] = self._next_seq
        self._next_seq += 1

    def checkpoints_present(self) -> dict[int, bool]:
        """Which levels currently hold a *servable* checkpoint.

        Completeness matters, not mere existence: an earlier crash may have
        destroyed some nodes' blobs, leaving a level unusable until its
        next checkpoint even though the current failure pattern alone looks
        survivable.  Level 1 needs every node's local blob; level 2 needs
        every node recoverable through the partner store; level 3 needs
        every RS group to retain at least ``k - m`` data blocks.
        """
        return {
            1: len(self._level1) == self.topology.num_nodes
            and not (set(self._level1) & self._failed),
            2: bool(self._partner._local)
            and self._partner.complete_for(self.topology.num_nodes, self._failed),
            3: bool(self._level3) and self._rs_servable(),
            4: bool(self._level4),
        }

    def _rs_servable(self) -> bool:
        """Whether every RS group can still reconstruct all member blobs."""
        for group in self._level3:
            survivors = sum(
                1
                for member in group.members
                if member in group.data_on_node and member not in self._failed
            )
            if survivors < len(group.members) - group.code.m:
                return False
        return True

    # -- failure ----------------------------------------------------------

    def fail_nodes(self, node_ids: Iterable[int]) -> None:
        """Crash ``node_ids`` simultaneously, erasing everything they stored."""
        for node in set(node_ids):
            self.topology._check_active(node)
            self._failed.add(node)
            self._level1.pop(node, None)
            self._partner.drop_node(node)
            for group in self._level3:
                group.data_on_node.pop(node, None)

    # -- recovery ---------------------------------------------------------

    def recover(self) -> RecoveryDecision:
        """Restore every protected array from the *newest* surviving level.

        Among levels at or above the failure's classification that hold a
        servable checkpoint, the most recently *taken* one wins (real FTI
        restores the newest usable checkpoint, not the cheapest level's) —
        recency tie-breaks to the cheaper level.  Returns the
        :class:`RecoveryDecision`; clears the failed-node set (allocation
        replaced the hardware).
        """
        failure_level = self._planner.classify_failure(self._failed)
        present = self.checkpoints_present()
        candidates = [
            level
            for level in CheckpointLevel.all_levels()
            if level >= failure_level and present.get(int(level), False)
        ]
        if not candidates:
            raise ValueError(
                f"no checkpoint at level >= {int(failure_level)} exists; "
                "the application state is unrecoverable"
            )
        chosen = max(candidates, key=lambda lvl: (self._seq.get(int(lvl), -1), -int(lvl)))
        decision = RecoveryDecision(
            failure_level=failure_level, recovery_level=chosen
        )
        blobs = self._collect_blobs(decision.recovery_level)
        for node, blob in blobs.items():
            payload = pickle.loads(blob)
            for rank, arrays in payload.items():
                for name, saved in arrays.items():
                    live = self._protected.get(rank, {}).get(name)
                    if live is not None and live.shape == saved.shape:
                        live[...] = saved
                    else:
                        self._protected.setdefault(rank, {})[name] = saved.copy()
        for node in self._failed:
            self.topology.nodes[node].repair()
        self._failed.clear()
        return decision

    def _collect_blobs(self, level: CheckpointLevel) -> dict[int, bytes]:
        if level == CheckpointLevel.LOCAL:
            if len(self._level1) != self.topology.num_nodes:
                raise ValueError("level-1 checkpoint incomplete after node loss")
            return dict(self._level1)
        if level == CheckpointLevel.PARTNER:
            return {
                node: self._partner.recover(node, self._failed)
                for node in range(self.topology.num_nodes)
            }
        if level == CheckpointLevel.RS_ENCODING:
            out: dict[int, bytes] = {}
            for group in self._level3:
                out.update(self._recover_rs_group(group))
            return out
        if level == CheckpointLevel.PFS:
            return dict(self._level4)
        raise ValueError(f"unknown level {level}")  # pragma: no cover

    def _recover_rs_group(self, group: _RSGroupCheckpoint) -> dict[int, bytes]:
        k = len(group.members)
        surviving: list[tuple[int, np.ndarray]] = []
        width = group.parity.shape[1]
        for idx, member in enumerate(group.members):
            if member in group.data_on_node:
                block = np.zeros(width, dtype=np.uint8)
                raw = np.frombuffer(group.data_on_node[member], dtype=np.uint8)
                block[: raw.size] = raw
                surviving.append((idx, block))
        needed_parity = k - len(surviving)
        if needed_parity > group.code.m:
            raise ValueError(
                f"RS group {group.members} lost {needed_parity} data blocks, "
                f"more than parity m={group.code.m} can restore"
            )
        for p in range(needed_parity):
            surviving.append((k + p, group.parity[p]))
        surviving = surviving[:k]
        blocks = np.stack([b for _, b in surviving])
        indices = [i for i, _ in surviving]
        data = group.code.decode(blocks, indices)
        out = {}
        for idx, member in enumerate(group.members):
            out[member] = data[idx, : group.blob_lengths[idx]].tobytes()
        return out
