"""Checkpoint-set management: versioning, checksums, atomic commit.

Real FTI maintains *checkpoint sets*: a new checkpoint is written alongside
the previous one, verified (checksums), and only then atomically promoted —
a crash mid-write must leave the previous set usable.  This module adds
that durability layer over the in-memory stores: every blob carries a
CRC-32; a set is readable only after ``commit()``; an abort (simulated
crash mid-write) leaves the previous committed set intact; corruption is
detected on read.

The simulator does not need this fidelity (it abstracts checkpoints to
costs), but the functional FTI path and its tests do — a checkpoint
library that can serve a torn write is not a checkpoint library.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ChecksumError(RuntimeError):
    """A stored blob failed checksum verification on read."""


@dataclass
class _StoredBlob:
    payload: bytes
    crc32: int

    @classmethod
    def wrap(cls, payload: bytes) -> "_StoredBlob":
        return cls(payload=bytes(payload), crc32=zlib.crc32(payload))

    def unwrap(self, context: str) -> bytes:
        if zlib.crc32(self.payload) != self.crc32:
            raise ChecksumError(f"checksum mismatch reading {context}")
        return self.payload


@dataclass
class CheckpointSet:
    """One versioned, atomically-committed set of per-node blobs."""

    version: int
    level: int
    _blobs: dict[int, _StoredBlob] = field(default_factory=dict, repr=False)
    committed: bool = False

    def write(self, node_id: int, payload: bytes) -> None:
        """Stage ``payload`` for ``node_id``; rejected after commit."""
        if self.committed:
            raise RuntimeError(
                f"checkpoint set v{self.version} is committed and immutable"
            )
        self._blobs[node_id] = _StoredBlob.wrap(payload)

    def read(self, node_id: int) -> bytes:
        """Read a committed, checksum-verified blob."""
        if not self.committed:
            raise RuntimeError(
                f"checkpoint set v{self.version} was never committed"
            )
        try:
            blob = self._blobs[node_id]
        except KeyError:
            raise KeyError(
                f"no blob for node {node_id} in set v{self.version}"
            ) from None
        return blob.unwrap(f"node {node_id} of set v{self.version}")

    def corrupt(self, node_id: int) -> None:
        """Flip a byte in a stored blob (failure-injection for tests)."""
        blob = self._blobs[node_id]
        if not blob.payload:
            raise ValueError(f"blob for node {node_id} is empty")
        mutated = bytearray(blob.payload)
        mutated[0] ^= 0xFF
        blob.payload = bytes(mutated)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Nodes with a staged/committed blob."""
        return tuple(sorted(self._blobs))


class CheckpointSetManager:
    """Rotating two-set manager with atomic promotion.

    At most ``keep`` committed sets are retained (FTI keeps the latest
    valid one per level; we default to 2 so a verification pass can compare
    against the predecessor).
    """

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        self._committed: list[CheckpointSet] = []
        self._staging: Optional[CheckpointSet] = None
        self._next_version = 1

    def begin(self, level: int) -> CheckpointSet:
        """Open a new staging set; any unfinished one is discarded."""
        self._staging = CheckpointSet(version=self._next_version, level=level)
        self._next_version += 1
        return self._staging

    def commit(self) -> CheckpointSet:
        """Atomically promote the staging set.

        Only after this returns is the new set the recovery source; the
        previous committed sets are kept per the rotation policy.
        """
        if self._staging is None:
            raise RuntimeError("no staging checkpoint set to commit")
        if not self._staging._blobs:
            raise RuntimeError("refusing to commit an empty checkpoint set")
        self._staging.committed = True
        self._committed.append(self._staging)
        self._staging = None
        if len(self._committed) > self.keep:
            self._committed = self._committed[-self.keep :]
        return self._committed[-1]

    def abort(self) -> None:
        """Discard the staging set (simulates a crash mid-write)."""
        self._staging = None

    @property
    def latest(self) -> Optional[CheckpointSet]:
        """The newest committed set, or None."""
        return self._committed[-1] if self._committed else None

    def latest_at_or_above(self, level: int) -> Optional[CheckpointSet]:
        """Newest committed set whose level is >= ``level``."""
        for cs in reversed(self._committed):
            if cs.level >= level:
                return cs
        return None

    def __iter__(self) -> Iterator[CheckpointSet]:
        return iter(self._committed)
