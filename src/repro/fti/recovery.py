"""Recovery planning: which level restores a given failure pattern.

Given the set of simultaneously failed nodes (a correlated window,
:mod:`repro.failures.window`) and which checkpoint levels currently hold a
valid checkpoint, the planner picks the cheapest viable level:

1. no hardware loss (software/transient error) -> level 1 suffices;
2. partners intact -> level 2;
3. at most ``m`` losses per RS group -> level 3;
4. otherwise -> level 4 (PFS), which always works.

This is the FTI decision rule that the paper's failure-level taxonomy
(Section II) encodes; the simulator's per-level failure streams are the
statistical abstraction of exactly this classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cluster.topology import ClusterTopology
from repro.fti.levels import CheckpointLevel


@dataclass(frozen=True)
class RecoveryDecision:
    """Outcome of planning a recovery.

    Attributes
    ----------
    failure_level:
        The cheapest level whose *mechanism* survives the failure pattern
        (what the paper calls the failure's level).
    recovery_level:
        The level whose checkpoint will actually be used: the cheapest
        level >= ``failure_level`` that holds a valid checkpoint.
    """

    failure_level: CheckpointLevel
    recovery_level: CheckpointLevel


class RecoveryPlanner:
    """Maps failure patterns to recovery levels over a topology."""

    def __init__(self, topology: ClusterTopology):
        self.topology = topology

    def classify_failure(self, failed_nodes: Iterable[int]) -> CheckpointLevel:
        """The cheapest level whose mechanism survives losing ``failed_nodes``."""
        return CheckpointLevel(self.topology.lowest_recovery_level(failed_nodes))

    def plan(
        self,
        failed_nodes: Iterable[int],
        checkpoints_present: Mapping[int, bool],
    ) -> RecoveryDecision:
        """Pick the recovery level for a failure.

        Parameters
        ----------
        failed_nodes:
            Node ids lost in this correlated window (empty = software error).
        checkpoints_present:
            ``{level: has_valid_checkpoint}`` for levels 1-4.  Level 4 (PFS)
            must be present for the plan to be guaranteed; if *no* level at
            or above the failure level has a checkpoint, ``ValueError`` is
            raised (the application is lost — it never checkpointed high
            enough, so it must restart from scratch).
        """
        failure_level = self.classify_failure(failed_nodes)
        for level in CheckpointLevel.all_levels():
            if level < failure_level:
                continue
            if checkpoints_present.get(int(level), False):
                return RecoveryDecision(
                    failure_level=failure_level, recovery_level=level
                )
        raise ValueError(
            f"no checkpoint at level >= {int(failure_level)} exists; "
            "the application state is unrecoverable"
        )
