"""Systematic Reed-Solomon erasure coding over GF(256).

FTI's level 3 groups nodes into RS-encoding groups of ``k`` data members
and computes ``m`` parity blocks; the group survives any ``m`` simultaneous
node losses.  This is a real, working erasure code:

* the generator matrix is a Vandermonde matrix reduced so its top ``k`` rows
  are the identity (systematic form: data blocks are stored verbatim,
  parity appended);
* decoding inverts the ``k`` surviving rows of the generator matrix and
  multiplies — standard Reed-Solomon erasure reconstruction (Plank's
  tutorial construction, as used by Jerasure which FTI builds on).
"""

from __future__ import annotations

import numpy as np

from repro.fti.gf256 import GF256


def _vandermonde(rows: int, cols: int) -> np.ndarray:
    """``V[i, j] = (i + 1)^j`` over GF(256)."""
    v = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            v[i, j] = GF256.pow(i + 1, j)
    return v


def _systematic_generator(k: int, m: int) -> np.ndarray:
    """(k+m, k) generator matrix whose top k rows are the identity.

    Built by column-reducing a Vandermonde matrix; any k rows of the result
    remain linearly independent, which is what guarantees recovery from any
    m erasures.
    """
    v = _vandermonde(k + m, k)
    # Column operations to turn the top k x k block into the identity.
    top_inv = GF256.mat_inverse(v[:k, :])
    return GF256.matmul(v, top_inv)


class ReedSolomonErasure:
    """Systematic RS(k+m, k) erasure code.

    Parameters
    ----------
    k:
        Number of data blocks (RS group data members).
    m:
        Number of parity blocks (simultaneous losses tolerated).
    """

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if k + m > 255:
            raise ValueError(f"k + m must be <= 255 for GF(256), got {k + m}")
        self.k = k
        self.m = m
        self.generator = _systematic_generator(k, m)

    def encode(self, data_blocks: np.ndarray) -> np.ndarray:
        """Compute the ``m`` parity blocks for ``k`` equal-length data blocks.

        ``data_blocks`` is a (k, block_len) uint8 array; returns
        (m, block_len) parity.
        """
        data = np.asarray(data_blocks, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(
                f"expected (k={self.k}, block_len) data, got shape {data.shape}"
            )
        parity_rows = self.generator[self.k :, :]
        return GF256.matmul(parity_rows, data)

    def decode(
        self,
        available_blocks: np.ndarray,
        available_indices: list[int] | tuple[int, ...],
    ) -> np.ndarray:
        """Reconstruct the ``k`` data blocks from any ``k`` surviving blocks.

        Parameters
        ----------
        available_blocks:
            (k, block_len) uint8 array of surviving blocks.
        available_indices:
            Their indices in the encoded stripe: ``0..k-1`` are data blocks,
            ``k..k+m-1`` parity blocks.

        Raises
        ------
        ValueError
            When fewer than ``k`` blocks are supplied or indices are out of
            range / duplicated (more erasures than the code tolerates).
        """
        blocks = np.asarray(available_blocks, dtype=np.uint8)
        indices = list(available_indices)
        if len(indices) != self.k or blocks.shape[0] != self.k:
            raise ValueError(
                f"need exactly k={self.k} surviving blocks, got {len(indices)}"
            )
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate block indices: {indices}")
        if any(not 0 <= i < self.k + self.m for i in indices):
            raise ValueError(
                f"block indices must be in [0, {self.k + self.m}), got {indices}"
            )
        sub = self.generator[indices, :]
        sub_inv = GF256.mat_inverse(sub)
        return GF256.matmul(sub_inv, blocks)

    def max_erasures(self) -> int:
        """Simultaneous block losses the code survives (= ``m``)."""
        return self.m

    def __repr__(self) -> str:
        return f"ReedSolomonErasure(k={self.k}, m={self.m})"
