"""GF(2^8) arithmetic for Reed-Solomon erasure coding.

The field is built over the AES polynomial ``x^8 + x^4 + x^3 + x + 1``
(0x11b) with generator 3.  Multiplication and division use log/antilog
tables; array operations are vectorized through NumPy table lookups so
encoding large checkpoints stays fast (per the hpc-parallel guides:
vectorize the hot loop, no per-byte Python).
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11B
_GENERATOR = 3


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (3) in GF(256): x*3 = x*2 ^ x
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= _POLY
        x = x2 ^ x
    exp[255:510] = exp[0:255]
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Static helpers for GF(2^8) arithmetic (scalars and uint8 arrays)."""

    #: Antilog table: ``EXP[i] = g^i`` (doubled so sums of logs index directly).
    EXP = _EXP
    #: Log table: ``LOG[g^i] = i``; ``LOG[0]`` is unused (log of 0 undefined).
    LOG = _LOG

    @staticmethod
    def add(a, b):
        """Addition = subtraction = XOR in characteristic 2."""
        return np.bitwise_xor(a, b)

    @staticmethod
    def mul(a, b):
        """Elementwise product of scalars or uint8 arrays."""
        a_arr = np.asarray(a, dtype=np.uint8)
        b_arr = np.asarray(b, dtype=np.uint8)
        result = GF256.EXP[
            _LOG[a_arr.astype(np.int32)] + _LOG[b_arr.astype(np.int32)]
        ]
        # x * 0 = 0: the log of 0 is garbage, mask it out.
        zero = (a_arr == 0) | (b_arr == 0)
        result = np.where(zero, np.uint8(0), result)
        if result.ndim == 0:
            return int(result)
        return result.astype(np.uint8)

    @staticmethod
    def inverse(a):
        """Multiplicative inverse; raises on 0."""
        a_arr = np.asarray(a, dtype=np.uint8)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        result = GF256.EXP[255 - _LOG[a_arr.astype(np.int32)]]
        if result.ndim == 0:
            return int(result)
        return result.astype(np.uint8)

    @staticmethod
    def div(a, b):
        """Elementwise quotient; raises on division by zero."""
        b_arr = np.asarray(b, dtype=np.uint8)
        if np.any(b_arr == 0):
            raise ZeroDivisionError("division by zero in GF(256)")
        a_arr = np.asarray(a, dtype=np.uint8)
        result = GF256.EXP[
            (_LOG[a_arr.astype(np.int32)] - _LOG[b_arr.astype(np.int32)]) % 255
        ]
        zero = a_arr == 0
        result = np.where(zero, np.uint8(0), result)
        if result.ndim == 0:
            return int(result)
        return result.astype(np.uint8)

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """``a ** exponent`` for scalar ``a``."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 to a negative power in GF(256)")
            return 0
        log_a = int(_LOG[a])
        return int(GF256.EXP[(log_a * exponent) % 255])

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(256).

        ``a`` is (m, k) uint8, ``b`` is (k, n) uint8; result (m, n) uint8.
        Row-at-a-time accumulation with vectorized scalar-vector products
        keeps memory bounded for large ``n`` (checkpoint payloads).
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes for matmul: {a.shape} x {b.shape}")
        m, k = a.shape
        _, n = b.shape
        out = np.zeros((m, n), dtype=np.uint8)
        for j in range(k):
            col = a[:, j]  # (m,)
            row = b[j]  # (n,)
            # outer product col_i * row over GF, accumulated by XOR
            contrib = GF256.mul(col[:, None], row[None, :])
            np.bitwise_xor(out, contrib, out=out)
        return out

    @staticmethod
    def mat_inverse(matrix: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

        Raises ``np.linalg.LinAlgError`` when singular.
        """
        a = np.asarray(matrix, dtype=np.uint8).copy()
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got shape {a.shape}")
        n = a.shape[0]
        aug = np.concatenate([a, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            pivot_rows = np.nonzero(aug[col:, col])[0]
            if pivot_rows.size == 0:
                raise np.linalg.LinAlgError("matrix is singular over GF(256)")
            pivot = col + int(pivot_rows[0])
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            inv_pivot = GF256.inverse(int(aug[col, col]))
            aug[col] = GF256.mul(aug[col], np.uint8(inv_pivot))
            # eliminate this column from every other row
            factors = aug[:, col].copy()
            factors[col] = 0
            elimination = GF256.mul(factors[:, None], aug[col][None, :])
            np.bitwise_xor(aug, elimination, out=aug)
        return aug[:, n:]
