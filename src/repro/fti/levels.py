"""Checkpoint level definitions.

FTI's four levels, in increasing order of cost and protection strength
(paper Section I/II).  The integer values match the paper's 1-based level
indices everywhere in this library.
"""

from __future__ import annotations

import enum


class CheckpointLevel(enum.IntEnum):
    """The four FTI checkpoint levels."""

    #: Node-local storage: survives software/transient errors only.
    LOCAL = 1
    #: Partner copy: survives non-adjacent node failures.
    PARTNER = 2
    #: Reed-Solomon encoding: survives up to ``m`` losses per RS group.
    RS_ENCODING = 3
    #: Parallel file system: survives anything the lower levels cannot.
    PFS = 4

    @property
    def display_name(self) -> str:
        """Human-readable name used in reports."""
        return LEVEL_NAMES[self.value - 1]

    @classmethod
    def all_levels(cls) -> tuple["CheckpointLevel", ...]:
        """All four levels in ascending order."""
        return (cls.LOCAL, cls.PARTNER, cls.RS_ENCODING, cls.PFS)

    def protects_against(self, failure_level: int) -> bool:
        """Whether a checkpoint at this level recovers a level-``failure_level``
        failure (a checkpoint recovers failures at or below its own level)."""
        if failure_level < 1:
            raise ValueError(f"failure level must be >= 1, got {failure_level}")
        return self.value >= failure_level


LEVEL_NAMES: tuple[str, ...] = (
    "local-storage",
    "partner-copy",
    "rs-encoding",
    "pfs",
)
