"""Partner-copy checkpoint storage (FTI level 2).

Each node's checkpoint blob is stored twice: on the node itself and on its
ring partner.  A set of simultaneous node failures is recoverable iff every
failed node's partner survived — then every lost blob still has one live
copy.  This module implements the placement and the reconstruction lookup
for real payloads (the simulator only needs the boolean recoverability,
which :meth:`ClusterTopology.partner_survives` answers; this store is used
by the functional FTI API and its tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.topology import ClusterTopology


@dataclass
class PartnerStore:
    """In-memory partner-copy store over a cluster topology."""

    topology: ClusterTopology
    #: primary copies: node -> blob
    _local: dict[int, bytes] = field(default_factory=dict, repr=False)
    #: partner copies: holder node -> {origin node -> blob}
    _remote: dict[int, dict[int, bytes]] = field(default_factory=dict, repr=False)

    def store(self, node_id: int, blob: bytes) -> int:
        """Store ``blob`` for ``node_id`` locally and on its partner.

        Returns the partner node id holding the second copy.
        """
        partner = self.topology.partner_of(node_id)
        self._local[node_id] = bytes(blob)
        self._remote.setdefault(partner, {})[node_id] = bytes(blob)
        return partner

    def drop_node(self, node_id: int) -> None:
        """Erase everything held on ``node_id`` (it crashed)."""
        self._local.pop(node_id, None)
        self._remote.pop(node_id, None)

    def recover(self, node_id: int, failed: Iterable[int]) -> bytes:
        """Fetch ``node_id``'s blob given the set of failed nodes.

        Prefers the local copy when the node survived, falls back to the
        partner copy; raises ``KeyError`` when both are gone.
        """
        failed_set = set(failed)
        if node_id not in failed_set and node_id in self._local:
            return self._local[node_id]
        partner = self.topology.partner_of(node_id)
        if partner not in failed_set:
            holder = self._remote.get(partner, {})
            if node_id in holder:
                return holder[node_id]
        raise KeyError(
            f"checkpoint of node {node_id} unrecoverable: node and partner "
            f"{partner} both failed or never checkpointed"
        )

    def recoverable(self, failed: Iterable[int]) -> bool:
        """Whether every stored blob survives losing ``failed``.

        Matches :meth:`ClusterTopology.partner_survives` for nodes that have
        checkpointed; nodes without a stored blob are ignored.
        """
        failed_set = set(failed)
        for node_id in self._local:
            if node_id in failed_set:
                partner = self.topology.partner_of(node_id)
                if partner in failed_set:
                    return False
        return True

    def complete_for(self, num_nodes: int, failed: Iterable[int]) -> bool:
        """Whether *every* node's blob is currently servable.

        Stricter than :meth:`recoverable`: after an earlier crash dropped a
        node's copies, the set stays incomplete until the next level-2
        checkpoint — even though no pair of the *current* failures is
        adjacent.  Recovery planning must use this completeness check.
        """
        failed_set = set(failed)
        for node_id in range(num_nodes):
            if node_id not in failed_set and node_id in self._local:
                continue
            partner = self.topology.partner_of(node_id)
            if partner in failed_set:
                return False
            if node_id not in self._remote.get(partner, {}):
                return False
        return True
