"""FTI-style multilevel checkpoint toolkit (functional reimplementation).

The paper builds on the Fault Tolerance Interface (FTI), whose four levels
are: (1) node-local storage, (2) partner copy, (3) Reed-Solomon encoding,
(4) the parallel file system.  This subpackage reimplements the toolkit's
*semantics* in Python:

* real GF(256) arithmetic and systematic Reed-Solomon erasure coding
  (:mod:`repro.fti.gf256`, :mod:`repro.fti.rs`) — encode/decode round-trips
  are property-tested;
* partner-copy placement and recoverability (:mod:`repro.fti.partner`);
* per-level checkpoint storage and the recovery decision rule — given the
  set of simultaneously failed nodes, which is the cheapest level that can
  reconstruct every process's state (:mod:`repro.fti.levels`,
  :mod:`repro.fti.recovery`);
* an application-facing API mirroring FTI's protect/checkpoint/recover
  calls (:mod:`repro.fti.api`).
"""

from repro.fti.gf256 import GF256
from repro.fti.rs import ReedSolomonErasure
from repro.fti.levels import CheckpointLevel, LEVEL_NAMES
from repro.fti.partner import PartnerStore
from repro.fti.recovery import RecoveryPlanner
from repro.fti.api import FTIContext

__all__ = [
    "GF256",
    "ReedSolomonErasure",
    "CheckpointLevel",
    "LEVEL_NAMES",
    "PartnerStore",
    "RecoveryPlanner",
    "FTIContext",
]
