"""Last-run observability summaries for ``repro obs --last``.

Every CLI command (``optimize`` / ``simulate`` / ``experiment``) writes a
small JSON summary — command, arguments, exit code, metrics snapshot,
phase timings, trace-file index — to ``$REPRO_OBS_DIR/last_run.json``
(default ``.repro-obs/`` in the working directory).  ``repro obs --last``
pretty-prints the newest one, so "what did that run actually do?" has an
answer after the process exits.

The file is tiny (histograms are summarized, not dumped), overwritten on
each run, and the directory is ignored by git.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Environment variable overriding the summary directory.
OBS_DIR_ENV_VAR = "REPRO_OBS_DIR"
#: Default directory (relative to the working directory).
DEFAULT_OBS_DIR = ".repro-obs"
_LAST_RUN_FILE = "last_run.json"
_SPANS_FILE = "spans.jsonl"


def obs_dir(directory: str | Path | None = None) -> Path:
    """Resolve the summary directory: argument > env var > default."""
    if directory is not None:
        return Path(directory)
    return Path(os.environ.get(OBS_DIR_ENV_VAR, DEFAULT_OBS_DIR))


def last_run_path(directory: str | Path | None = None) -> Path:
    """Path of the last-run summary file under :func:`obs_dir`."""
    return obs_dir(directory) / _LAST_RUN_FILE


def spans_path(directory: str | Path | None = None) -> Path:
    """Path of the span JSONL sink under :func:`obs_dir`.

    ``repro serve`` appends every finished span here (see
    :class:`repro.obs.spans.SpanRecorder`); ``repro obs trace <id>``
    reads it back to render a request's span tree.
    """
    return obs_dir(directory) / _SPANS_FILE


def write_last_run(
    payload: dict, directory: str | Path | None = None
) -> Path:
    """Write the last-run summary (pretty JSON); returns the path."""
    path = last_run_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def read_last_run(directory: str | Path | None = None) -> dict:
    """Load the last-run summary; raises ``FileNotFoundError`` if absent."""
    return json.loads(last_run_path(directory).read_text())


def format_last_run(payload: dict) -> str:
    """Human-readable rendering of a last-run summary."""
    lines = []
    command = payload.get("command", "?")
    argv = payload.get("argv")
    # argv is the full post-program argument vector (it already names the
    # subcommand), so prefer it verbatim over the bare command field.
    invocation = " ".join(argv) if argv else command
    lines.append(f"last run: repro {invocation}")
    if "exit_code" in payload:
        lines.append(f"exit code: {payload['exit_code']}")
    timings = payload.get("phase_seconds") or {}
    if timings:
        lines.append("phases:")
        for name, seconds in timings.items():
            lines.append(f"  {name:<12} {seconds:.4f}s")
    metrics = payload.get("metrics") or {}
    if metrics:
        lines.append("metrics:")
        for name, value in metrics.items():
            if isinstance(value, dict):
                inner = ", ".join(f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}" for k, v in value.items())
                lines.append(f"  {name:<28} {inner}")
            else:
                value_text = f"{value:.6g}" if isinstance(value, float) else str(value)
                lines.append(f"  {name:<28} {value_text}")
    traces = payload.get("trace_files") or []
    if traces:
        lines.append("trace files:")
        for entry in traces:
            lines.append(f"  {entry}")
    return "\n".join(lines)
