"""Prometheus text exposition (format 0.0.4) for the metrics registry.

Stdlib-only renderer from a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
dict to the plain-text scrape format.  The output is **canonical**:
metric names are emitted in sorted order and every value is formatted
with shortest-round-trip ``repr``, so two registries holding equal
values render byte-identical documents — the property the service's
``GET /metrics`` tests (and any scrape-diffing tooling) rely on.

Mapping rules:

* names are sanitized to the Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``)
  by replacing every other character with ``_`` and prefixing ``repro_``
  (a leading digit after sanitization gets an extra ``_``);
* **Counter** -> ``# TYPE ... counter`` with a single sample;
* **Gauge** -> ``# TYPE ... gauge``;
* **Histogram with buckets** -> ``# TYPE ... histogram`` with cumulative
  ``_bucket{le="..."}`` samples (implicit +Inf), ``_sum`` and ``_count``
  over the retained sample window;
* **Histogram without buckets** -> ``# TYPE ... summary`` with
  ``{quantile="0.5|0.95|0.99"}`` nearest-rank quantiles, ``_sum`` and
  ``_count``.

Served on ``GET /metrics`` with content type
:data:`PROMETHEUS_CONTENT_TYPE`; the JSON summary moved to
``GET /metrics.json``.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

#: The content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

_NAME_PREFIX = "repro_"
_ALLOWED = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name grammar."""
    sanitized = "".join(c if c in _ALLOWED else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return _NAME_PREFIX + sanitized


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def _quantile(ordered: list[float], q: float) -> float:
    if not ordered:
        return math.nan
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def prometheus_text(
    snapshot: Mapping[str, Mapping] | None = None,
    *,
    registry: MetricsRegistry | None = None,
) -> str:
    """Render a snapshot (or ``registry``) as Prometheus exposition text.

    Pass exactly one of ``snapshot`` / ``registry``.  Names are emitted
    in sorted order and values in canonical form, so the document is a
    deterministic function of the metric values.
    """
    if (snapshot is None) == (registry is None):
        raise ValueError("pass exactly one of snapshot= or registry=")
    if snapshot is None:
        snapshot = registry.snapshot()
    lines: list[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload["type"]
        prom = sanitize_metric_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(payload['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(payload['value'])}")
        elif kind == "histogram":
            samples = [float(s) for s in payload["samples"]]
            bounds = payload.get("buckets")
            if bounds is not None:
                counts = payload["bucket_counts"]
                lines.append(f"# TYPE {prom} histogram")
                running = 0
                for bound, count in zip(bounds, counts):
                    running += int(count)
                    lines.append(
                        f'{prom}_bucket{{le="{_format_bound(float(bound))}"}}'
                        f" {running}"
                    )
                total = running + int(counts[-1])
                lines.append(f'{prom}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{prom}_sum {_format_value(math.fsum(samples))}")
                lines.append(f"{prom}_count {total}")
            else:
                ordered = sorted(samples)
                lines.append(f"# TYPE {prom} summary")
                for q in (0.5, 0.95, 0.99):
                    lines.append(
                        f'{prom}{{quantile="{q}"}} '
                        f"{_format_value(_quantile(ordered, q))}"
                    )
                lines.append(f"{prom}_sum {_format_value(math.fsum(samples))}")
                lines.append(f"{prom}_count {len(samples)}")
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return "\n".join(lines) + "\n" if lines else ""
