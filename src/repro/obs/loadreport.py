"""Render ``repro.loadgen.report`` documents for humans.

The load generator (``benchmarks/loadgen.py``) writes machine-first
JSON: per-phase sample statistics plus the server's own metric deltas.
:func:`format_load_report` turns one of those documents into the table
``python -m repro obs load <report>`` prints — phases as rows, the SLO
headline underneath — without the caller needing to know the schema.

This lives in :mod:`repro.obs` (not ``benchmarks/``) because rendering
is a service-observability concern: the installed package must be able
to display a report produced anywhere, while ``benchmarks/`` is not an
installed import path.
"""

from __future__ import annotations

from typing import Any, Mapping

#: The ``kind`` tag loadgen stamps on its reports.
REPORT_KIND = "repro.loadgen.report"


class ReportError(ValueError):
    """The document is not a readable loadgen report."""


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _phase_row(phase: Mapping[str, Any]) -> dict[str, str]:
    latency = phase.get("latency_ms", {})
    transport = phase.get("transport") or {}
    reuse = transport.get("reuse_ratio")
    return {
        "phase": str(phase.get("label", "?")),
        "requests": _fmt(phase.get("requests", 0)),
        "ok/s": _fmt(phase.get("ok_rps", 0.0)),
        "p50 ms": _fmt(latency.get("p50", 0.0)),
        "p99 ms": _fmt(latency.get("p99", 0.0)),
        "shed": f"{phase.get('shed_rate', 0.0):.1%}",
        "coalesced": f"{phase.get('coalesce_ratio', 0.0):.1%}",
        "reuse": f"{reuse:.1%}" if reuse is not None else "-",
        "errors": _fmt(phase.get("errors", 0)),
    }


def format_load_report(payload: Mapping[str, Any]) -> str:
    """One report document -> the aligned text block the CLI prints.

    Raises :class:`ReportError` when ``payload`` is not a loadgen
    report (wrong/missing ``kind`` or no phases) so the CLI can fail
    with a message instead of a KeyError traceback.
    """
    if not isinstance(payload, Mapping):
        raise ReportError(f"report must be a JSON object, got {payload!r}")
    kind = payload.get("kind")
    if kind != REPORT_KIND:
        raise ReportError(
            f"not a loadgen report (kind={kind!r}, expected {REPORT_KIND!r})"
        )
    phases = payload.get("phases") or {}
    if not isinstance(phases, Mapping) or not phases:
        raise ReportError("report has no phases")

    lines: list[str] = []
    config = payload.get("config", {})
    if config:
        knobs = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(config.items())
        )
        lines.append(f"load report · {knobs}")
        lines.append("")

    rows = [_phase_row(p) for p in phases.values()]
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(r[h]) for r in rows)) for h in headers
    }
    lines.append("  ".join(h.ljust(widths[h]) for h in headers).rstrip())
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append(
            "  ".join(row[h].ljust(widths[h]) for h in headers).rstrip()
        )

    for label, phase in phases.items():
        shards = phase.get("shards")
        if not isinstance(shards, Mapping) or not shards:
            continue
        lines.append("")
        lines.append(f"{label}: per-worker-shard breakdown")
        for shard, deltas in shards.items():
            knobs = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(deltas.items())
            )
            lines.append(f"  shard {shard}: {knobs}")

    transport_lines: list[str] = []
    for label, phase in phases.items():
        transport = phase.get("transport")
        if not isinstance(transport, Mapping) or not transport:
            continue
        connect = transport.get("connect_ms") or {}
        detail = (
            f"  {label}: reuse {transport.get('reuse_ratio', 0.0):.1%} · "
            f"opened {_fmt(transport.get('opened', 0))} · "
            f"reused {_fmt(transport.get('reused', 0))} · "
            f"replays {_fmt(transport.get('replays', 0))}"
        )
        if connect:
            detail += (
                f" · connect p50 {_fmt(connect.get('p50', 0.0))} ms / "
                f"p99 {_fmt(connect.get('p99', 0.0))} ms"
            )
        transport_lines.append(detail)
    if transport_lines:
        lines.append("")
        lines.append("transport: pooled keep-alive connections")
        lines.extend(transport_lines)

    slo = payload.get("slo", {})
    if slo:
        lines.append("")
        headline = (
            "SLO: "
            f"sustained {_fmt(slo.get('sustained_ok_rps', 0.0))} ok/s "
            f"at p99 {_fmt(slo.get('sustained_p99_ms', 0.0))} ms; "
            f"worst shed rate {slo.get('worst_shed_rate', 0.0):.1%}; "
            f"best coalesce ratio {slo.get('best_coalesce_ratio', 0.0):.1%}"
        )
        reuse = slo.get("sustained_reuse_ratio")
        if reuse is not None:
            headline += f"; sustained conn reuse {reuse:.1%}"
        lines.append(headline)

    budget = payload.get("error_budget")
    if isinstance(budget, Mapping) and budget:
        state = str(budget.get("state", "?"))
        health = budget.get("healthz_status")
        suffix = f" (healthz: {health})" if health else ""
        lines.append("")
        lines.append(f"error budget: state {state}{suffix}")
        lines.append(
            f"  budget {budget.get('error_budget', 0.0):.3%} · "
            f"consumed {budget.get('budget_consumed', 0.0):.1%} · "
            f"good {_fmt(budget.get('good', 0.0))} / "
            f"bad {_fmt(budget.get('bad', 0.0))}"
        )
        lines.append(
            f"  burn rate {_fmt(budget.get('fast_burn_rate', 0.0))}x fast / "
            f"{_fmt(budget.get('slow_burn_rate', 0.0))}x slow"
        )
    return "\n".join(lines)
