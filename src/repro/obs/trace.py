"""Trace recording, JSONL persistence, and trace-side analysis.

The engine takes a *recorder* object with two members:

* ``active`` — a plain bool attribute the hot loop checks before building
  any event object (so the disabled path costs one attribute read);
* ``emit(event)`` — appends one :class:`~repro.obs.events.TraceEvent`.

:class:`NullRecorder` (singleton :data:`NULL_RECORDER`) is the default:
``active`` is False and ``emit`` is a no-op, so tracing off adds ~zero
cost (benchmarked in ``benchmarks/test_bench_obs.py``).
:class:`TraceRecorder` collects events in order, optionally in a ring
buffer (``maxlen``) for long ensembles where only the tail matters.

Persistence is JSONL — one event dict per line — via
:func:`write_jsonl` / :func:`read_jsonl`, plus the ensemble variants that
tag each line with its replica index.  Round-trips are exact: reloaded
events compare equal to the in-memory originals.

The analysis helpers (:func:`failure_counts`, :func:`checkpoint_counts`,
:func:`portions_from_events`, :func:`wallclock_from_events`) reconstruct
the headline :class:`~repro.sim.metrics.SimResult` quantities *purely*
from the event stream — the property tests assert they match the engine's
own accounting exactly, which is what makes the trace trustworthy.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import (
    CheckpointDone,
    Failure,
    RecoveryDone,
    SegmentComplete,
    TraceEvent,
    event_from_dict,
    event_to_dict,
)


class NullRecorder:
    """The tracing-off fast path: inactive, drops everything."""

    #: Hot-loop guard — the engine checks this before building events.
    active: bool = False

    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        """Drop the event."""

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Always empty."""
        return ()

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRecorder()"


#: Shared inactive recorder; safe to reuse everywhere (it holds no state).
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects events in emission order.

    Parameters
    ----------
    maxlen:
        Ring-buffer capacity; ``None`` (default) keeps every event.  With
        a cap, only the newest ``maxlen`` events survive — the mode meant
        for large ensembles where full traces would dominate memory.
    """

    active: bool = True

    __slots__ = ("_events", "maxlen")

    def __init__(self, maxlen: int | None = None):
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._events: deque[TraceEvent] = deque(maxlen=maxlen)

    def emit(self, event: TraceEvent) -> None:
        """Append one event (oldest dropped first when ring-buffered)."""
        self._events.append(event)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Snapshot of the recorded events, in emission order."""
        return tuple(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "" if self.maxlen is None else f", maxlen={self.maxlen}"
        return f"TraceRecorder({len(self._events)} events{cap})"


# -- JSONL persistence -------------------------------------------------------


def write_jsonl(path: str | Path, events: Iterable[TraceEvent]) -> Path:
    """Write one event per line; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event)) + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[TraceEvent, ...]:
    """Load a :func:`write_jsonl` file back into typed events."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return tuple(events)


def write_ensemble_jsonl(
    path: str | Path, traces: Sequence[Sequence[TraceEvent]]
) -> Path:
    """Write per-replica traces to one file, each line tagged ``"run": i``.

    Lines keep replica order (all of run 0, then run 1, ...), so the file
    is a deterministic function of the ensemble for a fixed seed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for run_index, events in enumerate(traces):
            for event in events:
                fh.write(
                    json.dumps({"run": run_index, **event_to_dict(event)})
                    + "\n"
                )
    return path


def read_ensemble_jsonl(path: str | Path) -> tuple[tuple[TraceEvent, ...], ...]:
    """Load a :func:`write_ensemble_jsonl` file back into per-replica traces."""
    by_run: dict[int, list[TraceEvent]] = {}
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            run = int(payload.pop("run"))
            by_run.setdefault(run, []).append(event_from_dict(payload))
    if not by_run:
        return ()
    n_runs = max(by_run) + 1
    return tuple(tuple(by_run.get(i, ())) for i in range(n_runs))


# -- trace-side reconstruction ----------------------------------------------


def failure_counts(events: Iterable[TraceEvent], num_levels: int) -> tuple[int, ...]:
    """Per-level :class:`~repro.obs.events.Failure` counts (1-based levels)."""
    counts = [0] * num_levels
    for event in events:
        if isinstance(event, Failure):
            counts[event.level - 1] += 1
    return tuple(counts)


def checkpoint_counts(
    events: Iterable[TraceEvent], num_levels: int
) -> tuple[int, ...]:
    """Per-level completed-checkpoint counts (``CheckpointDone`` events)."""
    counts = [0] * num_levels
    for event in events:
        if isinstance(event, CheckpointDone):
            counts[event.level - 1] += 1
    return tuple(counts)


def portions_from_events(events: Iterable[TraceEvent]) -> dict[str, float]:
    """Reconstruct the Fig. 5 portion decomposition from the trace alone.

    ``productive`` / ``rollback`` / ``checkpoint`` come from the
    :class:`~repro.obs.events.SegmentComplete` decompositions; ``restart``
    is the sum of :class:`~repro.obs.events.RecoveryDone` durations
    (interrupted attempts included — their time is still restart
    overhead).  For a complete (non-ring-buffered) trace this matches the
    engine's own ``SimResult.portions`` bit for bit: both sides sum the
    identical per-segment floats in the identical order.
    """
    portions = {
        "productive": 0.0,
        "checkpoint": 0.0,
        "restart": 0.0,
        "rollback": 0.0,
    }
    for event in events:
        if isinstance(event, SegmentComplete):
            portions["productive"] += event.productive
            portions["rollback"] += event.rework
            portions["checkpoint"] += event.checkpoint
        elif isinstance(event, RecoveryDone):
            portions["restart"] += event.duration
    return portions


def wallclock_from_events(events: Iterable[TraceEvent]) -> float:
    """Total wall-clock reconstructed from segment + recovery durations."""
    total = 0.0
    for event in events:
        if isinstance(event, (SegmentComplete,)):
            total += event.duration
        elif isinstance(event, RecoveryDone):
            total += event.duration
    return total
