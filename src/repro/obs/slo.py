"""Sliding-window rate tracking for live SLO gauges.

Histograms and counters accumulate for the process lifetime, which is
the right contract for Prometheus scrapes but useless for "what is the
service doing *right now*" questions — a load test wants instantaneous
RPS and shed rate, not lifetime averages diluted by the warm-up phase.

:class:`SlidingWindowRate` answers those questions with a bounded deque
of event timestamps: ``rate()`` is events-per-second over the trailing
window.  The service keeps one window per outcome family (requests,
sheds) and mirrors them into ``service.window_rps`` /
``service.window_shed_rate`` gauges on every request, so ``GET
/metrics.json`` exposes the live view next to the lifetime series.

Thread-safe; all operations are O(expired events) amortized.
"""

from __future__ import annotations

import threading
import time
from collections import deque

#: Default trailing window (seconds) for the live RPS / shed gauges.
DEFAULT_WINDOW_SECONDS = 10.0


class SlidingWindowRate:
    """Events-per-second over a trailing wall-clock window.

    Parameters
    ----------
    window:
        Trailing horizon in seconds.  Events older than this are
        dropped lazily on the next :meth:`record` / :meth:`rate` call.
    max_events:
        Hard bound on retained timestamps.  Under overload the event
        rate can exceed anything the window bound alone would keep;
        the deque cap keeps memory O(1) at the cost of *underestimating*
        the rate once saturated — acceptable for a gauge whose job is
        "roughly how hot is the service".
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW_SECONDS,
        *,
        max_events: int = 4096,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._events: deque[float] = deque(maxlen=int(max_events))
        self._lock = threading.Lock()

    def record(self, now: float | None = None) -> None:
        """Record one event at ``now`` (``time.monotonic()`` default)."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._events.append(stamp)
            self._expire(stamp)

    def count(self, now: float | None = None) -> int:
        """Events inside the trailing window."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._expire(stamp)
            return len(self._events)

    def rate(self, now: float | None = None) -> float:
        """Events per second over the trailing window.

        The denominator is the full window length (not the observed
        span), so a burst of N events reads ``N / window`` immediately
        and decays as events expire — the behavior a dashboard expects.
        """
        return self.count(now) / self.window

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0] < cutoff:
            events.popleft()
