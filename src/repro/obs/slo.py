"""Sliding-window rate tracking for live SLO gauges.

Histograms and counters accumulate for the process lifetime, which is
the right contract for Prometheus scrapes but useless for "what is the
service doing *right now*" questions — a load test wants instantaneous
RPS and shed rate, not lifetime averages diluted by the warm-up phase.

:class:`SlidingWindowRate` answers those questions with a bounded deque
of event timestamps: ``rate()`` is events-per-second over the trailing
window.  The service keeps one window per outcome family (requests,
sheds) and mirrors them into ``service.window_rps`` /
``service.window_shed_rate`` gauges on every request, so ``GET
/metrics.json`` exposes the live view next to the lifetime series.

Thread-safe; all operations are O(expired events) amortized.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

#: Default trailing window (seconds) for the live RPS / shed gauges.
DEFAULT_WINDOW_SECONDS = 10.0


class SlidingWindowRate:
    """Events-per-second over a trailing wall-clock window.

    Parameters
    ----------
    window:
        Trailing horizon in seconds.  Events older than this are
        dropped lazily on the next :meth:`record` / :meth:`rate` call.
    max_events:
        Hard bound on retained timestamps.  Under overload the event
        rate can exceed anything the window bound alone would keep;
        the deque cap keeps memory O(1) at the cost of *underestimating*
        the rate once saturated — acceptable for a gauge whose job is
        "roughly how hot is the service", as long as the saturation is
        *visible*: :meth:`saturated` reports whether any still-in-window
        event has been evicted by the cap recently, so dashboards can
        flag the reading as a floor rather than a measurement.
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW_SECONDS,
        *,
        max_events: int = 4096,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.window = float(window)
        self.max_events = int(max_events)
        self._events: deque[float] = deque(maxlen=self.max_events)
        #: Monotonic deadline until which the window counts as saturated
        #: (set whenever an event that was still inside the window gets
        #: evicted by the ``max_events`` cap).
        self._saturated_until = -math.inf
        self._lock = threading.Lock()

    def record(self, now: float | None = None) -> None:
        """Record one event at ``now`` (``time.monotonic()`` default)."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            events = self._events
            if (
                len(events) == self.max_events
                and events[0] >= stamp - self.window
            ):
                # The append below evicts an event that is still inside
                # the window: every count until that event would have
                # aged out naturally is an underestimate.
                self._saturated_until = events[0] + self.window
            events.append(stamp)
            self._expire(stamp)

    def saturated(self, now: float | None = None) -> bool:
        """True while counts may undercount due to the ``max_events`` cap.

        Stays set until the most recently evicted in-window event would
        have expired on its own, then clears — mirroring how long the
        underestimate can persist.
        """
        stamp = time.monotonic() if now is None else now
        with self._lock:
            return stamp < self._saturated_until

    def count(self, now: float | None = None) -> int:
        """Events inside the trailing window."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._expire(stamp)
            return len(self._events)

    def rate(self, now: float | None = None) -> float:
        """Events per second over the trailing window.

        The denominator is the full window length (not the observed
        span), so a burst of N events reads ``N / window`` immediately
        and decays as events expire — the behavior a dashboard expects.
        """
        return self.count(now) / self.window

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0] < cutoff:
            events.popleft()
