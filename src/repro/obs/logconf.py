"""Structured :mod:`logging` configuration for the ``repro`` namespace.

Two knobs, resolved in :func:`configure_logging`:

* CLI verbosity — ``-v`` (INFO) / ``-vv`` (DEBUG) on any ``repro``
  subcommand;
* the ``REPRO_LOG`` environment variable — either a bare level
  (``REPRO_LOG=DEBUG``) or per-logger overrides
  (``REPRO_LOG=repro.core=DEBUG,repro.sim=WARNING``).  Explicit
  per-logger entries win over the CLI verbosity.

Everything hangs off the ``"repro"`` logger (``propagate=False``), so
library users who configure their own handlers are never surprised by
double emission, and re-configuring replaces the previous handler rather
than stacking a new one (safe to call once per CLI invocation).

Worker propagation: because ``propagate=False`` with *no handler* means
records are silently dropped, long-lived components that spawn their own
workers must make sure the tree is configured in every execution context.

* :func:`ensure_configured` installs the handler only if none of ours is
  present (idempotent; the service/scheduler call it so ``repro serve``'s
  worker threads log even when the embedding program never configured
  logging);
* :func:`worker_config` / :func:`configure_worker` capture the parent's
  effective verbosity plus ``$REPRO_LOG`` into a picklable dict and
  replay it inside process-pool workers (the
  :class:`~repro.parallel.executor.ProcessExecutor` initializer), so
  ``-v``/``-vv`` on the driver reaches worker-side log records instead of
  stopping at the process boundary.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import TextIO

#: Environment variable: bare level or comma-separated logger=LEVEL pairs.
LOG_ENV_VAR = "REPRO_LOG"

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"
#: Tag on handlers we install, so reconfiguration only replaces our own.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger, or a child (``get_logger("sim.engine")``)."""
    if not name or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def _parse_env(value: str) -> tuple[int | None, dict[str, int]]:
    """``(base_level, {logger: level})`` from a ``REPRO_LOG`` string."""
    base: int | None = None
    per_logger: dict[str, int] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, level_text = part.partition("=")
            per_logger[name.strip()] = _parse_level(level_text.strip())
        else:
            base = _parse_level(part)
    return base, per_logger


def _parse_level(text: str) -> int:
    level = logging.getLevelName(text.upper())
    if not isinstance(level, int):
        raise ValueError(
            f"unknown log level {text!r} in ${LOG_ENV_VAR} "
            "(use DEBUG/INFO/WARNING/ERROR or logger=LEVEL pairs)"
        )
    return level


def verbosity_to_level(verbosity: int) -> int:
    """``0`` -> WARNING, ``1`` (-v) -> INFO, ``>= 2`` (-vv) -> DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


#: Verbosity of the most recent :func:`configure_logging` call — what
#: :func:`worker_config` ships to pool workers.
_LAST_VERBOSITY = 0


def configure_logging(
    verbosity: int = 0, *, stream: TextIO | None = None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    ``stream`` defaults to the *current* ``sys.stderr`` (resolved at call
    time, so capture-based test harnesses see the output).  Calling again
    replaces the previously installed handler.
    """
    global _LAST_VERBOSITY
    _LAST_VERBOSITY = verbosity
    root = logging.getLogger(_ROOT_NAME)
    root.propagate = False

    base_level = verbosity_to_level(verbosity)
    env_value = os.environ.get(LOG_ENV_VAR, "")
    per_logger: dict[str, int] = {}
    if env_value:
        env_base, per_logger = _parse_env(env_value)
        if env_base is not None:
            base_level = min(base_level, env_base)
    root.setLevel(base_level)
    for name, level in per_logger.items():
        get_logger(name).setLevel(level)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    for existing in list(root.handlers):
        if getattr(existing, _HANDLER_TAG, False):
            root.removeHandler(existing)
    root.addHandler(handler)
    return root


def current_verbosity() -> int:
    """Verbosity of the most recent :func:`configure_logging` call."""
    return _LAST_VERBOSITY


def is_configured() -> bool:
    """Whether one of our handlers is currently installed on ``repro``."""
    root = logging.getLogger(_ROOT_NAME)
    return any(getattr(h, _HANDLER_TAG, False) for h in root.handlers)


def ensure_configured(verbosity: int | None = None) -> logging.Logger:
    """Configure the ``repro`` tree only if it is not configured yet.

    Long-lived components (service, scheduler) call this so their worker
    threads' records are emitted even when the embedding program never
    called :func:`configure_logging`; an existing configuration — CLI
    ``-v`` flags included — is left untouched.
    """
    root = logging.getLogger(_ROOT_NAME)
    if is_configured():
        return root
    return configure_logging(
        verbosity if verbosity is not None else _LAST_VERBOSITY
    )


def worker_config() -> dict:
    """Picklable snapshot of the effective logging knobs for pool workers."""
    return {
        "verbosity": _LAST_VERBOSITY,
        "env": os.environ.get(LOG_ENV_VAR, ""),
    }


def configure_worker(config: dict) -> logging.Logger:
    """Replay a :func:`worker_config` snapshot inside a worker process.

    Re-exports ``$REPRO_LOG`` (spawn-style workers do not inherit mutated
    parent environments) and re-runs :func:`configure_logging`, so
    worker-side records honor the driver's ``-v``/``-vv``/``REPRO_LOG``.
    """
    env_value = config.get("env", "")
    if env_value:
        os.environ[LOG_ENV_VAR] = env_value
    return configure_logging(int(config.get("verbosity", 0)))
