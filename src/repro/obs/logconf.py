"""Structured :mod:`logging` configuration for the ``repro`` namespace.

Two knobs, resolved in :func:`configure_logging`:

* CLI verbosity — ``-v`` (INFO) / ``-vv`` (DEBUG) on any ``repro``
  subcommand;
* the ``REPRO_LOG`` environment variable — either a bare level
  (``REPRO_LOG=DEBUG``) or per-logger overrides
  (``REPRO_LOG=repro.core=DEBUG,repro.sim=WARNING``).  Explicit
  per-logger entries win over the CLI verbosity.

Everything hangs off the ``"repro"`` logger (``propagate=False``), so
library users who configure their own handlers are never surprised by
double emission, and re-configuring replaces the previous handler rather
than stacking a new one (safe to call once per CLI invocation).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import TextIO

#: Environment variable: bare level or comma-separated logger=LEVEL pairs.
LOG_ENV_VAR = "REPRO_LOG"

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"
#: Tag on handlers we install, so reconfiguration only replaces our own.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger, or a child (``get_logger("sim.engine")``)."""
    if not name or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def _parse_env(value: str) -> tuple[int | None, dict[str, int]]:
    """``(base_level, {logger: level})`` from a ``REPRO_LOG`` string."""
    base: int | None = None
    per_logger: dict[str, int] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, level_text = part.partition("=")
            per_logger[name.strip()] = _parse_level(level_text.strip())
        else:
            base = _parse_level(part)
    return base, per_logger


def _parse_level(text: str) -> int:
    level = logging.getLevelName(text.upper())
    if not isinstance(level, int):
        raise ValueError(
            f"unknown log level {text!r} in ${LOG_ENV_VAR} "
            "(use DEBUG/INFO/WARNING/ERROR or logger=LEVEL pairs)"
        )
    return level


def verbosity_to_level(verbosity: int) -> int:
    """``0`` -> WARNING, ``1`` (-v) -> INFO, ``>= 2`` (-vv) -> DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, *, stream: TextIO | None = None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    ``stream`` defaults to the *current* ``sys.stderr`` (resolved at call
    time, so capture-based test harnesses see the output).  Calling again
    replaces the previously installed handler.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.propagate = False

    base_level = verbosity_to_level(verbosity)
    env_value = os.environ.get(LOG_ENV_VAR, "")
    per_logger: dict[str, int] = {}
    if env_value:
        env_base, per_logger = _parse_env(env_value)
        if env_base is not None:
            base_level = min(base_level, env_base)
    root.setLevel(base_level)
    for name, level in per_logger.items():
        get_logger(name).setLevel(level)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    for existing in list(root.handlers):
        if getattr(existing, _HANDLER_TAG, False):
            root.removeHandler(existing)
    root.addHandler(handler)
    return root
