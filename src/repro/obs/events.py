"""Typed trace events of the multilevel-checkpoint execution engine.

The paper reasons about per-level failure/checkpoint event *sequences*
(Section IV, the Fig. 5/6 portions); these dataclasses make that sequence
a first-class artifact.  One simulated execution emits, in wall-clock
order:

* :class:`CheckpointStart` / :class:`CheckpointDone` per checkpoint mark
  (a ``Start`` without a matching ``Done`` is an aborted checkpoint — a
  failure struck mid-write; its partial cost is still accounted in the
  enclosing :class:`SegmentComplete`);
* :class:`Failure` and :class:`Rollback` per failure event;
* :class:`RecoveryStart` / :class:`RecoveryDone` per recovery attempt
  (``interrupted=True`` when a new failure landed mid-recovery);
* :class:`SegmentComplete` per deterministic between-failure segment,
  carrying the segment's portion decomposition (first-time productive,
  re-executed rollback, checkpoint overhead) so the Fig. 5 portions are
  exactly reconstructable from the trace alone;
* :class:`RunCensored` when the run hits ``max_wallclock``.

Events are frozen dataclasses: hashable, picklable (they cross process
pools inside ensemble results), and round-trippable through JSON
(:func:`event_to_dict` / :func:`event_from_dict` — floats survive exactly
via ``repr`` shortest-round-trip serialization of :mod:`json`).

All times ``t`` are simulated wall-clock seconds since run start; levels
are 1-based, matching the rest of the repo.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True)
class TraceEvent:
    """Base event: anything that happens at wall-clock instant ``t``."""

    t: float


@dataclass(frozen=True)
class CheckpointStart(TraceEvent):
    """A level-``level`` checkpoint begins at progress mark ``progress``."""

    level: int
    progress: float


@dataclass(frozen=True)
class CheckpointDone(TraceEvent):
    """A checkpoint completed; ``cost`` is its jittered write cost."""

    level: int
    progress: float
    cost: float


@dataclass(frozen=True)
class Failure(TraceEvent):
    """A level-``level`` failure strikes."""

    level: int


@dataclass(frozen=True)
class Rollback(TraceEvent):
    """Progress rolled back from ``progress_from`` to ``progress_to``.

    Emitted immediately after the :class:`Failure` it responds to;
    ``level`` repeats the failure level for self-contained analysis.
    """

    level: int
    progress_from: float
    progress_to: float


@dataclass(frozen=True)
class RecoveryStart(TraceEvent):
    """Allocation + level-``level`` recovery begins."""

    level: int


@dataclass(frozen=True)
class RecoveryDone(TraceEvent):
    """A recovery attempt ended after ``duration`` seconds.

    ``interrupted=True`` means a new failure landed mid-recovery: the time
    spent is still restart overhead, and a fresh
    :class:`RecoveryStart` follows at the new failure's level.
    """

    level: int
    duration: float
    interrupted: bool = False


@dataclass(frozen=True)
class SegmentComplete(TraceEvent):
    """One deterministic between-failure segment ended at ``t``.

    Attributes
    ----------
    duration:
        Wall-clock seconds the segment consumed.
    productive:
        First-time productive work within the segment (Fig. 5 portion).
    rework:
        Re-executed (rollback) work within the segment.
    checkpoint:
        Checkpoint overhead within the segment, including the partial cost
        of an aborted checkpoint.
    marks_completed:
        Checkpoint marks committed during the segment.
    progress:
        Productive progress at segment end.
    run_completed:
        True on the final segment of a successfully completed run.
    """

    duration: float
    productive: float
    rework: float
    checkpoint: float
    marks_completed: int
    progress: float
    run_completed: bool = False


@dataclass(frozen=True)
class RunCensored(TraceEvent):
    """The run hit the ``max_wallclock`` cap at progress ``progress``."""

    progress: float


#: Registry for JSON round-trips: type tag -> event class.
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.__name__: cls
    for cls in (
        CheckpointStart,
        CheckpointDone,
        Failure,
        Rollback,
        RecoveryStart,
        RecoveryDone,
        SegmentComplete,
        RunCensored,
    )
}


def event_to_dict(event: TraceEvent) -> dict:
    """JSON-serializable dict with a ``"type"`` tag first."""
    cls = type(event)
    if cls.__name__ not in EVENT_TYPES:
        raise TypeError(f"unregistered event type: {cls.__name__}")
    return {"type": cls.__name__, **asdict(event)}


def event_from_dict(payload: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict`; unknown tags/fields raise."""
    data = dict(payload)
    try:
        tag = data.pop("type")
    except KeyError:
        raise ValueError(f"event dict has no 'type' tag: {payload!r}") from None
    try:
        cls = EVENT_TYPES[tag]
    except KeyError:
        raise ValueError(
            f"unknown event type {tag!r}; known: {sorted(EVENT_TYPES)}"
        ) from None
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{tag} does not accept fields {sorted(unknown)}"
        )
    return cls(**data)
