"""Distributed-tracing spans over the ``repro.obs`` event machinery.

A *span* is one timed operation — an HTTP request, a scheduler batch
entry, a solver outer iteration, a simulation replica — identified by a
``(trace_id, span_id)`` pair and linked to its parent through
``parent_id``.  The span set of one request forms a tree; the CLI
(``repro obs trace <id>``) renders it with per-phase self-times, the
service-side analogue of the paper's Fig. 5 portion decomposition.

Design rules, mirroring the rest of :mod:`repro.obs`:

* **Tracing off is ~free.**  The process-wide recorder defaults to
  :data:`NULL_SPAN_RECORDER` (``active = False``); :func:`span` then
  yields ``None`` immediately without building contexts, attributes, or
  timestamps.  Instrumentation sits at operation granularity (one span
  per request / outer iteration / replica), never inside the simulator's
  event hot loop.
* **Deterministic identity.**  Span ids are *derived*, not random:
  ``span_id = blake2b(parent_id:name:index)``.  Given a pinned
  ``trace_id``, the id of every span in the tree is a pure function of
  its path — which is what makes span trees bit-identical across the
  serial / thread / process executor backends (timestamps excluded; see
  :func:`span_tree_signature`).
* **Fragments merge like metrics snapshots.**  Process-pool workers
  cannot append to the parent's recorder, so they record into a local
  :class:`SpanRecorder`, export ``span_to_dict`` fragments, and the
  parent re-emits them in task order — the exact snapshot/merge pattern
  of :mod:`repro.obs.metrics`.
* **Context flows two ways.**  In-process, the current span lives in a
  :mod:`contextvars` variable (:func:`current_span`); across the wire it
  travels as a W3C ``traceparent``-style header
  (:meth:`SpanContext.to_traceparent` / :func:`parse_traceparent`);
  across pools it is passed explicitly (``parent=`` + ``index=``).

Persistence is JSONL, one span per line (:func:`write_spans_jsonl` /
:func:`read_spans_jsonl`); a :class:`SpanRecorder` built with ``path=``
additionally appends each finished span as it is emitted, so a crashed
process still leaves a usable trace behind.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import math
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

#: The W3C-style context-propagation header carried by service requests.
TRACEPARENT_HEADER = "traceparent"
_TRACEPARENT_VERSION = "00"
_TRACE_ID_LEN = 32  # hex chars (16 bytes)
_SPAN_ID_LEN = 16  # hex chars (8 bytes)


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def derive_span_id(parent_id: str, name: str, index: int) -> str:
    """Deterministic 64-bit span id for child ``index`` named ``name``.

    Ids are a pure function of the span's path from the trace root, so
    re-running the same logical operations (any executor backend, any
    process) reproduces the same tree ids — the property the determinism
    suites assert.
    """
    digest = hashlib.blake2b(
        f"{parent_id}:{name}:{index}".encode(), digest_size=_SPAN_ID_LEN // 2
    )
    return digest.hexdigest()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of one span: ``(trace_id, span_id)``.

    Frozen and picklable — it crosses thread pools, process pools, and
    (rendered as a ``traceparent`` header) the HTTP boundary.
    """

    trace_id: str
    span_id: str

    def child(self, name: str, index: int) -> "SpanContext":
        """The deterministic context of child ``index`` named ``name``."""
        return SpanContext(self.trace_id, derive_span_id(self.span_id, name, index))

    def to_traceparent(self) -> str:
        """``00-<trace_id>-<span_id>-01`` (sampled flag always set)."""
        return f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"


def root_context(trace_id: str | None = None, name: str = "root") -> SpanContext:
    """The context a root span named ``name`` gets in trace ``trace_id``."""
    trace_id = trace_id if trace_id is not None else new_trace_id()
    return SpanContext(trace_id, derive_span_id(trace_id, name, 0))


def _is_hex(text: str) -> bool:
    return bool(text) and all(c in "0123456789abcdef" for c in text)


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header into the remote parent's context.

    Malformed headers return ``None`` (the server then starts a fresh
    trace) — a bad client header must never fail a request.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version):
        return None
    if len(trace_id) != _TRACE_ID_LEN or not _is_hex(trace_id):
        return None
    if len(span_id) != _SPAN_ID_LEN or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * _TRACE_ID_LEN or span_id == "0" * _SPAN_ID_LEN:
        return None
    return SpanContext(trace_id, span_id)


# -- the span record ---------------------------------------------------------


@dataclass
class Span:
    """One finished, timed operation in a trace tree.

    ``start`` / ``end`` are wall-clock epoch seconds (``time.time``);
    everything else — ids, name, attributes, status — is deterministic
    for a deterministic workload (see :func:`span_tree_signature`).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds the operation took."""
        return self.end - self.start


def span_to_dict(span: Span) -> dict:
    """JSON-serializable dict (the JSONL line / worker-fragment format)."""
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "attributes": dict(span.attributes),
    }


def span_from_dict(payload: Mapping[str, Any]) -> Span:
    """Inverse of :func:`span_to_dict`; unknown fields raise."""
    data = dict(payload)
    unknown = set(data) - {
        "name", "trace_id", "span_id", "parent_id", "start", "end",
        "status", "attributes",
    }
    if unknown:
        raise ValueError(f"span dict has unknown fields {sorted(unknown)}")
    try:
        return Span(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            end=float(data["end"]),
            status=data.get("status", "ok"),
            attributes=dict(data.get("attributes") or {}),
        )
    except KeyError as exc:
        raise ValueError(f"span dict missing field {exc}") from None


# -- recorders ---------------------------------------------------------------


class NullSpanRecorder:
    """The tracing-off fast path: inactive, drops everything."""

    #: Hot-path guard — :func:`span` checks this before any other work.
    active: bool = False

    __slots__ = ()

    def emit(self, span: Span) -> None:
        """Drop the span."""

    @property
    def spans(self) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpanRecorder()"


#: Shared inactive recorder (stateless, safe to reuse everywhere).
NULL_SPAN_RECORDER = NullSpanRecorder()


class SpanRecorder:
    """Collects finished spans in emission order; optional JSONL sink.

    Parameters
    ----------
    path:
        When given, every emitted span is *also* appended to this JSONL
        file immediately (one :func:`span_to_dict` line per span), so
        traces survive a crashed or killed process.  The in-memory store
        is kept either way.
    maxlen:
        Ring-buffer the in-memory store (newest spans survive) so a
        long-lived service does not grow without bound; the JSONL sink
        still receives every span.
    """

    active: bool = True

    __slots__ = ("_spans", "_lock", "path", "maxlen")

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        maxlen: int | None = None,
    ):
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, span: Span) -> None:
        """Append one finished span (thread-safe)."""
        line = None
        if self.path is not None:
            line = json.dumps(span_to_dict(span)) + "\n"
        with self._lock:
            self._spans.append(span)
            if line is not None:
                with self.path.open("a") as fh:
                    fh.write(line)

    @property
    def spans(self) -> tuple[Span, ...]:
        """Snapshot of the recorded spans, in emission order."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans (the JSONL sink is left untouched)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sink = "" if self.path is None else f", path={str(self.path)!r}"
        return f"SpanRecorder({len(self)} spans{sink})"


_RECORDER: NullSpanRecorder | SpanRecorder = NULL_SPAN_RECORDER


def get_span_recorder() -> NullSpanRecorder | SpanRecorder:
    """The process-wide span recorder (default: :data:`NULL_SPAN_RECORDER`)."""
    return _RECORDER


def set_span_recorder(
    recorder: NullSpanRecorder | SpanRecorder,
) -> NullSpanRecorder | SpanRecorder:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


@contextmanager
def recording(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Scoped :func:`set_span_recorder` (tests and service lifetimes)."""
    previous = set_span_recorder(recorder)
    try:
        yield recorder
    finally:
        set_span_recorder(previous)


# -- the live span + context propagation -------------------------------------


class ActiveSpan:
    """A span that has started but not yet finished.

    Exposes :meth:`set_attribute` for late enrichment (HTTP status,
    coalesce links) and :meth:`next_index` — a locked child counter that
    gives sequentially-created children deterministic sibling indices.
    """

    __slots__ = (
        "context", "name", "parent_id", "start", "attributes", "status",
        "_children", "_lock",
    )

    def __init__(
        self,
        context: SpanContext,
        name: str,
        parent_id: str | None,
        attributes: dict[str, Any] | None = None,
    ):
        self.context = context
        self.name = name
        self.parent_id = parent_id
        self.start = time.time()
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self._children = 0
        self._lock = threading.Lock()

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the live span."""
        self.attributes[key] = value

    def next_index(self) -> int:
        """Claim the next sibling index (0, 1, 2, ...; thread-safe)."""
        with self._lock:
            index = self._children
            self._children += 1
            return index

    def finish(self, end: float | None = None) -> Span:
        """Freeze into a :class:`Span` record."""
        return Span(
            name=self.name,
            trace_id=self.context.trace_id,
            span_id=self.context.span_id,
            parent_id=self.parent_id,
            start=self.start,
            end=end if end is not None else time.time(),
            status=self.status,
            attributes=dict(self.attributes),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActiveSpan({self.name!r}, {self.context.span_id})"


_CURRENT: contextvars.ContextVar[ActiveSpan | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_span() -> ActiveSpan | None:
    """The live span of the calling context, if any."""
    return _CURRENT.get()


def current_context() -> SpanContext | None:
    """The :class:`SpanContext` of the calling context's live span."""
    live = _CURRENT.get()
    return live.context if live is not None else None


@contextmanager
def span(
    name: str,
    *,
    attributes: Mapping[str, Any] | None = None,
    parent: SpanContext | None = None,
    index: int | None = None,
    trace_id: str | None = None,
    context: SpanContext | None = None,
    parent_id: str | None = None,
    recorder: NullSpanRecorder | SpanRecorder | None = None,
) -> Iterator[ActiveSpan | None]:
    """Record one span around the enclosed block.

    With the process recorder inactive (and no explicit ``recorder``)
    this yields ``None`` immediately — the tracing-off fast path.

    Parameters
    ----------
    attributes:
        Initial attributes (more via :meth:`ActiveSpan.set_attribute`).
    parent:
        Explicit parent context (cross-thread / cross-process / remote
        ``traceparent``).  Defaults to the calling context's live span,
        else the span becomes a trace root.
    index:
        Sibling index for deterministic id derivation.  Defaults to the
        live parent's :meth:`~ActiveSpan.next_index`, else 0.
    trace_id:
        Pin the trace id of a *root* span (determinism tests, client-side
        trace minting).  Ignored when a parent exists.
    context / parent_id:
        Pin the exact span context (pre-derived elsewhere, e.g. the
        scheduler derives an entry's executing-span id at submit time so
        coalesced duplicates can link to it before it even starts).
    recorder:
        Record into this recorder instead of the process-wide one
        (worker-side fragments).
    status:
        Set automatically: ``"error"`` plus an ``error.type`` attribute
        when the block raises (the exception propagates).
    """
    rec = recorder if recorder is not None else _RECORDER
    if not rec.active:
        yield None
        return
    if context is not None:
        ctx = context
        resolved_parent_id = parent_id
    else:
        parent_ctx = parent
        if parent_ctx is None:
            live = _CURRENT.get()
            if live is not None:
                parent_ctx = live.context
                if index is None:
                    index = live.next_index()
        if parent_ctx is None:
            ctx = root_context(trace_id, name)
            resolved_parent_id = None
        else:
            ctx = parent_ctx.child(name, index if index is not None else 0)
            resolved_parent_id = parent_ctx.span_id
    active = ActiveSpan(ctx, name, resolved_parent_id, dict(attributes or {}))
    token = _CURRENT.set(active)
    try:
        yield active
    except BaseException as exc:
        active.status = "error"
        active.attributes.setdefault("error.type", type(exc).__name__)
        raise
    finally:
        _CURRENT.reset(token)
        rec.emit(active.finish())


# -- JSONL persistence -------------------------------------------------------


def write_spans_jsonl(path: str | Path, spans: Iterable[Span]) -> Path:
    """Write one span per line; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in spans:
            fh.write(json.dumps(span_to_dict(record)) + "\n")
    return path


def read_spans_jsonl(path: str | Path) -> tuple[Span, ...]:
    """Load a spans JSONL file back into :class:`Span` records."""
    spans: list[Span] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return tuple(spans)


# -- analysis: trees, self-times, signatures ---------------------------------

#: Attribute keys that carry wall-clock-derived measurements (the
#: scheduler's queue-wait / execution-time split).  They are excluded
#: from :func:`span_tree_signature` for exactly the reason ``start`` /
#: ``end`` are: their *presence* is deterministic but their values are
#: timings, and the signature is the timing-free identity of a tree.
TIMING_ATTRIBUTES = frozenset({"queue_wait_s", "exec_s"})

#: Attribute keys that say *where in a cluster topology* a span ran —
#: shard ids, worker counts, per-worker slice sizes (see
#: :mod:`repro.service.cluster`).  Excluded from
#: :func:`span_tree_signature` for the same reason timings are: the
#: signature is the topology-free identity of the work, and the
#: equivalence suite asserts one request produces equal signatures
#: whether it ran single-process or through N workers.
TOPOLOGY_ATTRIBUTES = frozenset(
    {"cluster.shard", "cluster.workers", "cluster.slice_items"}
)

#: Everything :func:`span_tree_signature` ignores.
SIGNATURE_EXCLUDED_ATTRIBUTES = TIMING_ATTRIBUTES | TOPOLOGY_ATTRIBUTES


def _canonical_value(value: Any) -> Any:
    if isinstance(value, float):
        return ("f", value.hex())
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    if isinstance(value, Mapping):
        return tuple(
            sorted((str(k), _canonical_value(v)) for k, v in value.items())
        )
    return value


def span_tree_signature(spans: Sequence[Span]) -> tuple:
    """The timing-free identity of a span set, in emission order.

    Covers everything deterministic — trace/span/parent ids, names,
    status, canonicalized attributes (floats bit-exact via ``hex``) —
    and excludes ``start`` / ``end`` plus the wall-clock-valued
    attribute keys in :data:`TIMING_ATTRIBUTES` and the placement keys
    in :data:`TOPOLOGY_ATTRIBUTES`.  Two executions of the same logical
    workload under different executor backends — or different cluster
    shard counts — produce *equal* signatures; the determinism suites
    assert exactly that.
    """
    return tuple(
        (
            record.trace_id,
            record.span_id,
            record.parent_id,
            record.name,
            record.status,
            _canonical_value(
                {
                    k: v
                    for k, v in record.attributes.items()
                    if k not in SIGNATURE_EXCLUDED_ATTRIBUTES
                }
            ),
        )
        for record in spans
    )


def build_span_tree(
    spans: Sequence[Span],
) -> list[tuple[Span, list]]:
    """Nest spans into ``(span, children)`` trees (roots returned).

    Children keep emission order.  A span whose ``parent_id`` is absent
    from the set (e.g. the remote half of a distributed trace) is
    treated as a root, so partial traces still render.
    """
    by_id = {record.span_id: record for record in spans}
    children: dict[str, list[Span]] = {}
    roots: list[Span] = []
    for record in spans:
        if record.parent_id is not None and record.parent_id in by_id:
            children.setdefault(record.parent_id, []).append(record)
        else:
            roots.append(record)

    def node(record: Span) -> tuple[Span, list]:
        return (record, [node(c) for c in children.get(record.span_id, [])])

    return [node(record) for record in roots]


def self_times(spans: Sequence[Span]) -> dict[str, float]:
    """Per-span-name *self* seconds: duration minus direct children.

    The service-side analogue of the Fig. 5 portion decomposition: a
    request's wall-clock splits exactly into the self-times of the spans
    on its tree (queueing shows up as scheduler self-time, solving as
    solver time, and so on).  Sums over all spans sharing a name, using
    :func:`math.fsum` for order-stable totals; negative self-times
    (clock skew between fragment hosts) clamp to 0.
    """
    child_sum: dict[str, float] = {}
    by_id = {record.span_id: record for record in spans}
    for record in spans:
        if record.parent_id is not None and record.parent_id in by_id:
            child_sum[record.parent_id] = (
                child_sum.get(record.parent_id, 0.0) + record.duration
            )
    totals: dict[str, list[float]] = {}
    for record in spans:
        self_s = max(0.0, record.duration - child_sum.get(record.span_id, 0.0))
        totals.setdefault(record.name, []).append(self_s)
    return {name: math.fsum(values) for name, values in totals.items()}


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def format_span_tree(spans: Sequence[Span], *, attributes: bool = True) -> str:
    """Human-readable tree with durations, self-times, and a per-phase
    self-time breakdown (sorted by share, the Fig.-5-style decomposition)."""
    if not spans:
        return "(no spans)"
    trace_ids = {record.trace_id for record in spans}
    lines: list[str] = []
    if len(trace_ids) == 1:
        lines.append(f"trace {next(iter(trace_ids))}")
    else:
        lines.append(f"({len(trace_ids)} traces)")

    child_sum: dict[str, float] = {}
    by_id = {record.span_id: record for record in spans}
    for record in spans:
        if record.parent_id is not None and record.parent_id in by_id:
            child_sum[record.parent_id] = (
                child_sum.get(record.parent_id, 0.0) + record.duration
            )

    def render(node: tuple[Span, list], prefix: str, is_last: bool) -> None:
        record, children = node
        connector = "└─ " if is_last else "├─ "
        self_s = max(0.0, record.duration - child_sum.get(record.span_id, 0.0))
        text = (
            f"{prefix}{connector}{record.name}  "
            f"{_format_seconds(record.duration)} "
            f"(self {_format_seconds(self_s)})"
        )
        if record.status != "ok":
            text += f"  [{record.status}]"
        if attributes and record.attributes:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record.attributes.items())
            )
            text += f"  {attrs}"
        lines.append(text)
        extension = "   " if is_last else "│  "
        for i, child in enumerate(children):
            render(child, prefix + extension, i == len(children) - 1)

    roots = build_span_tree(spans)
    for i, root in enumerate(roots):
        render(root, "", i == len(roots) - 1)

    breakdown = self_times(spans)
    total = math.fsum(breakdown.values())
    if total > 0:
        lines.append("")
        lines.append("self-time by phase:")
        ordered = sorted(breakdown.items(), key=lambda kv: (-kv[1], kv[0]))
        width = max(len(name) for name, _ in ordered)
        for name, seconds in ordered:
            lines.append(
                f"  {name:<{width}}  {_format_seconds(seconds):>10}"
                f"  {seconds / total:6.1%}"
            )
    return "\n".join(lines)
