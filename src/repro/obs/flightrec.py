"""Flight recorder: bounded in-memory retention of completed traces.

The JSONL span sinks (``spans-shard<i>.jsonl``) are the durable record,
but answering "show me the trace behind that p99 spike" from a *running*
service by re-reading ever-growing files is the wrong tool.  The
:class:`FlightRecorder` keeps the spans of recently completed requests
in memory, grouped by trace id, so ``GET /v1/trace/<id>`` can answer
immediately and ``GET /v1/debug/recent`` can list what just happened.

It layers over the existing recorder protocol rather than replacing it:
a ``FlightRecorder`` wraps the installed :class:`~repro.obs.spans.SpanRecorder`
(or the null recorder), forwards every emission to it unchanged (the
JSONL sink keeps receiving every span), and additionally files the span
under its trace.  ``active`` mirrors the inner recorder, so with span
recording off the :func:`~repro.obs.spans.span` fast path still
short-circuits before ever reaching :meth:`emit` — the <5% tracing-off
overhead budget is untouched.

Retention is two-tier, sized for incident debugging rather than
archival:

* a **ring** of the most recently completed traces (``capacity``), and
* a **slowest-N** set (``keep_slowest``) that survives ring wraparound —
  the pathological requests an operator actually wants are exactly the
  ones a plain FIFO would have evicted first.

Spans arrive bottom-up (children finish before their parent), so a
trace is *completed* when a span whose name is in ``root_names`` (the
server's request root) is emitted; fragments of traces whose root never
arrives (e.g. client-side probe spans recorded in the same process) sit
in a bounded pending map and fall out oldest-first.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Sequence

from repro.obs.spans import (
    NULL_SPAN_RECORDER,
    NullSpanRecorder,
    Span,
    SpanRecorder,
)

#: Span names that mark "this trace's request finished" when emitted.
REQUEST_ROOT_NAMES = frozenset({"server.request"})

DEFAULT_CAPACITY = 256
DEFAULT_KEEP_SLOWEST = 32
DEFAULT_MAX_PENDING = 512


def stitch_spans(spans: Iterable[Span]) -> list[Span]:
    """Canonical ordering for spans gathered from multiple sources.

    Online trace queries (coordinator fanning out to N workers) and
    offline file stitching (``sorted(glob("spans-shard*.jsonl"))``) see
    the same span *set* in different arrival orders; sorting by
    ``(end, start, span_id)`` makes both produce the identical sequence
    — and therefore identical
    :func:`~repro.obs.spans.span_tree_signature` values, the property
    the equivalence matrix asserts.  Within one process the sort also
    reproduces emission order (children finish before parents).
    """
    return sorted(spans, key=lambda s: (s.end, s.start, s.span_id))


class TraceEntry:
    """The retained spans and headline stats of one completed trace."""

    __slots__ = (
        "trace_id", "spans", "duration", "status", "roots", "end",
        "completions",
    )

    def __init__(self, trace_id: str, spans: list[Span], root: Span):
        self.trace_id = trace_id
        self.spans = spans
        self.duration = root.duration
        self.status = root.status
        self.roots = [root.name]
        self.end = root.end
        self.completions = 1

    def absorb(self, spans: list[Span], root: Span) -> None:
        """Fold a later completion of the same trace into this entry."""
        self.spans.extend(spans)
        self.duration = max(self.duration, root.duration)
        if root.status != "ok":
            self.status = root.status
        self.roots.append(root.name)
        self.end = max(self.end, root.end)
        self.completions += 1

    def summary(self) -> dict:
        """The ``/v1/debug/recent`` listing row."""
        return {
            "trace_id": self.trace_id,
            "duration_s": round(self.duration, 6),
            "status": self.status,
            "roots": list(self.roots),
            "spans": len(self.spans),
            "end_unix": self.end,
            "completions": self.completions,
        }


class FlightRecorder:
    """Recorder-protocol wrapper retaining recently completed traces.

    Parameters
    ----------
    inner:
        The recorder every span is forwarded to (normally the process
        :class:`~repro.obs.spans.SpanRecorder` with its JSONL sink).
        ``active`` mirrors this recorder's flag.
    capacity:
        Completed traces retained in total (ring + protected slowest).
    keep_slowest:
        Of those, how many slots are reserved for the slowest traces
        seen — these survive ring wraparound.  Must be < ``capacity``
        so eviction always has a victim.
    max_pending:
        Bound on traces with fragments but no completed root yet;
        beyond it the oldest pending trace is dropped.
    root_names:
        Span names whose emission completes their trace.
    """

    def __init__(
        self,
        inner: NullSpanRecorder | SpanRecorder | None = None,
        *,
        capacity: int = DEFAULT_CAPACITY,
        keep_slowest: int = DEFAULT_KEEP_SLOWEST,
        max_pending: int = DEFAULT_MAX_PENDING,
        root_names: Sequence[str] | frozenset[str] = REQUEST_ROOT_NAMES,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 <= keep_slowest < capacity:
            raise ValueError(
                f"keep_slowest must be in [0, capacity), got {keep_slowest} "
                f"with capacity {capacity}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.inner = inner if inner is not None else NULL_SPAN_RECORDER
        #: Mirrors the wrapped recorder's flag.  Snapshotted as a plain
        #: attribute (recorders never toggle ``active`` in place — they
        #: are swapped wholesale) so the ``span()`` hot-loop guard stays
        #: a single attribute read; a property here costs a Python call
        #: per check and blows the <5% tracing-off budget.
        self.active = self.inner.active
        self.capacity = int(capacity)
        self.keep_slowest = int(keep_slowest)
        self.max_pending = int(max_pending)
        self.root_names = frozenset(root_names)
        self._lock = threading.Lock()
        #: trace_id -> completed entry (ring members + slowest survivors).
        self._entries: dict[str, TraceEntry] = {}
        #: Completion ring: trace ids oldest-first.
        self._recent: deque[str] = deque()
        self._recent_ids: set[str] = set()
        #: Trace ids currently protected by the slowest-N policy.
        self._slow_ids: set[str] = set()
        #: trace_id -> spans awaiting their root (insertion-ordered).
        self._pending: dict[str, list[Span]] = {}

    # ---------------------------------------------------- recorder protocol

    def emit(self, span: Span) -> None:
        """Forward to the inner recorder, then file under the trace."""
        self.inner.emit(span)
        with self._lock:
            if span.name in self.root_names:
                self._complete(span)
            else:
                fragments = self._pending.get(span.trace_id)
                if fragments is None:
                    while len(self._pending) >= self.max_pending:
                        oldest = next(iter(self._pending))
                        del self._pending[oldest]
                    self._pending[span.trace_id] = [span]
                else:
                    fragments.append(span)

    # --------------------------------------------------------- bookkeeping

    def _complete(self, root: Span) -> None:
        trace_id = root.trace_id
        spans = self._pending.pop(trace_id, [])
        spans.append(root)
        entry = self._entries.get(trace_id)
        if entry is None:
            entry = TraceEntry(trace_id, spans, root)
            self._entries[trace_id] = entry
            self._recent.append(trace_id)
            self._recent_ids.add(trace_id)
        else:
            entry.absorb(spans, root)
            if trace_id not in self._recent_ids:
                # It lived on only as a slowest survivor; a fresh
                # completion puts it back in the ring.
                self._recent.append(trace_id)
                self._recent_ids.add(trace_id)
        self._protect_if_slow(entry)
        self._evict()

    def _protect_if_slow(self, entry: TraceEntry) -> None:
        if self.keep_slowest == 0 or entry.trace_id in self._slow_ids:
            return
        if len(self._slow_ids) < self.keep_slowest:
            self._slow_ids.add(entry.trace_id)
            return
        floor_id = min(
            self._slow_ids, key=lambda tid: self._entries[tid].duration
        )
        if entry.duration <= self._entries[floor_id].duration:
            return
        self._slow_ids.discard(floor_id)
        self._slow_ids.add(entry.trace_id)
        if floor_id not in self._recent_ids:
            # The displaced trace only survived through its protection;
            # without it (and outside the ring) it is unreachable.
            del self._entries[floor_id]

    def _evict(self) -> None:
        while len(self._entries) > self.capacity and self._recent:
            trace_id = self._recent.popleft()
            self._recent_ids.discard(trace_id)
            if trace_id in self._slow_ids:
                continue  # protected: outlives its ring slot
            del self._entries[trace_id]

    # -------------------------------------------------------------- queries

    def get(self, trace_id: str) -> list[Span] | None:
        """Every retained span of ``trace_id`` (completed + pending),
        or ``None`` when the recorder holds nothing for it."""
        with self._lock:
            spans: list[Span] = []
            entry = self._entries.get(trace_id)
            if entry is not None:
                spans.extend(entry.spans)
            spans.extend(self._pending.get(trace_id, ()))
            return spans or None

    def recent(self, limit: int = 20) -> list[dict]:
        """Most recently completed traces, newest first."""
        with self._lock:
            ids = list(self._recent)[-limit:][::-1]
            return [self._entries[tid].summary() for tid in ids]

    def slowest(self, limit: int = 20) -> list[dict]:
        """The protected slowest traces, slowest first."""
        with self._lock:
            entries = sorted(
                (self._entries[tid] for tid in self._slow_ids),
                key=lambda e: -e.duration,
            )
            return [entry.summary() for entry in entries[:limit]]

    def stats(self) -> dict:
        """Occupancy counters for ``/v1/debug/recent``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "keep_slowest": self.keep_slowest,
                "completed": len(self._entries),
                "pending": len(self._pending),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder({len(self)}/{self.capacity} traces, "
            f"inner={self.inner!r})"
        )
