"""Process-local metrics: counters, gauges, histograms, snapshot/merge.

The registry absorbs the ad-hoc stats that used to live all over the
repo — memo hit/miss counters (:mod:`repro.core.memo`), per-phase
wall-clock (:class:`repro.parallel.timing.PhaseTimer`), executor task
counts and map timings (:mod:`repro.parallel.executor`), per-replica
simulation counts (:mod:`repro.sim.ensemble`) — under one namespace with
uniform export.

Design rules (they are what make per-worker reduction deterministic):

* **Counter** — monotone float accumulator (integers stay exact).  Merge
  adds.  Worker-side counts are integers, so serial and process-pool
  ensembles reduce to bit-identical values.
* **Gauge** — last-written float (e.g. cache size).  Merge overwrites
  with the incoming value: the incoming snapshot is always the *newer*
  observation in this repo's reduce direction (workers → parent).
* **Histogram** — the raw observation sequence (optionally ring-buffered).
  Merge concatenates, so as long as snapshots are merged in task order —
  which :func:`repro.sim.ensemble.run_ensemble` guarantees via its
  order-preserving executor map — the merged sample sequence equals the
  serial one *exactly*, independent of chunk boundaries.  Aggregates
  (``sum``/``mean``) are computed lazily with :func:`math.fsum`, so they
  too are chunking-independent.

A snapshot is a plain JSON-serializable dict
``{name: {"type": ..., ...}}``; :func:`merge_snapshots` reduces two of
them, and :meth:`MetricsRegistry.merge_snapshot` absorbs one into a live
registry.  The process-wide default registry is :data:`METRICS`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import deque
from typing import Iterable, Mapping, Sequence


class Counter:
    """Monotone accumulator (``inc``/``add``); integer adds stay exact."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self) -> None:
        """Add 1."""
        self.value += 1

    def add(self, amount: float) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """Last-written value (``set``)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


#: Default fixed latency buckets (seconds) for request-duration
#: histograms: sub-millisecond cache hits through multi-second cold
#: solves.  Upper bounds are cumulative, Prometheus-style; the implicit
#: final bucket is +Inf.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: After this many further observations land in a bucket, its stored
#: exemplar counts as stale and the next exemplar-bearing observation
#: replaces it even if faster — "worst *recent*", not "worst ever".
EXEMPLAR_TTL_OBSERVATIONS = 512


class Histogram:
    """Raw observation sequence with lazy, order-stable aggregates.

    ``maxlen`` turns the storage into a ring buffer (newest observations
    survive) for unbounded streams; sample-based aggregation (``sum`` /
    ``mean`` / ``percentile``) then describes the retained window only.

    ``buckets`` additionally maintains fixed-bucket cumulative counts
    (Prometheus histogram semantics: each bucket counts observations
    ``<= upper_bound``, plus an implicit +Inf bucket).  Bucket counts are
    integers over *every* observation — exact and merge-order-independent
    even when the sample window ring-buffers — which is what the SLO
    exposition on ``GET /metrics`` is built from.

    Bucketed histograms can additionally carry **exemplars**: an
    observation may name the trace behind it (``observe(v, exemplar=
    trace_id)``), and each bucket remembers the worst recent such
    observation.  Exemplars ride only in the JSON payloads (snapshot /
    ``/metrics.json``) — the Prometheus text renderer never sees them —
    and the ``exemplars`` payload key is omitted entirely when none were
    recorded, so exemplar-free snapshots are byte-identical to before.
    """

    __slots__ = ("_samples", "maxlen", "buckets", "_bucket_counts", "_exemplars")

    def __init__(
        self,
        maxlen: int | None = None,
        buckets: Sequence[float] | None = None,
    ):
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._samples: deque[float] = deque(maxlen=maxlen)
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if not bounds:
                raise ValueError("buckets must be non-empty or None")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise ValueError(
                    f"bucket bounds must be strictly increasing, got {bounds}"
                )
            self.buckets: tuple[float, ...] | None = bounds
            # One slot per bound plus the implicit +Inf bucket.
            self._bucket_counts = [0] * (len(bounds) + 1)
        else:
            self.buckets = None
            self._bucket_counts = None
        #: bucket index -> (value, trace_id, bucket_count_when_stored).
        self._exemplars: dict[int, tuple[float, str, int]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation, optionally naming its trace id."""
        value = float(value)
        self._samples.append(value)
        if self.buckets is not None:
            index = self._count_into_bucket(value)
            if exemplar is not None:
                self._note_exemplar(index, value, exemplar)

    def _count_into_bucket(self, value: float) -> int:
        index = bisect_left(self.buckets, value)
        self._bucket_counts[index] += 1
        return index

    def _note_exemplar(self, index: int, value: float, trace_id: str) -> None:
        current = self._exemplars.get(index)
        seen = self._bucket_counts[index]
        if (
            current is None
            or value >= current[0]
            or seen - current[2] >= EXEMPLAR_TTL_OBSERVATIONS
        ):
            self._exemplars[index] = (value, trace_id, seen)

    def exemplars(self) -> dict[int, tuple[float, str]]:
        """Per-bucket ``{index: (value, trace_id)}`` worst-recent map."""
        return {i: (v, tid) for i, (v, tid, _) in self._exemplars.items()}

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations, in order."""
        for value in values:
            self.observe(value)

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained observations, oldest first."""
        return tuple(self._samples)

    @property
    def count(self) -> int:
        """Number of retained observations."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Exact (fsum) total of the retained observations."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Mean of the retained observations (0.0 when empty)."""
        return self.sum / self.count if self._samples else 0.0

    @property
    def min(self) -> float:
        """Smallest retained observation (``nan`` when empty)."""
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        """Largest retained observation (``nan`` when empty)."""
        return max(self._samples) if self._samples else math.nan

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile of the retained window.

        ``q`` in [0, 100].  Deterministic (sorted samples, nearest-rank —
        no interpolation), ``nan`` when empty.  For ring-buffered
        histograms this is the sliding-window quantile the SLO summaries
        report (p50/p95/p99).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def total_count(self) -> int:
        """Observations ever recorded (bucketed histograms only fall
        back to the retained count when no buckets are configured)."""
        if self._bucket_counts is None:
            return len(self._samples)
        return sum(self._bucket_counts)

    def bucket_counts(self) -> tuple[int, ...] | None:
        """Per-bucket (non-cumulative) counts; last slot is +Inf."""
        if self._bucket_counts is None:
            return None
        return tuple(self._bucket_counts)

    def cumulative_buckets(self) -> tuple[tuple[float, int], ...] | None:
        """Prometheus-style ``(upper_bound, cumulative_count)`` pairs,
        ending with ``(inf, total_count)``."""
        if self._bucket_counts is None:
            return None
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return tuple(out)

    def to_payload(self) -> dict:
        """The snapshot dict (see :meth:`MetricsRegistry.snapshot`)."""
        payload = {
            "type": "histogram",
            "samples": list(self._samples),
            "maxlen": self.maxlen,
        }
        if self.buckets is not None:
            payload["buckets"] = list(self.buckets)
            payload["bucket_counts"] = list(self._bucket_counts)
            if self._exemplars:
                # Emitted only when present: exemplar-free payloads stay
                # byte-identical to the pre-exemplar format.  Keys are
                # strings (bucket index) to survive JSON round-trips.
                payload["exemplars"] = {
                    str(i): {"value": v, "trace_id": tid}
                    for i, (v, tid, _) in sorted(self._exemplars.items())
                }
        return payload

    def merge_payload(self, payload: Mapping) -> None:
        """Absorb one snapshot payload: samples append in order, bucket
        counts add (integers — exact, chunking-independent), exemplars
        keep the worse (higher-valued) observation per bucket."""
        counts = payload.get("bucket_counts")
        if counts is not None and self._bucket_counts is not None:
            if len(counts) != len(self._bucket_counts):
                raise ValueError(
                    f"bucket layout mismatch: {len(counts)} incoming slots "
                    f"vs {len(self._bucket_counts)} existing"
                )
            for sample in payload["samples"]:
                self._samples.append(float(sample))
            for i, count in enumerate(counts):
                self._bucket_counts[i] += int(count)
            for key, incoming in (payload.get("exemplars") or {}).items():
                index = int(key)
                value = float(incoming["value"])
                current = self._exemplars.get(index)
                if current is None or value >= current[0]:
                    self._exemplars[index] = (
                        value, incoming["trace_id"], self._bucket_counts[index]
                    )
        else:
            # No incoming bucket counts: route through observe() so a
            # bucketed destination still counts the merged samples.
            self.extend(payload["samples"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Thread-safe, insertion-ordered name -> metric store.

    ``counter``/``gauge``/``histogram`` are get-or-create (the prometheus
    idiom): call sites never need registration boilerplate, and a name
    always maps to one metric object of one type — asking for an existing
    name with a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, cls, *args):
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(*args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self,
        name: str,
        maxlen: int | None = None,
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` (``maxlen`` / ``buckets``
        apply on create only)."""
        return self._get_or_create(name, Histogram, maxlen, buckets)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, in insertion order."""
        with self._lock:
            return tuple(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests and fresh-run boundaries)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """JSON-serializable ``{name: {"type": ..., ...}}``, insertion-ordered.

        ``prefix`` filters to names starting with it (e.g. ``"sim."``).
        """
        with self._lock:
            items = [
                (name, metric)
                for name, metric in self._metrics.items()
                if name.startswith(prefix)
            ]
        snap: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, Counter):
                snap[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                snap[name] = {"type": "gauge", "value": metric.value}
            else:
                snap[name] = metric.to_payload()
        return snap

    def summary(self, prefix: str = "") -> dict[str, float | dict]:
        """Compact human-facing view: scalars, histograms as aggregate
        dicts including nearest-rank p50/p95/p99 of the retained window."""
        out: dict[str, float | dict] = {}
        for name, payload in self.snapshot(prefix).items():
            if payload["type"] == "histogram":
                samples = payload["samples"]
                entry = {
                    "count": len(samples),
                    "sum": math.fsum(samples),
                    "min": min(samples) if samples else math.nan,
                    "max": max(samples) if samples else math.nan,
                }
                ordered = sorted(samples)
                for q in (50, 95, 99):
                    if ordered:
                        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
                        entry[f"p{q}"] = ordered[rank - 1]
                    else:
                        entry[f"p{q}"] = math.nan
                exemplars = payload.get("exemplars")
                if exemplars:
                    bounds = payload.get("buckets") or ()
                    entry["exemplars"] = {
                        (
                            f"{bounds[int(i)]:g}"
                            if int(i) < len(bounds)
                            else "+Inf"
                        ): dict(cell)
                        for i, cell in exemplars.items()
                    }
                out[name] = entry
            else:
                out[name] = payload["value"]
        return out

    def merge_snapshot(self, snap: Mapping[str, Mapping]) -> None:
        """Absorb one :meth:`snapshot` (counters add, gauges overwrite,
        histogram samples append in order)."""
        for name, payload in snap.items():
            kind = payload["type"]
            if kind == "counter":
                self.counter(name).add(payload["value"])
            elif kind == "gauge":
                self.gauge(name).set(payload["value"])
            elif kind == "histogram":
                self.histogram(
                    name, payload.get("maxlen"), payload.get("buckets")
                ).merge_payload(payload)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def merge_snapshots(
    *snaps: Mapping[str, Mapping],
) -> dict[str, dict]:
    """Reduce snapshots left to right into one (order matters for
    histograms/gauges; counters commute)."""
    registry = MetricsRegistry()
    for snap in snaps:
        registry.merge_snapshot(snap)
    return registry.snapshot()


#: The process-wide default registry all instrumented call sites use.
METRICS = MetricsRegistry()
