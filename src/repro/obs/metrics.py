"""Process-local metrics: counters, gauges, histograms, snapshot/merge.

The registry absorbs the ad-hoc stats that used to live all over the
repo — memo hit/miss counters (:mod:`repro.core.memo`), per-phase
wall-clock (:class:`repro.parallel.timing.PhaseTimer`), executor task
counts and map timings (:mod:`repro.parallel.executor`), per-replica
simulation counts (:mod:`repro.sim.ensemble`) — under one namespace with
uniform export.

Design rules (they are what make per-worker reduction deterministic):

* **Counter** — monotone float accumulator (integers stay exact).  Merge
  adds.  Worker-side counts are integers, so serial and process-pool
  ensembles reduce to bit-identical values.
* **Gauge** — last-written float (e.g. cache size).  Merge overwrites
  with the incoming value: the incoming snapshot is always the *newer*
  observation in this repo's reduce direction (workers → parent).
* **Histogram** — the raw observation sequence (optionally ring-buffered).
  Merge concatenates, so as long as snapshots are merged in task order —
  which :func:`repro.sim.ensemble.run_ensemble` guarantees via its
  order-preserving executor map — the merged sample sequence equals the
  serial one *exactly*, independent of chunk boundaries.  Aggregates
  (``sum``/``mean``) are computed lazily with :func:`math.fsum`, so they
  too are chunking-independent.

A snapshot is a plain JSON-serializable dict
``{name: {"type": ..., ...}}``; :func:`merge_snapshots` reduces two of
them, and :meth:`MetricsRegistry.merge_snapshot` absorbs one into a live
registry.  The process-wide default registry is :data:`METRICS`.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Iterable, Mapping


class Counter:
    """Monotone accumulator (``inc``/``add``); integer adds stay exact."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self) -> None:
        """Add 1."""
        self.value += 1

    def add(self, amount: float) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """Last-written value (``set``)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Raw observation sequence with lazy, order-stable aggregates.

    ``maxlen`` turns the storage into a ring buffer (newest observations
    survive) for unbounded streams; aggregation then describes the
    retained window only.
    """

    __slots__ = ("_samples", "maxlen")

    def __init__(self, maxlen: int | None = None):
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._samples: deque[float] = deque(maxlen=maxlen)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations, in order."""
        for value in values:
            self._samples.append(float(value))

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained observations, oldest first."""
        return tuple(self._samples)

    @property
    def count(self) -> int:
        """Number of retained observations."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Exact (fsum) total of the retained observations."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Mean of the retained observations (0.0 when empty)."""
        return self.sum / self.count if self._samples else 0.0

    @property
    def min(self) -> float:
        """Smallest retained observation (``nan`` when empty)."""
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        """Largest retained observation (``nan`` when empty)."""
        return max(self._samples) if self._samples else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Thread-safe, insertion-ordered name -> metric store.

    ``counter``/``gauge``/``histogram`` are get-or-create (the prometheus
    idiom): call sites never need registration boilerplate, and a name
    always maps to one metric object of one type — asking for an existing
    name with a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, cls, *args):
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(*args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, maxlen: int | None = None) -> Histogram:
        """Get-or-create the histogram ``name`` (``maxlen`` applies on create)."""
        return self._get_or_create(name, Histogram, maxlen)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, in insertion order."""
        with self._lock:
            return tuple(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests and fresh-run boundaries)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """JSON-serializable ``{name: {"type": ..., ...}}``, insertion-ordered.

        ``prefix`` filters to names starting with it (e.g. ``"sim."``).
        """
        with self._lock:
            items = [
                (name, metric)
                for name, metric in self._metrics.items()
                if name.startswith(prefix)
            ]
        snap: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, Counter):
                snap[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                snap[name] = {"type": "gauge", "value": metric.value}
            else:
                snap[name] = {
                    "type": "histogram",
                    "samples": list(metric.samples),
                    "maxlen": metric.maxlen,
                }
        return snap

    def summary(self, prefix: str = "") -> dict[str, float | dict]:
        """Compact human-facing view: scalars, histograms as aggregate dicts."""
        out: dict[str, float | dict] = {}
        for name, payload in self.snapshot(prefix).items():
            if payload["type"] == "histogram":
                samples = payload["samples"]
                out[name] = {
                    "count": len(samples),
                    "sum": math.fsum(samples),
                    "min": min(samples) if samples else math.nan,
                    "max": max(samples) if samples else math.nan,
                }
            else:
                out[name] = payload["value"]
        return out

    def merge_snapshot(self, snap: Mapping[str, Mapping]) -> None:
        """Absorb one :meth:`snapshot` (counters add, gauges overwrite,
        histogram samples append in order)."""
        for name, payload in snap.items():
            kind = payload["type"]
            if kind == "counter":
                self.counter(name).add(payload["value"])
            elif kind == "gauge":
                self.gauge(name).set(payload["value"])
            elif kind == "histogram":
                self.histogram(name, payload.get("maxlen")).extend(
                    payload["samples"]
                )
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def merge_snapshots(
    *snaps: Mapping[str, Mapping],
) -> dict[str, dict]:
    """Reduce snapshots left to right into one (order matters for
    histograms/gauges; counters commute)."""
    registry = MetricsRegistry()
    for snap in snaps:
        registry.merge_snapshot(snap)
    return registry.snapshot()


#: The process-wide default registry all instrumented call sites use.
METRICS = MetricsRegistry()
