"""``repro.obs`` — the unified observability layer.

Three dependency-free pillars, threaded through the whole stack:

* **Event tracing** (:mod:`repro.obs.events`, :mod:`repro.obs.trace`) —
  typed events emitted by the simulation engine
  (:class:`~repro.obs.events.CheckpointStart`/``Done``,
  :class:`~repro.obs.events.Failure`, recovery, rollback, censoring,
  segment completion), collected by a :class:`~repro.obs.trace.TraceRecorder`
  (optionally ring-buffered) with JSONL export/import.  The
  :data:`~repro.obs.trace.NULL_RECORDER` fast path keeps the hot loop at
  ~zero cost when tracing is off (guarded by ``benchmarks/test_bench_obs.py``).
* **Request spans** (:mod:`repro.obs.spans`) — trace_id/span_id/parent_id
  span trees with deterministic derived ids, W3C ``traceparent``-style
  propagation, JSONL persistence, and worker-side fragments that merge
  like metrics snapshots.  ``repro obs trace <id>`` renders a request's
  tree with per-phase self-times.
* **Metrics registry** (:mod:`repro.obs.metrics`) — process-local
  counters / gauges / histograms (optionally fixed-bucket, with
  p50/p95/p99 summaries and Prometheus text exposition via
  :mod:`repro.obs.promexport`) with snapshot/merge semantics, so
  per-worker metrics from process-pool replicas reduce into the parent
  deterministically.
* **Solver telemetry + logging** (:mod:`repro.obs.logconf`,
  ``Algorithm1Result.trace``) — per-outer-iteration convergence records
  from Algorithm 1 and structured :mod:`logging` configuration
  (``-v``/``-vv``, ``REPRO_LOG``).

Everything here is stdlib-only (the rest of the repo already depends on
numpy; ``repro.obs`` itself does not import it), so the layer can be
threaded through workers and pickled freely.
"""

from repro.obs.events import (
    EVENT_TYPES,
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    Rollback,
    RunCensored,
    SegmentComplete,
    TraceEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.flightrec import (
    FlightRecorder,
    TraceEntry,
    stitch_spans,
)
from repro.obs.logconf import LOG_ENV_VAR, configure_logging, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.sloengine import (
    GOOD_OUTCOMES,
    SLOEngine,
    SLOSpec,
    merge_slo,
    merge_slo_gauges,
)
from repro.obs.promexport import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_text,
    sanitize_metric_name,
)
from repro.obs.runinfo import (
    OBS_DIR_ENV_VAR,
    last_run_path,
    read_last_run,
    spans_path,
    write_last_run,
)
from repro.obs.spans import (
    NULL_SPAN_RECORDER,
    TRACEPARENT_HEADER,
    ActiveSpan,
    NullSpanRecorder,
    Span,
    SpanContext,
    SpanRecorder,
    build_span_tree,
    current_context,
    current_span,
    format_span_tree,
    get_span_recorder,
    new_trace_id,
    parse_traceparent,
    read_spans_jsonl,
    recording,
    self_times,
    set_span_recorder,
    span,
    span_from_dict,
    span_to_dict,
    span_tree_signature,
    write_spans_jsonl,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    checkpoint_counts,
    failure_counts,
    portions_from_events,
    read_ensemble_jsonl,
    read_jsonl,
    wallclock_from_events,
    write_ensemble_jsonl,
    write_jsonl,
)

__all__ = [
    "EVENT_TYPES",
    "CheckpointDone",
    "CheckpointStart",
    "Failure",
    "RecoveryDone",
    "RecoveryStart",
    "Rollback",
    "RunCensored",
    "SegmentComplete",
    "TraceEvent",
    "event_from_dict",
    "event_to_dict",
    "LOG_ENV_VAR",
    "configure_logging",
    "get_logger",
    "LATENCY_BUCKETS",
    "METRICS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "FlightRecorder",
    "GOOD_OUTCOMES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOEngine",
    "SLOSpec",
    "TraceEntry",
    "merge_slo",
    "merge_slo_gauges",
    "merge_snapshots",
    "stitch_spans",
    "prometheus_text",
    "sanitize_metric_name",
    "OBS_DIR_ENV_VAR",
    "last_run_path",
    "read_last_run",
    "spans_path",
    "write_last_run",
    "NULL_RECORDER",
    "NULL_SPAN_RECORDER",
    "TRACEPARENT_HEADER",
    "ActiveSpan",
    "NullRecorder",
    "NullSpanRecorder",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "TraceRecorder",
    "build_span_tree",
    "current_context",
    "current_span",
    "format_span_tree",
    "get_span_recorder",
    "new_trace_id",
    "parse_traceparent",
    "read_spans_jsonl",
    "recording",
    "self_times",
    "set_span_recorder",
    "span",
    "span_from_dict",
    "span_to_dict",
    "span_tree_signature",
    "write_spans_jsonl",
    "checkpoint_counts",
    "failure_counts",
    "portions_from_events",
    "read_ensemble_jsonl",
    "read_jsonl",
    "wallclock_from_events",
    "write_ensemble_jsonl",
    "write_jsonl",
]
