"""``repro.obs`` — the unified observability layer.

Three dependency-free pillars, threaded through the whole stack:

* **Event tracing** (:mod:`repro.obs.events`, :mod:`repro.obs.trace`) —
  typed events emitted by the simulation engine
  (:class:`~repro.obs.events.CheckpointStart`/``Done``,
  :class:`~repro.obs.events.Failure`, recovery, rollback, censoring,
  segment completion), collected by a :class:`~repro.obs.trace.TraceRecorder`
  (optionally ring-buffered) with JSONL export/import.  The
  :data:`~repro.obs.trace.NULL_RECORDER` fast path keeps the hot loop at
  ~zero cost when tracing is off (guarded by ``benchmarks/test_bench_obs.py``).
* **Metrics registry** (:mod:`repro.obs.metrics`) — process-local
  counters / gauges / histograms with snapshot/merge semantics, so
  per-worker metrics from process-pool replicas reduce into the parent
  deterministically.
* **Solver telemetry + logging** (:mod:`repro.obs.logconf`,
  ``Algorithm1Result.trace``) — per-outer-iteration convergence records
  from Algorithm 1 and structured :mod:`logging` configuration
  (``-v``/``-vv``, ``REPRO_LOG``).

Everything here is stdlib-only (the rest of the repo already depends on
numpy; ``repro.obs`` itself does not import it), so the layer can be
threaded through workers and pickled freely.
"""

from repro.obs.events import (
    EVENT_TYPES,
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    Rollback,
    RunCensored,
    SegmentComplete,
    TraceEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.logconf import LOG_ENV_VAR, configure_logging, get_logger
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.runinfo import (
    OBS_DIR_ENV_VAR,
    last_run_path,
    read_last_run,
    write_last_run,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    checkpoint_counts,
    failure_counts,
    portions_from_events,
    read_ensemble_jsonl,
    read_jsonl,
    wallclock_from_events,
    write_ensemble_jsonl,
    write_jsonl,
)

__all__ = [
    "EVENT_TYPES",
    "CheckpointDone",
    "CheckpointStart",
    "Failure",
    "RecoveryDone",
    "RecoveryStart",
    "Rollback",
    "RunCensored",
    "SegmentComplete",
    "TraceEvent",
    "event_from_dict",
    "event_to_dict",
    "LOG_ENV_VAR",
    "configure_logging",
    "get_logger",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "OBS_DIR_ENV_VAR",
    "last_run_path",
    "read_last_run",
    "write_last_run",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
    "checkpoint_counts",
    "failure_counts",
    "portions_from_events",
    "read_ensemble_jsonl",
    "read_jsonl",
    "wallclock_from_events",
    "write_ensemble_jsonl",
    "write_jsonl",
]
