"""Declarative SLOs: burn-rate health states and error-budget accounting.

The service's ``/healthz`` historically answered "alive?"; this module
makes it answer "healthy?".  An operator declares a service-level
objective as *availability target + latency threshold* — ``99.9:0.25s``
reads "99.9% of requests succeed within 250 ms" — and :class:`SLOEngine`
classifies every request as good or bad against it, then evaluates the
resulting bad-fraction through the SRE multi-window burn-rate method:

* **burn rate** = observed bad fraction / error budget, where the error
  budget is ``1 - target`` (0.1% for a 99.9 objective).  Burn 1.0 means
  "consuming budget exactly as fast as the SLO permits"; burn 14.4 over
  an hour is the canonical "page someone" threshold (it exhausts a
  30-day budget in ~2 days).
* **two windows** must agree before the state degrades: the slow window
  (1 h default) resists flapping on brief blips, the fast window (5 m
  default) makes *recovery* prompt — once the incident ends the fast
  window drains first and the state returns to ``ok`` without waiting an
  hour.  Both windows ride on
  :class:`repro.obs.slo.SlidingWindowRate`, including its honest
  ``saturated`` flag.
* **states**: ``ok`` → ``degraded`` (both windows at/above burn 1.0:
  budget is being consumed faster than sustainable) → ``critical``
  (both at/above 14.4: budget will be gone within days).  A minimum
  event count on the fast window keeps a single failed request on an
  idle service from paging anyone.

Alongside the windowed state the engine keeps lifetime totals — good,
bad, and the fraction of error budget consumed — which the loadgen
report surfaces as its error-budget section and the coordinator merges
fleet-wide (counts are summable; ratios are recomputed from the sums).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.slo import SlidingWindowRate

#: Default burn-rate windows (seconds): SRE-style fast 5 m / slow 1 h.
DEFAULT_FAST_WINDOW_S = 300.0
DEFAULT_SLOW_WINDOW_S = 3600.0
#: Burn thresholds: 1.0 = budget consumed at exactly the sustainable
#: rate; 14.4 = a 30-day budget gone in ~2 days (classic paging burn).
DEFAULT_DEGRADED_BURN = 1.0
DEFAULT_CRITICAL_BURN = 14.4
#: Fast-window observations required before leaving ``ok`` — a lone
#: failure on an idle service is not an incident.
DEFAULT_MIN_EVENTS = 10

#: Health states in severity order; gauge encoding is the list index.
STATES = ("ok", "degraded", "critical")
STATE_SEVERITY = {state: index for index, state in enumerate(STATES)}

#: Request outcomes that count as *good* for availability (latency is
#: judged separately against the spec's threshold).
GOOD_OUTCOMES = frozenset({"ok", "cache_hit", "coalesced"})

#: Gauge names published by :meth:`SLOEngine.publish` whose values are
#: event *counts* — summable across workers.  The remaining
#: ``service.slo.*`` gauges are ratios/encodings and must be recomputed
#: from the summed counts (see :func:`merge_slo_gauges`).
COUNT_GAUGES = (
    "service.slo.fast_total",
    "service.slo.fast_bad",
    "service.slo.slow_total",
    "service.slo.slow_bad",
    "service.slo.good_total",
    "service.slo.bad_total",
)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective: availability target + latency bound.

    ``target`` is the good-request fraction in (0, 1); ``threshold_s``
    is the latency bound a request must meet to count as good.
    """

    target: float
    threshold_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be a fraction in (0, 1), got {self.target}"
            )
        if self.threshold_s <= 0:
            raise ValueError(
                f"SLO latency threshold must be positive, got {self.threshold_s}"
            )

    @property
    def error_budget(self) -> float:
        """Tolerated bad fraction: ``1 - target``."""
        return 1.0 - self.target

    @classmethod
    def parse(cls, text: str) -> "SLOSpec":
        """Parse ``"99.9:0.25s"`` (percent availability : latency).

        The latency part accepts an ``s`` or ``ms`` suffix (bare numbers
        mean seconds): ``99.9:250ms`` == ``99.9:0.25s`` == ``99.9:0.25``.
        """
        head, sep, tail = text.strip().partition(":")
        if not sep or not head or not tail:
            raise ValueError(
                f"SLO spec must look like '99.9:0.25s', got {text!r}"
            )
        try:
            percent = float(head)
        except ValueError:
            raise ValueError(f"bad availability percent in SLO spec {text!r}")
        tail = tail.strip()
        scale = 1.0
        if tail.endswith("ms"):
            tail, scale = tail[:-2], 1e-3
        elif tail.endswith("s"):
            tail = tail[:-1]
        try:
            threshold = float(tail) * scale
        except ValueError:
            raise ValueError(f"bad latency threshold in SLO spec {text!r}")
        if not 0.0 < percent < 100.0:
            raise ValueError(
                f"availability percent must be in (0, 100), got {percent}"
            )
        return cls(target=percent / 100.0, threshold_s=threshold)

    def describe(self) -> str:
        """Canonical round-trippable rendering, e.g. ``'99.9:0.25s'``."""
        return f"{self.target * 100.0:g}:{self.threshold_s:g}s"


class _BurnWindow:
    """Total/bad event counts over one trailing window."""

    def __init__(self, seconds: float, *, max_events: int):
        self.seconds = float(seconds)
        self.total = SlidingWindowRate(seconds, max_events=max_events)
        self.bad = SlidingWindowRate(seconds, max_events=max_events)

    def record(self, *, good: bool, now: float) -> None:
        self.total.record(now)
        if not good:
            self.bad.record(now)

    def snapshot(self, now: float) -> dict:
        total = self.total.count(now)
        bad = self.bad.count(now)
        return {
            "seconds": self.seconds,
            "total": total,
            "bad": bad,
            "bad_fraction": (bad / total) if total else 0.0,
            "saturated": self.total.saturated(now) or self.bad.saturated(now),
        }


class SLOEngine:
    """Classifies requests against an :class:`SLOSpec` and evaluates
    multi-window burn rates into an ``ok``/``degraded``/``critical``
    health state plus lifetime error-budget totals.

    Thread-safe.  ``fast_window_s`` must be shorter than
    ``slow_window_s`` (the asymmetry is what makes recovery faster than
    escalation).
    """

    def __init__(
        self,
        spec: SLOSpec,
        *,
        fast_window_s: float = DEFAULT_FAST_WINDOW_S,
        slow_window_s: float = DEFAULT_SLOW_WINDOW_S,
        degraded_burn: float = DEFAULT_DEGRADED_BURN,
        critical_burn: float = DEFAULT_CRITICAL_BURN,
        min_events: int = DEFAULT_MIN_EVENTS,
        max_events: int = 4096,
    ):
        if fast_window_s >= slow_window_s:
            raise ValueError(
                f"fast window ({fast_window_s}s) must be shorter than the "
                f"slow window ({slow_window_s}s)"
            )
        if degraded_burn > critical_burn:
            raise ValueError(
                f"degraded burn ({degraded_burn}) must not exceed critical "
                f"burn ({critical_burn})"
            )
        self.spec = spec
        self.degraded_burn = float(degraded_burn)
        self.critical_burn = float(critical_burn)
        self.min_events = int(min_events)
        self.fast = _BurnWindow(fast_window_s, max_events=max_events)
        self.slow = _BurnWindow(slow_window_s, max_events=max_events)
        self._good_total = 0
        self._bad_total = 0
        self._lock = threading.Lock()

    # -------------------------------------------------------------- recording

    def classify(self, *, outcome: str, elapsed_s: float) -> bool:
        """Whether one request is *good* under the spec."""
        return outcome in GOOD_OUTCOMES and elapsed_s <= self.spec.threshold_s

    def record(self, *, good: bool, now: float | None = None) -> None:
        """Account one classified request."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            if good:
                self._good_total += 1
            else:
                self._bad_total += 1
        self.fast.record(good=good, now=stamp)
        self.slow.record(good=good, now=stamp)

    # ------------------------------------------------------------- evaluation

    def evaluate(self, now: float | None = None) -> dict:
        """The full SLO view: spec, per-window burns, state, budget.

        This is the ``slo`` section of the worker's ``/healthz`` payload;
        :func:`merge_slo` reduces a list of them into the fleet view.
        """
        stamp = time.monotonic() if now is None else now
        fast = self.fast.snapshot(stamp)
        slow = self.slow.snapshot(stamp)
        budget = self.spec.error_budget
        for window in (fast, slow):
            window["burn_rate"] = round(window.pop("bad_fraction") / budget, 4)
        state = _classify_state(
            fast_burn=fast["burn_rate"],
            slow_burn=slow["burn_rate"],
            fast_total=fast["total"],
            degraded_burn=self.degraded_burn,
            critical_burn=self.critical_burn,
            min_events=self.min_events,
        )
        with self._lock:
            good_total, bad_total = self._good_total, self._bad_total
        lifetime = good_total + bad_total
        bad_fraction = (bad_total / lifetime) if lifetime else 0.0
        return {
            "spec": self.spec.describe(),
            "target": self.spec.target,
            "threshold_s": self.spec.threshold_s,
            "error_budget": budget,
            "state": state,
            "thresholds": {
                "degraded_burn": self.degraded_burn,
                "critical_burn": self.critical_burn,
                "min_events": self.min_events,
            },
            "windows": {"fast": fast, "slow": slow},
            "budget": {
                "good": good_total,
                "bad": bad_total,
                "total": lifetime,
                "bad_fraction": round(bad_fraction, 6),
                "consumed": round(bad_fraction / budget, 6),
            },
        }

    def state(self, now: float | None = None) -> str:
        """Just the health state string."""
        return self.evaluate(now)["state"]

    def publish(self, registry, now: float | None = None) -> dict:
        """Mirror the evaluation into ``service.slo.*`` gauges.

        Counts and ratios are published separately so the coordinator
        can sum the former and recompute the latter (summing burn rates
        across shards would be meaningless).  Returns the evaluation.
        """
        view = self.evaluate(now)
        fast, slow = view["windows"]["fast"], view["windows"]["slow"]
        gauge = registry.gauge
        gauge("service.slo.state").set(float(STATE_SEVERITY[view["state"]]))
        gauge("service.slo.error_budget").set(view["error_budget"])
        gauge("service.slo.fast_burn_rate").set(fast["burn_rate"])
        gauge("service.slo.slow_burn_rate").set(slow["burn_rate"])
        gauge("service.slo.fast_total").set(float(fast["total"]))
        gauge("service.slo.fast_bad").set(float(fast["bad"]))
        gauge("service.slo.slow_total").set(float(slow["total"]))
        gauge("service.slo.slow_bad").set(float(slow["bad"]))
        gauge("service.slo.good_total").set(float(view["budget"]["good"]))
        gauge("service.slo.bad_total").set(float(view["budget"]["bad"]))
        gauge("service.slo.budget_consumed").set(view["budget"]["consumed"])
        return view


def _classify_state(
    *,
    fast_burn: float,
    slow_burn: float,
    fast_total: int,
    degraded_burn: float,
    critical_burn: float,
    min_events: int,
) -> str:
    if fast_total < min_events:
        return "ok"
    if fast_burn >= critical_burn and slow_burn >= critical_burn:
        return "critical"
    if fast_burn >= degraded_burn and slow_burn >= degraded_burn:
        return "degraded"
    return "ok"


def merge_slo(sections: list[dict]) -> dict | None:
    """Reduce per-worker ``/healthz`` ``slo`` sections into the fleet view.

    Window and lifetime counts sum; burn rates and budget consumption are
    recomputed from the sums (every worker shares the spec, so the first
    section's spec/thresholds carry over).  Saturation is fleet-wide OR.
    """
    sections = [s for s in sections if s]
    if not sections:
        return None
    first = sections[0]
    budget = float(first["error_budget"])
    thresholds = dict(first["thresholds"])
    windows: dict[str, dict] = {}
    for key in ("fast", "slow"):
        total = sum(int(s["windows"][key]["total"]) for s in sections)
        bad = sum(int(s["windows"][key]["bad"]) for s in sections)
        windows[key] = {
            "seconds": first["windows"][key]["seconds"],
            "total": total,
            "bad": bad,
            "burn_rate": round((bad / total / budget) if total else 0.0, 4),
            "saturated": any(s["windows"][key]["saturated"] for s in sections),
        }
    good = sum(int(s["budget"]["good"]) for s in sections)
    bad = sum(int(s["budget"]["bad"]) for s in sections)
    lifetime = good + bad
    bad_fraction = (bad / lifetime) if lifetime else 0.0
    state = _classify_state(
        fast_burn=windows["fast"]["burn_rate"],
        slow_burn=windows["slow"]["burn_rate"],
        fast_total=windows["fast"]["total"],
        degraded_burn=float(thresholds["degraded_burn"]),
        critical_burn=float(thresholds["critical_burn"]),
        min_events=int(thresholds["min_events"]),
    )
    return {
        "spec": first["spec"],
        "target": first["target"],
        "threshold_s": first["threshold_s"],
        "error_budget": budget,
        "state": state,
        "thresholds": thresholds,
        "windows": windows,
        "budget": {
            "good": good,
            "bad": bad,
            "total": lifetime,
            "bad_fraction": round(bad_fraction, 6),
            "consumed": round(bad_fraction / budget, 6),
        },
        "workers": len(sections),
    }


def merge_slo_gauges(worker_gauges: list[dict]) -> dict[str, float]:
    """Fleet reduction of per-worker ``service.slo.*`` gauge values.

    Used by the coordinator's merged ``/metrics.json``: plain summing is
    correct only for the count gauges; ratios and the state encoding are
    recomputed (burns from summed counts, state as the max severity any
    worker reports — the full threshold evaluation lives in ``/healthz``).
    """
    present = [g for g in worker_gauges if g]
    if not present:
        return {}
    out: dict[str, float] = {}
    for name in COUNT_GAUGES:
        values = [g[name] for g in present if name in g]
        if values:
            out[name] = float(sum(values))
    budgets = [g["service.slo.error_budget"] for g in present
               if "service.slo.error_budget" in g]
    if budgets:
        budget = float(budgets[0])
        out["service.slo.error_budget"] = budget
        for scope in ("fast", "slow"):
            total = out.get(f"service.slo.{scope}_total", 0.0)
            bad = out.get(f"service.slo.{scope}_bad", 0.0)
            out[f"service.slo.{scope}_burn_rate"] = round(
                (bad / total / budget) if total else 0.0, 4
            )
        lifetime = out.get("service.slo.good_total", 0.0) + out.get(
            "service.slo.bad_total", 0.0
        )
        bad_fraction = (
            out.get("service.slo.bad_total", 0.0) / lifetime if lifetime else 0.0
        )
        out["service.slo.budget_consumed"] = round(bad_fraction / budget, 6)
    states = [g["service.slo.state"] for g in present
              if "service.slo.state" in g]
    if states:
        out["service.slo.state"] = float(max(states))
    return out
