"""Simulation configuration: one concrete run setup.

A :class:`SimulationConfig` is fully resolved — the scale has been fixed,
so speedup and cost models have collapsed to scalars: the parallel
productive time ``P = T_e / g(N)``, per-level checkpoint/recovery costs
``C_i(N)``/``R_i(N)``, per-level failure rates ``lambda_i(N)``, interval
counts ``x_i``, allocation period ``A``, and the jitter ratio.
:func:`repro.sim.runner.config_from_solution` builds one from a
:class:`~repro.core.notation.ModelParameters` + Solution pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import METRICS

#: Per-level cost tuples resolved to read-only float arrays, shared across
#: the ~100 replicas of an ensemble (every replica of one config asks for
#: the identical array).  Hits land in ``sim.costarray.cache_hits``.
_COST_ARRAY_CACHE: dict[tuple[float, ...], np.ndarray] = {}
_COST_ARRAY_CACHE_MAX = 1024


def _cost_array(values: tuple[float, ...]) -> np.ndarray:
    cached = _COST_ARRAY_CACHE.get(values)
    if cached is not None:
        METRICS.counter("sim.costarray.cache_hits").inc()
        return cached
    array = np.asarray(values, dtype=float)
    array.setflags(write=False)
    if len(_COST_ARRAY_CACHE) >= _COST_ARRAY_CACHE_MAX:
        _COST_ARRAY_CACHE.clear()
    _COST_ARRAY_CACHE[values] = array
    return array


@dataclass(frozen=True)
class SimulationConfig:
    """Inputs for one simulated execution.

    Parameters
    ----------
    productive_seconds:
        ``P`` — failure-free parallel productive time.
    intervals:
        ``(x_1, ..., x_L)`` — interval counts per level; level ``i`` takes
        ``x_i - 1`` checkpoints at progress marks ``k * P / x_i``.
    checkpoint_costs / recovery_costs:
        ``C_i(N)`` / ``R_i(N)`` in seconds at the chosen scale.
    failure_rates:
        ``lambda_i(N)`` in events/second of wall-clock time.
    allocation_period:
        ``A`` — constant reallocation delay charged per failure.
    jitter:
        Relative half-width of the uniform multiplicative jitter applied to
        every checkpoint/recovery cost instance (paper: "random error ratio
        up to 30%", i.e. 0.3).
    max_wallclock:
        Safety cap; runs exceeding it are reported censored (``completed =
        False``) rather than looping forever — the classic-Young baseline
        under harsh settings genuinely needs this.
    """

    productive_seconds: float
    intervals: tuple[int, ...]
    checkpoint_costs: tuple[float, ...]
    recovery_costs: tuple[float, ...]
    failure_rates: tuple[float, ...]
    allocation_period: float = 60.0
    jitter: float = 0.3
    max_wallclock: float = 86_400.0 * 365.0 * 20.0

    def __post_init__(self):
        if not self.productive_seconds > 0:
            raise ValueError(
                f"productive_seconds must be positive, got {self.productive_seconds}"
            )
        levels = len(self.intervals)
        if levels == 0:
            raise ValueError("at least one checkpoint level is required")
        for name in ("checkpoint_costs", "recovery_costs", "failure_rates"):
            value = getattr(self, name)
            if len(value) != levels:
                raise ValueError(
                    f"{name} has {len(value)} entries for {levels} levels"
                )
        if any(x < 1 for x in self.intervals):
            raise ValueError(f"interval counts must be >= 1, got {self.intervals}")
        if any(c < 0 for c in self.checkpoint_costs):
            raise ValueError(f"checkpoint costs must be >= 0: {self.checkpoint_costs}")
        if any(r < 0 for r in self.recovery_costs):
            raise ValueError(f"recovery costs must be >= 0: {self.recovery_costs}")
        if any(lam < 0 for lam in self.failure_rates):
            raise ValueError(f"failure rates must be >= 0: {self.failure_rates}")
        if self.allocation_period < 0:
            raise ValueError(
                f"allocation_period must be >= 0, got {self.allocation_period}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if not self.max_wallclock > 0:
            raise ValueError(
                f"max_wallclock must be positive, got {self.max_wallclock}"
            )

    @property
    def num_levels(self) -> int:
        """``L`` — checkpoint levels in this run."""
        return len(self.intervals)

    def checkpoint_cost_array(self) -> np.ndarray:
        """Per-level checkpoint costs as a (cached, read-only) float array."""
        return _cost_array(tuple(float(c) for c in self.checkpoint_costs))

    def recovery_cost_array(self) -> np.ndarray:
        """Per-level recovery costs as a (cached, read-only) float array."""
        return _cost_array(tuple(float(r) for r in self.recovery_costs))
