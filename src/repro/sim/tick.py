"""Literal tick-driven simulator (the paper's stated mechanism).

"Each test is driven by ticks (one tick is equal to one second in the
simulation)" — this engine advances a discrete clock in ``dt`` steps and
walks the same state machine as :mod:`repro.sim.engine` (work / checkpoint
/ recovery modes, per-level rollback, allocation delay, cost jitter).  It
is O(wall-clock / dt) and therefore only usable on small configurations;
its purpose is the equivalence ablation: with a scripted failure trace and
zero jitter, its wall-clock must agree with the event-driven engine to
within tick-quantization error, validating the fast engine's semantics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.config import SimulationConfig
from repro.sim.failure_injection import FailureInjector, ScriptedFailures
from repro.sim.metrics import SimResult
from repro.sim.schedule import CheckpointSchedule
from repro.util.rng import SeedLike, as_generator


def simulate_ticks(
    config: SimulationConfig,
    seed: SeedLike = None,
    *,
    dt: float = 1.0,
    injector=None,
) -> SimResult:
    """Tick-driven simulation of one execution.

    Parameters mirror :func:`repro.sim.engine.simulate`; ``dt`` is the tick
    length in seconds (1.0 matches the paper).  Work, checkpoints and
    recoveries progress by ``dt`` per tick; failures are applied at the
    first tick boundary at or after their arrival instant.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    schedule = CheckpointSchedule.build(config.productive_seconds, config.intervals)
    rng = as_generator(seed)
    jitter_seed, failure_seed = rng.integers(0, 2**63 - 1, size=2)
    jitter_rng = as_generator(int(jitter_seed))
    if injector is None:
        injector = FailureInjector(config.failure_rates, seed=int(failure_seed))

    def draw_jitter() -> float:
        if config.jitter == 0.0:
            return 1.0
        return 1.0 + float(jitter_rng.uniform(-config.jitter, config.jitter))

    costs = config.checkpoint_cost_array()
    recoveries = config.recovery_cost_array()
    num_levels = config.num_levels

    T = 0.0
    p = 0.0
    high_water = 0.0
    latest = np.zeros(num_levels)
    portions = {"productive": 0.0, "checkpoint": 0.0, "restart": 0.0, "rollback": 0.0}
    failures = np.zeros(num_levels, dtype=np.int64)
    checkpoints = np.zeros(num_levels, dtype=np.int64)

    # mode: ("work",) | ("checkpoint", mark_index, remaining) |
    #       ("recovery", level, remaining)
    mode: tuple = ("work",)
    next_mark = schedule.marks_after(p)
    next_failure_t, next_failure_level = injector.peek()

    def account_work(p_from: float, p_to: float) -> None:
        nonlocal high_water
        if p_to <= p_from:
            return
        rework = max(0.0, min(p_to, max(p_from, high_water)) - p_from)
        portions["rollback"] += rework
        portions["productive"] += (p_to - p_from) - rework
        high_water = max(high_water, p_to)

    def apply_failure(level: int) -> None:
        nonlocal p, next_mark, mode
        failures[level - 1] += 1
        latest[: level - 1] = 0.0
        surviving = latest[level - 1 :]
        p = float(surviving.max()) if surviving.size else 0.0
        next_mark = schedule.marks_after(p)
        mode = ("recovery", level, config.allocation_period + recoveries[level - 1] * draw_jitter())

    while p < config.productive_seconds:
        if T >= config.max_wallclock:
            return SimResult(
                wallclock=T,
                portions=portions,
                failures_per_level=tuple(int(f) for f in failures),
                checkpoints_per_level=tuple(int(c) for c in checkpoints),
                completed=False,
            )
        # Failures land at tick boundaries (the first tick >= arrival).
        if next_failure_t <= T:
            injector.pop()
            apply_failure(next_failure_level)
            next_failure_t, next_failure_level = injector.peek()
            continue

        if mode[0] == "recovery":
            _, level, remaining = mode
            step = min(dt, remaining)
            portions["restart"] += step
            T += step
            remaining -= step
            mode = ("work",) if remaining <= 1e-12 else ("recovery", level, remaining)
            continue

        if mode[0] == "checkpoint":
            _, mark_idx, remaining = mode
            step = min(dt, remaining)
            portions["checkpoint"] += step
            T += step
            remaining -= step
            if remaining <= 1e-12:
                lvl = int(schedule.level[mark_idx])
                checkpoints[lvl - 1] += 1
                latest[lvl - 1] = max(latest[lvl - 1], float(schedule.progress[mark_idx]))
                next_mark = mark_idx + 1
                mode = ("work",)
            else:
                mode = ("checkpoint", mark_idx, remaining)
            continue

        # Work mode: advance toward the next mark or completion.
        target = (
            float(schedule.progress[next_mark])
            if next_mark < schedule.num_marks
            else config.productive_seconds
        )
        step = min(dt, target - p)
        if step > 0:
            account_work(p, p + step)
            p += step
            T += step
        if p >= target - 1e-12 and next_mark < schedule.num_marks:
            mode = ("checkpoint", next_mark, costs[schedule.level[next_mark] - 1] * draw_jitter())

    return SimResult(
        wallclock=T,
        portions=portions,
        failures_per_level=tuple(int(f) for f in failures),
        checkpoints_per_level=tuple(int(c) for c in checkpoints),
        completed=True,
    )
