"""Checkpoint schedule: the progress marks of all levels, merged and sorted.

Level ``i`` with ``x_i`` intervals checkpoints at productive-progress marks
``k * P / x_i`` for ``k = 1 .. x_i - 1`` (equidistant, matching the
``C_i (x_i - 1)`` scheduled-checkpoint count of Formula 21 — no checkpoint
at completion).  When marks of several levels coincide, the lower level is
taken first (cost order is unaffected; the ordering only matters for
rollback bookkeeping and is fixed for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import METRICS

#: Built schedules by ``(productive_seconds, intervals)``.  One ensemble
#: replays one config across ~100 replicas, so every replica after the
#: first reuses the same immutable instance instead of re-sorting the
#: merged marks.  Hits are counted in the process-wide metrics registry
#: under ``sim.schedule.cache_hits``.
_BUILD_CACHE: dict[tuple[float, tuple[int, ...]], "CheckpointSchedule"] = {}
_BUILD_CACHE_MAX = 512


@dataclass(frozen=True)
class CheckpointSchedule:
    """Sorted merged checkpoint marks.

    Attributes
    ----------
    progress:
        (M,) float array — productive-progress position of each mark,
        strictly increasing within a level, globally sorted.
    level:
        (M,) int array — 1-based checkpoint level of each mark.
    productive_seconds:
        ``P``, the total productive span the marks partition.
    """

    progress: np.ndarray
    level: np.ndarray
    productive_seconds: float

    @classmethod
    def build(
        cls, productive_seconds: float, intervals: tuple[int, ...]
    ) -> "CheckpointSchedule":
        """Construct (or fetch the cached) merged schedule.

        Instances are shared across replicas of one configuration — their
        arrays are marked read-only, so accidental in-place edits raise
        instead of corrupting sibling runs.
        """
        key = (float(productive_seconds), tuple(int(x) for x in intervals))
        cached = _BUILD_CACHE.get(key)
        if cached is not None:
            METRICS.counter("sim.schedule.cache_hits").inc()
            return cached
        schedule = cls._build(productive_seconds, key[1])
        if len(_BUILD_CACHE) >= _BUILD_CACHE_MAX:
            _BUILD_CACHE.clear()
        _BUILD_CACHE[key] = schedule
        return schedule

    @classmethod
    def _build(
        cls, productive_seconds: float, intervals: tuple[int, ...]
    ) -> "CheckpointSchedule":
        if not productive_seconds > 0:
            raise ValueError(
                f"productive_seconds must be positive, got {productive_seconds}"
            )
        marks: list[np.ndarray] = []
        levels: list[np.ndarray] = []
        for level_idx, x in enumerate(intervals, start=1):
            if x < 1:
                raise ValueError(f"interval count must be >= 1, got {x}")
            if x == 1:
                continue  # one interval = zero scheduled checkpoints
            positions = productive_seconds * np.arange(1, x) / x
            marks.append(positions)
            levels.append(np.full(x - 1, level_idx, dtype=np.int64))
        if marks:
            progress = np.concatenate(marks)
            level = np.concatenate(levels)
            # stable sort by (progress, level): coincident marks keep
            # ascending level order.
            order = np.lexsort((level, progress))
            progress = progress[order]
            level = level[order]
        else:
            progress = np.empty(0)
            level = np.empty(0, dtype=np.int64)
        progress.setflags(write=False)
        level.setflags(write=False)
        return cls(
            progress=progress, level=level, productive_seconds=productive_seconds
        )

    @property
    def num_marks(self) -> int:
        """Total scheduled checkpoints across levels (= sum_i (x_i - 1))."""
        return int(self.progress.size)

    def marks_after(self, progress: float) -> int:
        """Index of the first mark strictly beyond ``progress``."""
        return int(np.searchsorted(self.progress, progress, side="right"))

    def counts_per_level(self, num_levels: int) -> np.ndarray:
        """Scheduled checkpoint counts per level (sanity checks/tests)."""
        counts = np.zeros(num_levels, dtype=np.int64)
        for lvl in range(1, num_levels + 1):
            counts[lvl - 1] = int(np.sum(self.level == lvl))
        return counts
