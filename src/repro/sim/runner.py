"""Bridge from the analytic model to the simulator.

:func:`config_from_solution` resolves a
(:class:`~repro.core.notation.ModelParameters`,
:class:`~repro.core.notation.Solution`) pair into a concrete
:class:`~repro.sim.config.SimulationConfig` — evaluating the speedup and
cost models at the solution's (rounded) scale — and
:func:`simulate_solution` runs the ensemble.  This is the exact pipeline of
the paper's evaluation: each strategy's optimizer output is replayed under
the randomized-failure simulator.
"""

from __future__ import annotations

from repro.core.notation import ModelParameters, Solution
from repro.failures.distributions import ArrivalProcess
from repro.parallel.executor import Executor
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble
from repro.sim.metrics import EnsembleResult
from repro.util.rng import SeedLike


def config_from_solution(
    params: ModelParameters,
    solution: Solution,
    *,
    jitter: float = 0.3,
    max_wallclock: float | None = None,
) -> SimulationConfig:
    """Resolve an analytic solution into a concrete simulator config."""
    if solution.num_levels != params.num_levels:
        raise ValueError(
            f"solution has {solution.num_levels} levels, parameters "
            f"{params.num_levels}"
        )
    n = solution.scale_rounded()
    kwargs = {}
    if max_wallclock is not None:
        kwargs["max_wallclock"] = max_wallclock
    return SimulationConfig(
        productive_seconds=params.productive_time(n),
        intervals=solution.intervals_rounded(),
        checkpoint_costs=tuple(float(c) for c in params.costs.checkpoint_costs(n)),
        recovery_costs=tuple(float(r) for r in params.costs.recovery_costs(n)),
        failure_rates=tuple(float(r) for r in params.rates.rates_per_second(n)),
        allocation_period=params.allocation_period,
        jitter=jitter,
        **kwargs,
    )


def simulate_solution(
    params: ModelParameters,
    solution: Solution,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    jitter: float = 0.3,
    max_wallclock: float | None = None,
    process: ArrivalProcess | None = None,
    jobs: int | None = None,
    executor: Executor | None = None,
    trace: bool = False,
    trace_maxlen: int | None = None,
    batch: bool | None = None,
) -> EnsembleResult:
    """Replay an optimizer solution under the randomized-failure simulator.

    ``jobs`` / ``executor`` fan the replicas out through the
    :mod:`repro.parallel` layer (seed-stable: results are bit-identical
    to a serial run for the same root seed).  ``trace`` switches on
    per-replica event recording (``EnsembleResult.traces``); the runs
    themselves are unchanged.  ``batch`` selects the batched replica
    engine (default: ``REPRO_BATCH``, on) — results are bit-identical
    either way.
    """
    config = config_from_solution(
        params, solution, jitter=jitter, max_wallclock=max_wallclock
    )
    return run_ensemble(
        config, n_runs=n_runs, seed=seed, process=process, jobs=jobs,
        executor=executor, trace=trace, trace_maxlen=trace_maxlen,
        batch=batch,
    )
