"""Exascale multilevel-checkpoint simulator (paper Section IV-A).

The paper's evaluation drives a tick-granularity (1 s) simulator that
replays an MPI application's execution under the multilevel checkpoint
model: periodic checkpoints per level, per-level Poisson failures striking
at any instant (including during checkpoint and recovery operations),
rollback to the cheapest surviving checkpoint, a constant allocation period
``A`` per hardware failure, and up to +/-30 % jitter on every
checkpoint/recovery cost.

This implementation is *event-driven with closed-form fast-forward*: between
consecutive failures the schedule is deterministic, so the engine advances
through the pre-computed checkpoint marks with vectorized NumPy cumulative
sums instead of 1 s ticks — identical semantics (verified against the
literal tick engine in :mod:`repro.sim.tick` by an equivalence test), at a
cost that makes 10^6-core, multi-month executions simulable hundreds of
times per benchmark run.
"""

from repro.sim.schedule import CheckpointSchedule
from repro.sim.failure_injection import FailureInjector
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimResult, EnsembleResult
from repro.sim.engine import simulate
from repro.sim.batch import simulate_batch
from repro.sim.ensemble import run_ensemble
from repro.sim.runner import config_from_solution, simulate_solution
from repro.sim.tick import simulate_ticks

__all__ = [
    "CheckpointSchedule",
    "FailureInjector",
    "SimulationConfig",
    "SimResult",
    "EnsembleResult",
    "simulate",
    "simulate_batch",
    "run_ensemble",
    "config_from_solution",
    "simulate_solution",
    "simulate_ticks",
]
