"""On-demand failure injection for the simulator.

Failures strike in *wall-clock* time ("each failure may occur randomly at
any time in the whole wall-clock period, including productive time and
checkpoint/recovery period"), per level, as independent renewal processes.
The injector keeps one pending arrival per level and draws the next gap
lazily, so arbitrarily long (or censored) runs never need a pre-sized
trace.
"""

from __future__ import annotations

import math

import numpy as np

from repro.failures.distributions import ArrivalProcess, ExponentialArrivals
from repro.util.rng import SeedLike, spawn_generators


class FailureInjector:
    """Per-level renewal failure streams with lazy draws.

    Parameters
    ----------
    rates_per_second:
        ``lambda_i`` per level (events / wall-clock second).
    seed:
        Root seed; each level gets an independent child stream.
    process:
        Inter-arrival process (default exponential, the paper's model).
    """

    def __init__(
        self,
        rates_per_second,
        seed: SeedLike = None,
        process: ArrivalProcess | None = None,
    ):
        self.rates = np.asarray(rates_per_second, dtype=float)
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ValueError("rates_per_second must be a non-empty 1-D array")
        if np.any(self.rates < 0):
            raise ValueError(f"rates must be non-negative, got {self.rates}")
        self.process = process if process is not None else ExponentialArrivals()
        self._rngs = spawn_generators(seed, self.rates.size)
        self._next = np.full(self.rates.size, math.inf)
        for i in range(self.rates.size):
            self._advance(i, 0.0)

    def _advance(self, level_idx: int, from_time: float) -> None:
        rate = self.rates[level_idx]
        if rate <= 0:
            self._next[level_idx] = math.inf
            return
        gap = float(
            self.process.sample_interarrivals(rate, 1, self._rngs[level_idx])[0]
        )
        self._next[level_idx] = from_time + gap

    def peek(self) -> tuple[float, int]:
        """``(time, level)`` of the next pending failure (level 1-based).

        Time is ``inf`` when all rates are zero.
        """
        idx = int(np.argmin(self._next))
        return float(self._next[idx]), idx + 1

    def pop(self) -> tuple[float, int]:
        """Consume and return the next failure, scheduling its successor."""
        time, level = self.peek()
        if not math.isfinite(time):
            raise RuntimeError("no pending failures: all rates are zero")
        self._advance(level - 1, time)
        return time, level


class ScriptedFailures:
    """A fixed, pre-scripted failure sequence (injector protocol).

    Used by the engine-equivalence ablation: feeding the identical failure
    trace to the event-driven and the literal-tick engines isolates the
    engines' numerics from the randomness of arrival draws.
    """

    def __init__(self, events):
        """``events`` is an iterable of ``(time, level)`` pairs or
        :class:`repro.failures.traces.FailureEventRecord` objects,
        chronological."""
        self._events: list[tuple[float, int]] = []
        previous = -math.inf
        for event in events:
            time, level = (
                (event.time, event.level)
                if hasattr(event, "time")
                else (float(event[0]), int(event[1]))
            )
            if time < previous:
                raise ValueError("scripted failures must be chronological")
            if level < 1:
                raise ValueError(f"level must be >= 1, got {level}")
            previous = time
            self._events.append((float(time), int(level)))
        self._index = 0

    def peek(self) -> tuple[float, int]:
        """Next scripted failure, or ``(inf, 1)`` when exhausted."""
        if self._index >= len(self._events):
            return math.inf, 1
        return self._events[self._index]

    def pop(self) -> tuple[float, int]:
        """Consume the next scripted failure."""
        if self._index >= len(self._events):
            raise RuntimeError("scripted failure sequence exhausted")
        event = self._events[self._index]
        self._index += 1
        return event
