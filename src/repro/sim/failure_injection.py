"""On-demand failure injection for the simulator.

Failures strike in *wall-clock* time ("each failure may occur randomly at
any time in the whole wall-clock period, including productive time and
checkpoint/recovery period"), per level, as independent renewal processes.
The injector keeps one pending arrival per level and draws the next gap
lazily, so arbitrarily long (or censored) runs never need a pre-sized
trace.
"""

from __future__ import annotations

import math

import numpy as np

from repro.failures.distributions import ArrivalProcess, ExponentialArrivals
from repro.util.rng import SeedLike, spawn_generators


#: Default per-level pre-draw chunk (see :class:`FailureInjector`).
DEFAULT_GAP_BLOCK = 64


class FailureInjector:
    """Per-level renewal failure streams with block-buffered draws.

    Parameters
    ----------
    rates_per_second:
        ``lambda_i`` per level (events / wall-clock second).
    seed:
        Root seed; each level gets an independent child stream.
    process:
        Inter-arrival process (default exponential, the paper's model).
    block:
        Inter-arrival gaps are pre-drawn per level in chunks of this size
        and consumed one at a time, replacing the historical
        ``sample_interarrivals(rate, 1, ...)`` call per event.  Every
        bundled :class:`~repro.failures.distributions.ArrivalProcess`
        fills its output element by element from the level's generator,
        so the consumed gap sequence is bit-identical for any block size
        (regression-tested in ``tests/sim/test_failure_injection.py``);
        a custom process must preserve that property.
    """

    def __init__(
        self,
        rates_per_second,
        seed: SeedLike = None,
        process: ArrivalProcess | None = None,
        block: int = DEFAULT_GAP_BLOCK,
    ):
        self.rates = np.asarray(rates_per_second, dtype=float)
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ValueError("rates_per_second must be a non-empty 1-D array")
        if np.any(self.rates < 0):
            raise ValueError(f"rates must be non-negative, got {self.rates}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.process = process if process is not None else ExponentialArrivals()
        self._block = int(block)
        self._rngs = spawn_generators(seed, self.rates.size)
        self._gaps: list[np.ndarray] = [
            np.empty(0) for _ in range(self.rates.size)
        ]
        self._cursors = [0] * self.rates.size
        self._next = np.full(self.rates.size, math.inf)
        for i in range(self.rates.size):
            self._advance(i, 0.0)

    def _advance(self, level_idx: int, from_time: float) -> None:
        rate = self.rates[level_idx]
        if rate <= 0:
            self._next[level_idx] = math.inf
            return
        cursor = self._cursors[level_idx]
        gaps = self._gaps[level_idx]
        if cursor >= gaps.size:
            gaps = np.asarray(
                self.process.sample_interarrivals(
                    rate, self._block, self._rngs[level_idx]
                ),
                dtype=float,
            )
            self._gaps[level_idx] = gaps
            cursor = 0
        self._cursors[level_idx] = cursor + 1
        self._next[level_idx] = from_time + float(gaps[cursor])

    def peek(self) -> tuple[float, int]:
        """``(time, level)`` of the next pending failure (level 1-based).

        Time is ``inf`` when all rates are zero.
        """
        idx = int(np.argmin(self._next))
        return float(self._next[idx]), idx + 1

    def pop(self) -> tuple[float, int]:
        """Consume and return the next failure, scheduling its successor."""
        time, level = self.peek()
        if not math.isfinite(time):
            raise RuntimeError("no pending failures: all rates are zero")
        self._advance(level - 1, time)
        return time, level


class ScriptedFailures:
    """A fixed, pre-scripted failure sequence (injector protocol).

    Used by the engine-equivalence ablation: feeding the identical failure
    trace to the event-driven and the literal-tick engines isolates the
    engines' numerics from the randomness of arrival draws.
    """

    def __init__(self, events):
        """``events`` is an iterable of ``(time, level)`` pairs or
        :class:`repro.failures.traces.FailureEventRecord` objects,
        chronological."""
        self._events: list[tuple[float, int]] = []
        previous = -math.inf
        for event in events:
            time, level = (
                (event.time, event.level)
                if hasattr(event, "time")
                else (float(event[0]), int(event[1]))
            )
            if time < previous:
                raise ValueError("scripted failures must be chronological")
            if level < 1:
                raise ValueError(f"level must be >= 1, got {level}")
            previous = time
            self._events.append((float(time), int(level)))
        self._index = 0

    def peek(self) -> tuple[float, int]:
        """Next scripted failure, or ``(inf, 1)`` when exhausted."""
        if self._index >= len(self._events):
            return math.inf, 1
        return self._events[self._index]

    def pop(self) -> tuple[float, int]:
        """Consume the next scripted failure."""
        if self._index >= len(self._events):
            raise RuntimeError("scripted failure sequence exhausted")
        event = self._events[self._index]
        self._index += 1
        return event
