"""Batched replica engine: whole ensembles as struct-of-arrays.

The paper's protocol is "mean values based on 100 runs for each case", so
ensemble throughput — not single-run latency — is the reproduction's hot
path.  :func:`simulate_batch` advances **all replicas of one
configuration together**: per-replica scalars (``T``, ``p``, the
first-time frontier) and per-replica-per-level state (newest valid
checkpoint, failure/checkpoint counts) live in ``(R,)`` / ``(R, L)``
arrays, and every step of the failure loop — segment advancement,
checkpoint commitment, rollback, recovery — is one set of numpy
operations over the active-replica axis instead of ``R`` trips through
the Python interpreter (hpc-parallel guide: vectorize the hot path).

Bit-identity contract
---------------------
``simulate_batch`` returns exactly the :class:`~repro.sim.metrics
.SimResult` values of :func:`repro.sim.engine.simulate` run once per
seed.  Three invariants make that hold:

* **Same streams, same order.**  Each replica keeps its own RNG streams,
  derived exactly as the serial engine derives them (two bounded-integer
  draws from the spawned child, a jitter generator, per-level failure
  generators), and consumes them in the serial order.  Jitter factors
  and failure gaps are pre-drawn in blocks — numpy's distribution fills
  produce values element by element, so a block draw consumes the stream
  identically to repeated scalar draws.
* **Same arithmetic.**  Every floating-point expression mirrors the
  serial engine's op-for-op: per-segment cost prefix sums are row-wise
  ``np.cumsum`` (sequential, like the serial 1-D cumsum), interruption
  points are counts of ``complete_t <= budget`` (what ``searchsorted``
  returns on the nondecreasing serial array), and checkpoint-commit
  updates are integer adds and pure ``max`` reductions (exact under any
  grouping).
* **Same control flow.**  One batch round performs one iteration of the
  serial failure loop for every active replica — deterministic segment,
  then failure + rollback + (possibly interrupted) recovery — retiring
  replicas as they complete or hit ``max_wallclock``.

The equivalence matrix in ``tests/sim/test_batch_equivalence.py``
asserts the contract across jitter on/off, exponential/Weibull arrivals,
censored runs, zero-rate levels, and ensemble sizes 1 and 100;
``run_ensemble(batch=...)`` additionally falls back to the per-replica
path whenever tracing or a custom injector is requested (event emission
is inherently per-replica).  See ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.failures.distributions import ArrivalProcess, ExponentialArrivals
from repro.sim.config import SimulationConfig
from repro.sim.failure_injection import DEFAULT_GAP_BLOCK
from repro.sim.metrics import SimResult
from repro.sim.schedule import CheckpointSchedule
from repro.util.rng import SeedLike, as_generator, spawn_generators

#: Column indices of the portion accumulators (Fig. 5 decomposition).
_PRODUCTIVE, _CHECKPOINT, _RESTART, _ROLLBACK = range(4)


class _BatchState:
    """Struct-of-arrays state of ``R`` concurrently-simulated replicas."""

    #: Quantile splits of the count-sorted rows per segment round: the
    #: bulk of the rows pad to median-ish widths, only the top decile
    #: pays for the max (mark counts are heavily skewed).
    _BUCKET_QUANTILES = (0.5, 0.75, 0.9)

    def __init__(
        self,
        config: SimulationConfig,
        seeds: Sequence[SeedLike],
        process: ArrivalProcess | None,
        injectors: Sequence | None,
    ):
        self.config = config
        self.schedule = CheckpointSchedule.build(
            config.productive_seconds, config.intervals
        )
        self.costs = config.checkpoint_cost_array()
        self.recoveries = config.recovery_cost_array()
        # Per-mark lookups hoisted out of the segment hot loop: the cost
        # and 0-based level of every mark in schedule order.  The
        # sentinel-extended copies let the padded 2-D kernel gather past
        # the last mark without clamping indices: sentinel progress
        # repeats the final mark (monotone) and sentinel cost is 0
        # (keeps the padded cumsum nondecreasing).
        self.lv0_by_mark = self.schedule.level - 1
        self.cost_by_mark = self.costs[self.lv0_by_mark]
        num_marks = self.schedule.num_marks
        final_progress = self.schedule.progress[-1] if num_marks else 0.0
        self._progress_ext = np.concatenate(
            [self.schedule.progress, np.full(max(1, num_marks), final_progress)]
        )
        self._cost_ext = np.concatenate(
            [self.cost_by_mark, np.zeros(max(1, num_marks))]
        )
        # Commit prefix tables over the mark schedule, one column per
        # level: a committed window is always contiguous ``[i0, e2)``,
        # so the level's committed count is a difference of cumulative
        # counts and its newest committed mark is the last level-``lv``
        # mark strictly before ``e2`` (valid iff it is >= ``i0``).
        L = config.num_levels
        level_matrix = self.lv0_by_mark[:, None] == np.arange(L)[None, :]
        self._cc_by_level = np.zeros((num_marks + 1, L), dtype=np.int64)
        self._cc_by_level[1:] = np.cumsum(level_matrix, axis=0)
        mark_or_minus1 = np.where(
            level_matrix, np.arange(num_marks)[:, None], -1
        )
        self._last_by_level = np.full((num_marks + 1, L), -1, dtype=np.int64)
        np.maximum.accumulate(mark_or_minus1, axis=0, out=self._last_by_level[1:])
        R = len(seeds)
        L = config.num_levels
        self.n = R
        self._num_levels = L
        self.process = process if process is not None else ExponentialArrivals()
        self.scripted = injectors is not None
        # Per-replica RNG derivation, exactly as repro.sim.engine._Run:
        # two bounded integers off the child stream, a jitter generator
        # on the first, and (unless scripted) per-level failure streams
        # spawned from the second — the same child sequence a
        # FailureInjector would spawn.
        self.jitter_rngs: list[np.random.Generator] = []
        failure_seeds: list[int] = []
        for index in range(R):
            rng = as_generator(seeds[index])
            jitter_seed, failure_seed = rng.integers(0, 2**63 - 1, size=2)
            self.jitter_rngs.append(as_generator(int(jitter_seed)))
            failure_seeds.append(int(failure_seed))
        if self.scripted:
            self.injectors = list(injectors)
            # Pending-failure mirror of each injector's peek().
            self.pend_t = np.empty(R)
            self.pend_l = np.empty(R, dtype=np.int64)
            for index, injector in enumerate(self.injectors):
                t_next, level = injector.peek()
                self.pend_t[index] = t_next
                self.pend_l[index] = level
        else:
            # Vectorized injector mirror: next pending arrival per
            # (replica, level), fed by block-pre-drawn inter-arrival
            # gaps (element-sequential fills == one-at-a-time draws).
            self.rates = np.asarray(config.failure_rates, dtype=float)
            self.gap_block = DEFAULT_GAP_BLOCK
            self.fail_rngs = [
                spawn_generators(failure_seed, L)
                for failure_seed in failure_seeds
            ]
            self.gap_buf = np.zeros((R, L, self.gap_block))
            self.gap_cur = np.zeros((R, L), dtype=np.int64)
            self.next_fail = np.full((R, L), np.inf)
            # Flat views (writes through either alias are shared).
            self._gap_flat = self.gap_buf.reshape(-1)
            self._cur_flat = self.gap_cur.reshape(-1)
            self._nf_flat = self.next_fail.reshape(-1)
            for index in range(R):
                for level_idx in range(L):
                    rate = self.rates[level_idx]
                    if rate <= 0:
                        continue
                    gaps = np.asarray(
                        self.process.sample_interarrivals(
                            rate, self.gap_block, self.fail_rngs[index][level_idx]
                        ),
                        dtype=float,
                    )
                    self.gap_buf[index, level_idx] = gaps
                    self.next_fail[index, level_idx] = 0.0 + gaps[0]
                    self.gap_cur[index, level_idx] = 1
        # Jitter factors are consumed from per-replica blocks; one block
        # always covers the largest possible single request (a segment
        # spanning every mark, or one recovery attempt).
        self.jitter = config.jitter
        self.jitter_block = max(16, self.schedule.num_marks + 8)
        if self.jitter > 0.0:
            # Contents are drawn on first use (the cursor starts at the
            # end, so every row's first take triggers a full refill).
            self.jitter_buf = np.empty((R, self.jitter_block))
            # Cursor at the end = "empty": the first request refills.
            self.jitter_cur = np.full(R, self.jitter_block, dtype=np.int64)
            # Flat view shared with jitter_buf: refills show through.
            self._jitter_flat = self.jitter_buf.reshape(-1)
        # Reusable index ramps for the segment kernel (int32: all flat
        # offsets fit comfortably, and the 2-D index math halves).
        self._arange = np.arange(R)
        self._cols = np.arange(self.schedule.num_marks, dtype=np.int32)
        #: Portion columns touched by every segment, in epilogue order.
        self._portion_cols = np.array([_PRODUCTIVE, _ROLLBACK, _CHECKPOINT])
        # Run state (serial _Run attributes, replica-major).
        self.T = np.zeros(R)
        self.p = np.zeros(R)
        self.high_water = np.zeros(R)
        self.latest = np.zeros((R, L))
        self.portions = np.zeros((R, 4))
        # 1-D aliases for the hottest scatter targets (views).
        self._restart = self.portions[:, _RESTART]
        self.failures = np.zeros((R, L), dtype=np.int64)
        self._failures_flat = self.failures.reshape(-1)
        self.checkpoints = np.zeros((R, L), dtype=np.int64)
        self.alive = np.ones(R, dtype=bool)
        self.completed = np.zeros(R, dtype=bool)
        self._level_cols = np.arange(L)

    # -- RNG plumbing -------------------------------------------------------

    def _take_jitter(
        self, rows: np.ndarray, need: np.ndarray | int, pad: int
    ) -> np.ndarray:
        """Per-row start cursors for ``need`` buffered jitter factors.

        Rows whose block cannot satisfy ``pad`` factors (an upper bound
        on ``need``, so padded gathers past a row's own need stay in
        bounds) compact the unconsumed tail to the front and refill the
        rest from their own generator — draws happen in stream order, so
        consumption stays bit-identical to the serial engine's on-demand
        draws no matter when a refill triggers.
        """
        buf, cur, block = self.jitter_buf, self.jitter_cur, self.jitter_block
        start = cur.take(rows)
        needy = start > block - pad
        if needy.any():
            jitter = self.jitter
            for row in rows[needy]:
                consumed = int(cur[row])
                remaining = block - consumed
                if remaining:
                    buf[row, :remaining] = buf[row, consumed:]
                buf[row, remaining:] = 1.0 + self.jitter_rngs[row].uniform(
                    -jitter, jitter, size=consumed
                )
                cur[row] = 0
            start = cur.take(rows)
        cur[rows] = start + need
        return start

    def _peek_failures(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(times, levels)`` of each row's next pending failure."""
        if self.scripted:
            return self.pend_t[rows], self.pend_l[rows]
        pending = self.next_fail[rows]
        level0 = np.argmin(pending, axis=1)
        # min(axis=1) is the value at the argmin — one reduction instead
        # of a ranged fancy gather.
        return pending.min(axis=1), level0 + 1

    # -- failure handling ---------------------------------------------------

    def consume_failures(
        self, rows: np.ndarray, times: np.ndarray, levels: np.ndarray
    ) -> None:
        """Pop each row's pending failure, count it, and roll back.

        ``times``/``levels`` are the rows' current peek — the failure
        being consumed.  Pop (schedule the successor arrival) and apply
        (rollback to the newest surviving checkpoint) always travel
        together, so one call shares the level index math.
        """
        level0 = levels - 1
        if self.scripted:
            pend_t, pend_l = self.pend_t, self.pend_l
            for row in rows:
                injector = self.injectors[row]
                injector.pop()
                t_next, level = injector.peek()
                pend_t[row] = t_next
                pend_l[row] = level
        else:
            # Flat (replica, level) addressing: one index vector drives
            # the cursor read, the gap gather, and both write-backs.
            rl = rows * self._num_levels + level0
            cursors = self._cur_flat.take(rl)
            exhausted = cursors >= self.gap_block
            if exhausted.any():
                for row, level_idx in zip(rows[exhausted], level0[exhausted]):
                    self.gap_buf[row, level_idx] = np.asarray(
                        self.process.sample_interarrivals(
                            self.rates[level_idx],
                            self.gap_block,
                            self.fail_rngs[row][level_idx],
                        ),
                        dtype=float,
                    )
                cursors[exhausted] = 0
            gaps = self._gap_flat.take(rl * self.gap_block + cursors)
            self._cur_flat[rl] = cursors + 1
            self._nf_flat[rl] = times + gaps
            self._failures_flat[rl] += 1
        if self.scripted:
            self.failures[rows, level0] += 1
        destroyed = self._level_cols[None, :] < level0[:, None]
        latest = self.latest[rows]
        self.latest[rows] = np.where(destroyed, 0.0, latest)
        self.p[rows] = np.where(destroyed, -np.inf, latest).max(axis=1)

    def run_recoveries(self, rows: np.ndarray, levels: np.ndarray) -> None:
        """Allocation + recovery for ``rows``, restarting on interruption."""
        config = self.config
        while rows.size:
            if self.jitter > 0.0:
                start = self._take_jitter(rows, 1, 1)
                factors = self.jitter_buf[rows, start]
            else:
                factors = 1.0
            durations = config.allocation_period + (
                self.recoveries[levels - 1] * factors
            )
            t_next, next_levels = self._peek_failures(rows)
            fits = (self.T.take(rows) + durations) <= t_next
            done = rows[fits]
            self._restart[done] += durations[fits]
            self.T[done] += durations[fits]
            interrupted = ~fits
            rows = rows[interrupted]
            if not rows.size:
                return
            # A new failure lands mid-recovery: the spent time is still
            # restart overhead; re-plan at the new failure's level.
            levels = next_levels[interrupted]
            t_next = t_next[interrupted]
            spent = t_next - self.T.take(rows)
            self._restart[rows] += spent
            self.T[rows] = t_next
            self.consume_failures(rows, t_next, levels)

    # -- deterministic segments ---------------------------------------------

    def advance_segments(
        self, rows: np.ndarray, budgets: np.ndarray
    ) -> np.ndarray:
        """One deterministic segment per row, for at most ``budgets`` s.

        Returns the per-row completion mask; ``T``/``p``/portions/commit
        state advance exactly as ``_Run.run_segment`` does per replica.

        Rows are grouped by reachable-mark count before the padded 2-D
        math so each group's width tracks its own maximum — mark counts
        are heavily skewed (one long-budget row can be 5x the mean), and
        padding every row to the global max wastes most of the cells.
        Every operation below is row-independent, so the grouping cannot
        change any replica's arithmetic.
        """
        n = rows.size
        finished = np.zeros(n, dtype=bool)
        if n == 0:
            return finished
        config = self.config
        sched = self.schedule
        p_rows = self.p.take(rows)
        progress = sched.progress
        i0 = np.searchsorted(progress, p_rows, side="right")
        i_hi = np.searchsorted(progress, p_rows + budgets, side="right")
        counts = i_hi - i0
        max_count = int(counts.max())
        # One jitter take for the whole round (cursor bookkeeping is the
        # same whether rows are grouped or not — per-row streams); fold
        # the row offset in so kernels index the flat buffer directly.
        if self.jitter > 0.0 and max_count:
            jit_base = self._take_jitter(rows, counts, max_count)
            jit_base += rows * self.jitter_block
            jit_base = jit_base.astype(np.int32)
        else:
            jit_base = None
        i0_32 = i0.astype(np.int32)
        if n < 32 or max_count == 0:
            order = None
            j, last_cum, cum_jm1, abort_p, start_j = self._segment_kernel(
                budgets, p_rows, i0_32, counts, jit_base
            )
            rows_s, budgets_s, p_s = rows, budgets, p_rows
            i0_s, counts_s, i_hi_s = i0, counts, i_hi
        else:
            order = np.argsort(counts, kind="stable")
            # Quantile splits on the sorted counts (_BUCKET_QUANTILES).
            # The whole epilogue then runs once on the permuted round —
            # per-row values are order-independent.
            bounds = sorted(
                {0, *((n * q).__trunc__() for q in self._BUCKET_QUANTILES), n}
            )
            parts = [
                self._segment_kernel(
                    budgets[sel],
                    p_rows[sel],
                    i0_32[sel],
                    counts[sel],
                    None if jit_base is None else jit_base[sel],
                )
                for sel in (
                    order[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
                )
            ]
            j, last_cum, cum_jm1, abort_p, start_j = (
                np.concatenate(piece) for piece in zip(*parts)
            )
            rows_s, budgets_s, p_s = rows[order], budgets[order], p_rows[order]
            i0_s, counts_s, i_hi_s = i0[order], counts[order], i_hi[order]

        # -- round epilogue: per-row outcome classification (1-D) --------
        last_cum = np.where(counts_s > 0, last_cum, 0.0)
        # A row can only finish when its window reaches the last mark —
        # rare in mid-run rounds, so skip the finished-branch arithmetic
        # entirely when no row qualifies (the values are unchanged:
        # every np.where below degenerates to its else-branch).
        at_end = i_hi_s == sched.num_marks
        any_at_end = bool(at_end.any())
        if any_at_end:
            totals = (config.productive_seconds - p_s) + last_cum
            finished_s = at_end & (totals <= budgets_s)
        else:
            totals = budgets_s
            finished_s = at_end
        # Serial committed_cost == cum[commit_n - 1]: the full window for
        # finished rows, the j interrupted-prefix otherwise.
        committed_cost = np.where(j > 0, cum_jm1, 0.0)
        if any_at_end:
            committed_cost = np.where(finished_s, last_cum, committed_cost)
        aborted = (j < counts_s) & (start_j <= budgets_s)
        if any_at_end:
            aborted &= ~finished_s
        worked = np.minimum(
            p_s + (budgets_s - committed_cost), config.productive_seconds
        )
        p_to = np.where(aborted, abort_p, worked)
        ckpt_cost = np.where(
            aborted, committed_cost + (budgets_s - start_j), committed_cost
        )
        if any_at_end:
            p_to = np.where(finished_s, config.productive_seconds, p_to)
            ckpt_cost = np.where(finished_s, last_cum, ckpt_cost)

        # Portion split (serial _split_work / _charge_segment, rowwise).
        high_water = self.high_water[rows_s]
        rework_end = np.minimum(p_to, np.maximum(p_s, high_water))
        rework = np.maximum(0.0, rework_end - p_s)
        first_time = (p_to - p_s) - rework
        self.high_water[rows_s] = np.maximum(high_water, p_to)
        # One fused scatter for the three touched portion columns (each
        # (row, column) pair is unique — rows appear once per round).
        deltas = np.empty((rows_s.size, 3))
        deltas[:, 0] = first_time
        deltas[:, 1] = rework
        deltas[:, 2] = ckpt_cost
        self.portions[rows_s[:, None], self._portion_cols] += deltas
        self.p[rows_s] = p_to
        self.T[rows_s] += (
            np.where(finished_s, totals, budgets_s) if any_at_end else budgets_s
        )

        # Commit the reached marks.  Each row commits its first commit_n
        # reachable marks — the contiguous window [i0, e2) — so the
        # per-level tallies and newest-checkpoint updates come straight
        # from the prefix tables: committed count = cumulative-count
        # difference (integer, exact), newest mark = last level-lv mark
        # before e2 (the same progress float the serial engine stores;
        # it is the window's final level-lv commit, hence the maximum).
        commit_n = np.where(finished_s, counts_s, j) if any_at_end else j
        e2 = i0_s + commit_n
        last_idx = self._last_by_level[e2]
        # A level's candidate is committed only if it lies in the window;
        # last_idx <= e2 - 1 < i0 whenever commit_n == 0, so empty
        # windows mask themselves out.
        committed = last_idx >= i0_s[:, None]
        np.maximum(last_idx, 0, out=last_idx)
        self.latest[rows_s] = np.where(
            committed, progress.take(last_idx), self.latest[rows_s]
        )
        self.checkpoints[rows_s] += (
            self._cc_by_level[e2] - self._cc_by_level[i0_s]
        )
        if order is None:
            return finished_s
        finished[order] = finished_s
        return finished

    def _segment_kernel(
        self,
        budgets: np.ndarray,
        p_rows: np.ndarray,
        i0: np.ndarray,
        counts: np.ndarray,
        jit_base: np.ndarray | None,
    ) -> tuple[np.ndarray, ...]:
        """Padded 2-D segment math for one width-bucket of rows.

        Returns per-row ``(j, last_cum, cum_jm1, abort_p, start_j)``:
        the interrupted-prefix length, the cumulative cost over the whole
        window and over the first ``j - 1`` marks, and the progress/start
        time of the interrupting mark.  Values at degenerate indices
        (``counts == 0``, ``j == 0``) are finite garbage the round
        epilogue masks out.
        """
        sched = self.schedule
        n = p_rows.size
        max_count = int(counts.max()) if n else 0
        if max_count == 0:
            zero = np.zeros(n)
            return np.zeros(n, dtype=np.int64), zero, zero, zero, zero
        arange_n = self._arange[:n]
        cols = self._cols[:max_count]
        # Padding cells past a row's own count gather neighbouring marks
        # (or the sentinel tail) from the extended lookups: finite values
        # with nondecreasing progress and nonnegative cost.  The row
        # cumsum's *valid prefix* is therefore exactly the serial
        # per-segment sequence — a cumsum cell only ever depends on the
        # cells before it — and every read below lands in that prefix or
        # is masked/clamped by the epilogue.
        idx = i0[:, None] + cols
        marks_p = self._progress_ext.take(idx)
        mark_costs = self._cost_ext.take(idx)
        if jit_base is not None:
            jdx = jit_base[:, None] + cols
            mark_costs *= self._jitter_flat.take(jdx)
        # Row-wise cumsum accumulates sequentially per row — the exact
        # serial np.cumsum of each replica's own mark costs.  In-place
        # accumulate (same left-to-right sums) spares the second
        # (n, max_count) buffer; the one later read of a *pre-sum* cost
        # re-gathers it from source below.
        cum_costs = np.add.accumulate(mark_costs, axis=1, out=mark_costs)
        # Interruption point: first mark whose checkpoint completion
        # overruns the budget (searchsorted-right on a nondecreasing
        # complete_t == count of entries <= budget).  Padding cells have
        # complete_t >= the row's last real value (progress monotone,
        # costs >= 0, jitter factors > 0 for jitter < 1), so they
        # over-count only when every real mark fits — min(j, counts)
        # is exact.
        np.subtract(marks_p, p_rows[:, None], out=marks_p)
        np.add(marks_p, cum_costs, out=marks_p)  # marks_p is complete_t now
        fits = marks_p <= budgets[:, None]
        j = fits.sum(axis=1)
        np.minimum(j, counts, out=j)
        j_idx = np.minimum(j, max_count - 1)
        # The serial arrays are only ever read at three columns per row —
        # flat-gather the columns, skip materializing the arrays.
        base = arange_n * max_count
        flat_cum = cum_costs.reshape(-1)
        last_cum = flat_cum.take(base + np.maximum(counts - 1, 0))
        cum_jm1 = flat_cum.take(base + np.maximum(j - 1, 0))
        cum_j = flat_cum.take(base + j_idx)
        # The interrupting mark's own cost, re-gathered from source (the
        # cumsum overwrote the cell): the identical two floats give the
        # identical product.
        abort_idx = i0 + j_idx
        cost_j = self._cost_ext.take(abort_idx)
        if jit_base is not None:
            cost_j = cost_j * self._jitter_flat.take(jit_base + j_idx)
        abort_p = self._progress_ext.take(abort_idx)
        start_j = (abort_p - p_rows) + (cum_j - cost_j)
        return j, last_cum, cum_jm1, abort_p, start_j

    # -- result assembly ----------------------------------------------------

    def result(self, index: int) -> SimResult:
        portions = self.portions[index]
        return SimResult(
            wallclock=float(self.T[index]),
            portions={
                "productive": float(portions[_PRODUCTIVE]),
                "checkpoint": float(portions[_CHECKPOINT]),
                "restart": float(portions[_RESTART]),
                "rollback": float(portions[_ROLLBACK]),
            },
            failures_per_level=tuple(
                int(count) for count in self.failures[index]
            ),
            checkpoints_per_level=tuple(
                int(count) for count in self.checkpoints[index]
            ),
            completed=bool(self.completed[index]),
        )


def simulate_batch(
    config: SimulationConfig,
    seeds: Sequence[SeedLike],
    *,
    process: ArrivalProcess | None = None,
    injectors: Sequence | None = None,
) -> list[SimResult]:
    """Simulate one run per seed, all replicas advanced together.

    Drop-in batched equivalent of calling
    :func:`repro.sim.engine.simulate` once per element of ``seeds`` —
    the returned :class:`SimResult` values are bit-identical to the
    serial engine's (the contract :mod:`repro.sim.ensemble` relies on to
    make ``batch=True`` transparent).

    ``injectors`` (optional, one per seed) replaces the per-replica
    failure source — e.g. :class:`~repro.sim.failure_injection
    .ScriptedFailures` traces for the engine-equivalence ablation.  Each
    injector is consumed; pass fresh copies.
    """
    if injectors is not None and len(injectors) != len(seeds):
        raise ValueError(
            f"{len(injectors)} injectors for {len(seeds)} seeds"
        )
    if not len(seeds):
        return []
    state = _BatchState(config, seeds, process, injectors)
    max_wallclock = config.max_wallclock
    while True:
        active = np.flatnonzero(state.alive)
        if not active.size:
            break
        pend_t, levels = state._peek_failures(active)
        wallclocks = state.T.take(active)
        budgets = pend_t - wallclocks
        capped = np.minimum(budgets, max_wallclock - wallclocks)
        cap_hit = capped < budgets
        has_budget = budgets > 0.0
        if has_budget.all():
            finished = state.advance_segments(active, capped)
        else:
            finished = np.zeros(active.size, dtype=bool)
            if has_budget.any():
                finished[has_budget] = state.advance_segments(
                    active[has_budget], capped[has_budget]
                )
        censored = has_budget & cap_hit & ~finished
        retired = finished | censored
        # Retirements are rare per round; guard the scatters.
        if retired.any():
            state.completed[active[finished]] = True
            state.alive[active[retired]] = False
            rows = active[~retired]
            pend_t, levels = pend_t[~retired], levels[~retired]
        else:
            rows = active
        # Everyone else consumes the pending failure and recovers.
        if rows.size:
            state.consume_failures(rows, pend_t, levels)
            state.run_recoveries(rows, levels)
            over_cap = state.T.take(rows) >= max_wallclock
            if over_cap.any():
                state.alive[rows[over_cap]] = False
    return [state.result(index) for index in range(state.n)]
