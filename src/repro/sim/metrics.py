"""Simulation result types and ensemble statistics.

The paper reports, per configuration, the mean over 100 randomized runs of
the wall-clock time split into four portions (productive, checkpoint,
restart, rollback — Fig. 5/6) plus the efficiency indicator (Fig. 7,
Table IV).  :class:`SimResult` carries one run; :class:`EnsembleResult`
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

PORTION_KEYS: tuple[str, ...] = ("productive", "checkpoint", "restart", "rollback")


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    wallclock:
        Total simulated wall-clock seconds.
    portions:
        ``{"productive", "checkpoint", "restart", "rollback"}`` — the four
        stacked portions of Fig. 5/6; they sum to ``wallclock`` (asserted by
        a conservation property test).
    failures_per_level:
        Observed failure counts per level.
    checkpoints_per_level:
        Completed (valid) checkpoints per level, including re-taken ones.
    completed:
        False when the run hit the ``max_wallclock`` cap (censored).
    """

    wallclock: float
    portions: dict[str, float]
    failures_per_level: tuple[int, ...]
    checkpoints_per_level: tuple[int, ...]
    completed: bool = True

    def __post_init__(self):
        missing = set(PORTION_KEYS) - set(self.portions)
        if missing:
            raise ValueError(f"portions missing keys: {sorted(missing)}")

    @property
    def total_failures(self) -> int:
        """Failure events across all levels."""
        return int(sum(self.failures_per_level))

    def efficiency(self, te_core_seconds: float, n: float) -> float:
        """``(T_e / T_w) / N`` — wall-clock-based processor utilization."""
        if self.wallclock <= 0:
            raise ValueError("wallclock must be positive")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return (te_core_seconds / self.wallclock) / n


@dataclass(frozen=True)
class EnsembleResult:
    """Statistics over replicated runs of one configuration.

    ``traces`` is ``None`` unless the ensemble ran with event tracing on
    (see :func:`repro.sim.ensemble.run_ensemble`); when present it holds
    one event tuple per run, aligned with ``runs``.
    """

    runs: tuple[SimResult, ...]
    traces: tuple[tuple, ...] | None = None

    def __post_init__(self):
        if len(self.runs) == 0:
            raise ValueError("an ensemble needs at least one run")
        if self.traces is not None and len(self.traces) != len(self.runs):
            raise ValueError(
                f"{len(self.traces)} traces for {len(self.runs)} runs"
            )

    @property
    def n_runs(self) -> int:
        """Number of replicated runs."""
        return len(self.runs)

    @property
    def all_completed(self) -> bool:
        """True when no run was censored by the wall-clock cap."""
        return all(r.completed for r in self.runs)

    def wallclocks(self) -> np.ndarray:
        """Wall-clock times of every run."""
        return np.array([r.wallclock for r in self.runs])

    @property
    def mean_wallclock(self) -> float:
        """Mean wall-clock over runs (the paper's headline number)."""
        return float(self.wallclocks().mean())

    @property
    def std_wallclock(self) -> float:
        """Sample standard deviation of wall-clock over runs."""
        if self.n_runs == 1:
            return 0.0
        return float(self.wallclocks().std(ddof=1))

    def mean_portions(self) -> dict[str, float]:
        """Mean of each Fig. 5/6 portion over runs."""
        return {
            key: float(np.mean([r.portions[key] for r in self.runs]))
            for key in PORTION_KEYS
        }

    def mean_efficiency(self, te_core_seconds: float, n: float) -> float:
        """Mean per-run efficiency (Fig. 7 / Table IV indicator)."""
        return float(
            np.mean([r.efficiency(te_core_seconds, n) for r in self.runs])
        )

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI of the mean wall-clock."""
        half = z * self.std_wallclock / np.sqrt(self.n_runs)
        return (self.mean_wallclock - half, self.mean_wallclock + half)
