"""The event-driven multilevel-checkpoint execution engine.

Semantics (identical to a 1 s-tick simulation, cf. :mod:`repro.sim.tick`):

* the application needs ``P`` seconds of productive progress; level ``i``
  checkpoints at fixed progress marks ``k P / x_i`` (``k < x_i``);
* failures strike at any wall-clock instant — during work, during a
  checkpoint (the checkpoint aborts; its partial cost is still paid), or
  during recovery (the recovery restarts at the new failure's level);
* a level-``l`` failure destroys the checkpoints of all levels below ``l``
  and rolls progress back to the newest surviving checkpoint at level
  ``>= l`` (or to 0);
* every failure costs the allocation period ``A`` plus the recovery
  overhead ``R_l``; every checkpoint/recovery cost instance is multiplied
  by an independent uniform jitter ``1 + U(-j, +j)``;
* wall-clock is decomposed into the Fig. 5 portions: first-time productive
  work, checkpoint overhead (including re-taken and aborted checkpoints),
  restart overhead (allocation + recovery), and rollback (re-executed
  work).

Between failures the schedule is deterministic, so the engine advances in
*segments*: it vectorizes the per-mark costs of the reachable marks, takes a
cumulative sum, and finds the interruption point with a searchsorted — no
per-second loop (hpc-parallel guide: vectorize the hot path).

Observability: pass a :class:`~repro.obs.trace.TraceRecorder` to
:func:`simulate` and the engine emits the typed event stream of
:mod:`repro.obs.events` — per-mark ``CheckpointStart``/``Done``,
``Failure``/``Rollback``, ``RecoveryStart``/``Done``, one
``SegmentComplete`` per deterministic segment (carrying that segment's
portion decomposition, so the Fig. 5 portions reconstruct exactly from
the trace), and ``RunCensored`` at the cap.  The default
:data:`~repro.obs.trace.NULL_RECORDER` keeps tracing off at ~zero cost:
the hot loop only ever pays one ``recorder.active`` attribute check per
segment (benchmarked in ``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.failures.distributions import ArrivalProcess
from repro.obs.events import (
    CheckpointDone,
    CheckpointStart,
    Failure,
    RecoveryDone,
    RecoveryStart,
    Rollback,
    RunCensored,
    SegmentComplete,
)
from repro.obs.trace import NULL_RECORDER
from repro.sim.config import SimulationConfig
from repro.sim.failure_injection import FailureInjector
from repro.sim.metrics import SimResult
from repro.sim.schedule import CheckpointSchedule
from repro.util.rng import SeedLike, as_generator


def _draw_jitter(rng: np.random.Generator, jitter: float, size: int) -> np.ndarray:
    """Multiplicative cost jitter factors ``1 + U(-j, +j)``."""
    if jitter == 0.0 or size == 0:
        return np.ones(size)
    return 1.0 + rng.uniform(-jitter, jitter, size=size)


def _draw_jitter_scalar(rng: np.random.Generator, jitter: float) -> float:
    """One jitter factor without the size-1 array round-trip.

    A scalar ``Generator.uniform`` consumes exactly the same stream value
    as ``uniform(size=1)[0]``, so the fast path is bit-identical to the
    historical array draw (asserted by the seed-stability tests).
    """
    if jitter == 0.0:
        return 1.0
    return 1.0 + rng.uniform(-jitter, jitter)


class _Run:
    """Mutable state of one simulated execution."""

    def __init__(
        self, config: SimulationConfig, seed: SeedLike, process,
        injector=None, recorder=None,
    ):
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.schedule = CheckpointSchedule.build(
            config.productive_seconds, config.intervals
        )
        rng = as_generator(seed)
        # Independent child streams: one for jitter, one for failures.
        jitter_seed, failure_seed = rng.integers(0, 2**63 - 1, size=2)
        self.rng = as_generator(int(jitter_seed))
        if injector is not None:
            self.injector = injector
        else:
            self.injector = FailureInjector(
                config.failure_rates, seed=int(failure_seed), process=process
            )
        self.costs = config.checkpoint_cost_array()
        self.recoveries = config.recovery_cost_array()
        self.T = 0.0  # wall-clock
        self.p = 0.0  # productive progress
        self.high_water = 0.0  # max progress ever reached (first-time frontier)
        self.latest = np.zeros(config.num_levels)  # newest valid ckpt per level
        self.portions = {
            "productive": 0.0,
            "checkpoint": 0.0,
            "restart": 0.0,
            "rollback": 0.0,
        }
        self.failures = np.zeros(config.num_levels, dtype=np.int64)
        self.checkpoints = np.zeros(config.num_levels, dtype=np.int64)

    # -- portion bookkeeping ------------------------------------------------

    def _split_work(self, p_from: float, p_to: float) -> tuple[float, float]:
        """``(first_time, rework)`` split of a work span; advances the
        first-time frontier."""
        if p_to <= p_from:
            return 0.0, 0.0
        rework_end = min(p_to, max(p_from, self.high_water))
        rework = max(0.0, rework_end - p_from)
        first_time = (p_to - p_from) - rework
        self.high_water = max(self.high_water, p_to)
        return first_time, rework

    def _charge_segment(
        self, first_time: float, rework: float, checkpoint: float
    ) -> None:
        """Accumulate one segment's portion decomposition.

        Charged as whole-segment values (not incremental adds) so a
        :class:`~repro.obs.events.SegmentComplete` event carrying the same
        floats reconstructs the portions bit-exactly.
        """
        self.portions["productive"] += first_time
        self.portions["rollback"] += rework
        self.portions["checkpoint"] += checkpoint

    # -- deterministic segment ------------------------------------------------

    def run_segment(self, budget: float) -> bool:
        """Advance the deterministic schedule for at most ``budget`` seconds.

        Returns True when the application *completes* within the budget;
        False when the budget (the time to the next failure) is exhausted
        first.  ``self.T`` advances by the consumed time either way.
        """
        config = self.config
        sched = self.schedule
        rec = self.recorder
        p = self.p
        T0 = self.T
        i0 = sched.marks_after(p)
        # Only marks whose work alone fits the budget can be reached.
        if math.isinf(budget):
            i_hi = sched.num_marks
        else:
            i_hi = int(
                np.searchsorted(sched.progress, p + budget, side="right")
            )
        marks_p = sched.progress[i0:i_hi]
        marks_l = sched.level[i0:i_hi]
        jitters = _draw_jitter(self.rng, config.jitter, marks_p.size)
        mark_costs = self.costs[marks_l - 1] * jitters
        cum_costs = np.cumsum(mark_costs)
        # Time at which mark j's checkpoint completes / starts:
        complete_t = (marks_p - p) + cum_costs
        start_t = (marks_p - p) + (cum_costs - mark_costs)

        # Try completion first: needs every remaining mark reachable.
        if i_hi == sched.num_marks:
            total = (config.productive_seconds - p) + (
                float(cum_costs[-1]) if cum_costs.size else 0.0
            )
            if total <= budget:
                self._commit_marks(marks_p, marks_l, marks_p.size)
                ckpt_cost = float(cum_costs[-1]) if cum_costs.size else 0.0
                first_time, rework = self._split_work(
                    p, config.productive_seconds
                )
                self._charge_segment(first_time, rework, ckpt_cost)
                self.p = config.productive_seconds
                self.T += total
                if rec.active:
                    self._emit_segment(
                        T0, marks_p, marks_l, mark_costs, start_t,
                        complete_t, marks_p.size, None, total, first_time,
                        rework, ckpt_cost, run_completed=True,
                    )
                return True

        # Interrupted: find where the budget lands.
        j = int(np.searchsorted(complete_t, budget, side="right"))
        abort_index = None
        self._commit_marks(marks_p, marks_l, j)
        consumed_costs = float(cum_costs[j - 1]) if j > 0 else 0.0
        if j < marks_p.size and start_t[j] <= budget:
            # Failure strikes during mark j's checkpoint: it aborts, the
            # partial cost is paid, progress sits at the mark.
            abort_index = j
            ckpt_cost = consumed_costs + float(budget - start_t[j])
            first_time, rework = self._split_work(p, float(marks_p[j]))
            self.p = float(marks_p[j])
        else:
            # Failure strikes during work after j completed checkpoints.
            ckpt_cost = consumed_costs
            p_new = p + (budget - consumed_costs)
            p_new = min(p_new, config.productive_seconds)
            first_time, rework = self._split_work(p, p_new)
            self.p = p_new
        self._charge_segment(first_time, rework, ckpt_cost)
        self.T += budget
        if rec.active:
            self._emit_segment(
                T0, marks_p, marks_l, mark_costs, start_t, complete_t, j,
                abort_index, budget, first_time, rework, ckpt_cost,
                run_completed=False,
            )
        return False

    def _commit_marks(
        self,
        marks_p: np.ndarray,
        marks_l: np.ndarray,
        count: int,
    ) -> None:
        """Commit the first ``count`` marks (counts + newest-checkpoint map).

        Both updates are exact whatever the grouping: the per-level counts
        are integer ``bincount`` adds and the newest-valid-checkpoint
        update is a pure ``max`` — so one fused pass over the committed
        marks replaces the old per-level ``np.unique`` loop bit-for-bit.
        """
        if count == 0:
            return
        done_l = marks_l[:count]
        self.checkpoints += np.bincount(
            done_l, minlength=self.checkpoints.size + 1
        )[1:]
        np.maximum.at(self.latest, done_l - 1, marks_p[:count])

    def _emit_segment(
        self,
        T0: float,
        marks_p: np.ndarray,
        marks_l: np.ndarray,
        mark_costs: np.ndarray,
        start_t: np.ndarray,
        complete_t: np.ndarray,
        count: int,
        abort_index: int | None,
        duration: float,
        first_time: float,
        rework: float,
        ckpt_cost: float,
        *,
        run_completed: bool,
    ) -> None:
        """Emit one segment's checkpoint events + ``SegmentComplete``.

        Only called when the recorder is active — the disabled path never
        builds an event object.
        """
        rec = self.recorder
        for k in range(count):
            level = int(marks_l[k])
            progress = float(marks_p[k])
            rec.emit(
                CheckpointStart(
                    t=T0 + float(start_t[k]), level=level, progress=progress
                )
            )
            rec.emit(
                CheckpointDone(
                    t=T0 + float(complete_t[k]),
                    level=level,
                    progress=progress,
                    cost=float(mark_costs[k]),
                )
            )
        if abort_index is not None:
            # An aborted checkpoint: Start without a matching Done.
            rec.emit(
                CheckpointStart(
                    t=T0 + float(start_t[abort_index]),
                    level=int(marks_l[abort_index]),
                    progress=float(marks_p[abort_index]),
                )
            )
        rec.emit(
            SegmentComplete(
                t=self.T,
                duration=float(duration),
                productive=first_time,
                rework=rework,
                checkpoint=ckpt_cost,
                marks_completed=count,
                progress=self.p,
                run_completed=run_completed,
            )
        )

    # -- failure handling -----------------------------------------------------

    def apply_failure(self, level: int) -> None:
        """Roll back for a level-``level`` failure (levels are 1-based)."""
        self.failures[level - 1] += 1
        p_before = self.p
        # Levels below the failure lose their storage.
        self.latest[: level - 1] = 0.0
        surviving = self.latest[level - 1 :]
        self.p = float(surviving.max()) if surviving.size else 0.0
        rec = self.recorder
        if rec.active:
            rec.emit(Failure(t=self.T, level=level))
            rec.emit(
                Rollback(
                    t=self.T,
                    level=level,
                    progress_from=p_before,
                    progress_to=self.p,
                )
            )

    def run_recovery(self, level: int) -> None:
        """Pay allocation + recovery, restarting on failures mid-recovery."""
        config = self.config
        rec = self.recorder
        while True:
            if rec.active:
                rec.emit(RecoveryStart(t=self.T, level=level))
            duration = config.allocation_period + float(
                self.recoveries[level - 1]
                * _draw_jitter_scalar(self.rng, config.jitter)
            )
            t_next, next_level = self.injector.peek()
            if self.T + duration <= t_next:
                self.portions["restart"] += duration
                self.T += duration
                if rec.active:
                    rec.emit(
                        RecoveryDone(t=self.T, level=level, duration=duration)
                    )
                return
            # A new failure lands during recovery: the time spent so far is
            # still restart overhead; re-plan at the new failure's level.
            spent = t_next - self.T
            self.portions["restart"] += spent
            self.T = t_next
            if rec.active:
                rec.emit(
                    RecoveryDone(
                        t=self.T, level=level, duration=spent, interrupted=True
                    )
                )
            self.injector.pop()
            self.apply_failure(next_level)
            level = next_level


def simulate(
    config: SimulationConfig,
    seed: SeedLike = None,
    *,
    process: ArrivalProcess | None = None,
    injector=None,
    recorder=None,
) -> SimResult:
    """Simulate one execution under ``config``; returns a :class:`SimResult`.

    ``process`` overrides the failure inter-arrival distribution (default
    exponential); ``injector`` overrides the failure source entirely (e.g. a
    :class:`~repro.sim.failure_injection.ScriptedFailures` trace for
    engine-equivalence tests).  Runs exceeding ``config.max_wallclock``
    return a censored result (``completed=False``) with the state at the cap.

    ``recorder`` (a :class:`~repro.obs.trace.TraceRecorder`) switches on
    event tracing; the default :data:`~repro.obs.trace.NULL_RECORDER`
    keeps the hot loop at ~zero overhead.  Tracing never touches the RNG
    streams, so traced and untraced runs of one seed are bit-identical.
    """
    run = _Run(config, seed, process, injector=injector, recorder=recorder)
    rec = run.recorder
    while True:
        t_next, level = run.injector.peek()
        budget = t_next - run.T
        if budget > 0:
            capped_budget = min(budget, config.max_wallclock - run.T)
            if capped_budget < budget:
                # The cap lands before the next failure.
                finished = run.run_segment(capped_budget)
                if finished:
                    break
                if rec.active:
                    rec.emit(RunCensored(t=run.T, progress=run.p))
                return _result(run, completed=False)
            if run.run_segment(budget):
                break
        run.injector.pop()
        run.apply_failure(level)
        run.run_recovery(level)
        if run.T >= config.max_wallclock:
            if rec.active:
                rec.emit(RunCensored(t=run.T, progress=run.p))
            return _result(run, completed=False)
    return _result(run, completed=True)


def _result(run: _Run, completed: bool) -> SimResult:
    return SimResult(
        wallclock=run.T,
        portions=dict(run.portions),
        failures_per_level=tuple(int(f) for f in run.failures),
        checkpoints_per_level=tuple(int(c) for c in run.checkpoints),
        completed=completed,
    )
