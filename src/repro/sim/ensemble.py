"""Replicated-run ensembles.

The paper reports "mean values based on 100 runs for each case with random
failure events"; :func:`run_ensemble` reproduces that protocol with
independent child seeds per run (``SeedSequence.spawn`` — reproducible from
one root seed, statistically independent across runs).
"""

from __future__ import annotations

from repro.failures.distributions import ArrivalProcess
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.metrics import EnsembleResult
from repro.util.rng import SeedLike, spawn_generators


def run_ensemble(
    config: SimulationConfig,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    process: ArrivalProcess | None = None,
) -> EnsembleResult:
    """Run ``n_runs`` independent simulations of ``config``.

    Parameters
    ----------
    config:
        The resolved simulation setup.
    n_runs:
        Replications (the paper uses 100).
    seed:
        Root seed for the whole ensemble.
    process:
        Failure inter-arrival process override (ablation hook).
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    rngs = spawn_generators(seed, n_runs)
    runs = tuple(
        simulate(config, seed=rng, process=process) for rng in rngs
    )
    return EnsembleResult(runs=runs)
