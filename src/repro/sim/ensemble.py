"""Replicated-run ensembles.

The paper reports "mean values based on 100 runs for each case with random
failure events"; :func:`run_ensemble` reproduces that protocol with
independent child seeds per run (``SeedSequence.spawn`` — reproducible from
one root seed, statistically independent across runs).

Replicas are embarrassingly parallel.  ``run_ensemble`` fans them out
through the :mod:`repro.parallel` execution layer in *seed-stable chunks*:
every child generator is spawned up front, in order, before any work is
dispatched, and chunks are contiguous slices of that sequence — so serial,
thread-pool, and process-pool executions of the same root seed return
bit-identical :class:`~repro.sim.metrics.EnsembleResult`s.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.failures.distributions import ArrivalProcess
from repro.parallel.executor import Executor, chunk_evenly, ensure_executor
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.metrics import EnsembleResult, SimResult
from repro.util.rng import SeedLike, spawn_generators


def _simulate_chunk(task) -> list[SimResult]:
    """Worker: one contiguous chunk of replicas (module-level: picklable)."""
    config, seeds, process, injectors = task
    if injectors is None:
        injectors = [None] * len(seeds)
    return [
        simulate(config, seed=seed, process=process, injector=injector)
        for seed, injector in zip(seeds, injectors)
    ]


def run_ensemble(
    config: SimulationConfig,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    process: ArrivalProcess | None = None,
    injector=None,
    jobs: int | None = None,
    executor: Executor | None = None,
) -> EnsembleResult:
    """Run ``n_runs`` independent simulations of ``config``.

    Parameters
    ----------
    config:
        The resolved simulation setup.
    n_runs:
        Replications (the paper uses 100).
    seed:
        Root seed for the whole ensemble.
    process:
        Failure inter-arrival process override (ablation hook).
    injector:
        Failure-source override (e.g.
        :class:`~repro.sim.failure_injection.ScriptedFailures`).  Stateful
        injectors are deep-copied per replica — never shared across runs
        or worker processes — so every run replays the same trace from the
        start.  The injector must therefore be deep-copyable (and
        picklable under the process backend).
    jobs:
        Worker budget for the fan-out; ``None`` defers to ``REPRO_JOBS``
        (default 1 = serial, byte-identical to the historical loop).
    executor:
        An existing :class:`~repro.parallel.executor.Executor` to reuse
        instead of building one (the caller keeps ownership).
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    # Seed stability: spawn EVERY child generator up front, in replica
    # order, before any dispatch decision — parallelism must never change
    # which stream a replica consumes.
    rngs = spawn_generators(seed, n_runs)
    injectors: Sequence | None = None
    if injector is not None:
        try:
            injectors = [copy.deepcopy(injector) for _ in range(n_runs)]
        except Exception as exc:
            raise TypeError(
                f"injector {type(injector).__name__} cannot be deep-copied "
                "for per-replica isolation; pass a copyable injector or "
                "run replicas individually via repro.sim.engine.simulate"
            ) from exc
    executor, owned = ensure_executor(executor, jobs, n_runs)
    try:
        chunk_bounds = chunk_evenly(range(n_runs), max(1, executor.jobs * 4))
        tasks = []
        for bounds in chunk_bounds:
            lo, hi = bounds[0], bounds[-1] + 1
            tasks.append(
                (
                    config,
                    rngs[lo:hi],
                    process,
                    None if injectors is None else injectors[lo:hi],
                )
            )
        chunk_results = executor.map(_simulate_chunk, tasks)
    finally:
        if owned:
            executor.close()
    runs = tuple(run for chunk in chunk_results for run in chunk)
    return EnsembleResult(runs=runs)
