"""Replicated-run ensembles.

The paper reports "mean values based on 100 runs for each case with random
failure events"; :func:`run_ensemble` reproduces that protocol with
independent child seeds per run (``SeedSequence.spawn`` — reproducible from
one root seed, statistically independent across runs).

Replicas are embarrassingly parallel.  ``run_ensemble`` fans them out
through the :mod:`repro.parallel` execution layer in *seed-stable chunks*:
every child generator is spawned up front, in order, before any work is
dispatched, and chunks are contiguous slices of that sequence — so serial,
thread-pool, and process-pool executions of the same root seed return
bit-identical :class:`~repro.sim.metrics.EnsembleResult`s.

Observability: each chunk worker counts its replicas into a chunk-local
:class:`~repro.obs.metrics.MetricsRegistry` (runs / censored / per-level
failure and checkpoint totals / wall-clock samples) and ships the snapshot
back with its results; the parent reduces the snapshots *in chunk order*
into the process-wide :data:`~repro.obs.metrics.METRICS` registry.
Counters are integers and histogram merges concatenate in replica order,
so the reduced ``sim.*`` metrics are bit-identical between serial and
process-pool executions regardless of chunk boundaries.  With
``trace=True`` every replica additionally records its full
:mod:`repro.obs.events` stream (optionally ring-buffered via
``trace_maxlen``), returned as ``EnsembleResult.traces``.
"""

from __future__ import annotations

import copy
import os
from typing import Sequence

from repro.failures.distributions import ArrivalProcess
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.spans import (
    SpanRecorder,
    get_span_recorder,
    span,
    span_from_dict,
    span_to_dict,
)
from repro.obs.trace import TraceRecorder
from repro.parallel.executor import Executor, chunk_evenly, ensure_executor
from repro.sim.batch import simulate_batch
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.metrics import EnsembleResult, SimResult
from repro.util.rng import SeedLike, spawn_generators

#: Environment variable toggling the batched replica engine ("0"/"false"/
#: "off" disable it; anything else, or unset, keeps the default of on).
BATCH_ENV_VAR = "REPRO_BATCH"


def resolve_batch(batch: bool | None = None) -> bool:
    """Resolve the batch-engine preference: argument > ``REPRO_BATCH`` > on.

    The batched engine is bit-identical to the per-replica path (see
    :mod:`repro.sim.batch`), so it defaults to on; the switch exists for
    benchmarking and as an escape hatch.  Requests the engine cannot
    honour (tracing, custom injectors) still fall back per call.
    """
    if batch is not None:
        return bool(batch)
    text = os.environ.get(BATCH_ENV_VAR)
    if text is None:
        return True
    return text.strip().lower() not in ("0", "false", "off", "no")


def _count_run(registry: MetricsRegistry, result: SimResult) -> None:
    """Charge one replica's integer counts + wall-clock sample."""
    registry.counter("sim.runs").inc()
    if not result.completed:
        registry.counter("sim.censored").inc()
    registry.counter("sim.failures").add(result.total_failures)
    registry.counter("sim.checkpoints").add(sum(result.checkpoints_per_level))
    for level, count in enumerate(result.failures_per_level, start=1):
        registry.counter(f"sim.failures.l{level}").add(count)
    for level, count in enumerate(result.checkpoints_per_level, start=1):
        registry.counter(f"sim.checkpoints.l{level}").add(count)
    registry.histogram("sim.wallclock").observe(result.wallclock)


def _simulate_chunk(task):
    """Worker: one contiguous chunk of replicas (module-level: picklable).

    Returns ``(results, traces_or_None, metrics_snapshot, span_fragments)``.

    ``span_part`` is ``None`` (span recording off) or the pinned
    ``(ensemble_context, replica_offset)``: a worker process cannot reach
    the parent's span recorder, so each replica records a ``sim.replica``
    span — its id derived from the ensemble context and its *global*
    replica index, hence chunking-independent — into a chunk-local
    :class:`SpanRecorder`, exported as dicts for the parent to re-emit in
    chunk order (the metrics snapshot/merge pattern, applied to spans).

    With ``batch`` set, the chunk runs through
    :func:`~repro.sim.batch.simulate_batch` — all replicas of the chunk
    advanced together, bit-identical results — and the per-replica
    bookkeeping (metrics counts, ``sim.replica`` spans with the same
    chunking-independent ids and attributes) is replayed afterwards in
    replica order, so observability output is indistinguishable from the
    per-replica path's.
    """
    config, seeds, process, injectors, trace, trace_maxlen, span_part, batch = (
        task
    )
    registry = MetricsRegistry()
    if batch:
        results = simulate_batch(config, seeds, process=process)
        span_sink = SpanRecorder() if span_part is not None else None
        for offset, result in enumerate(results):
            if span_part is not None:
                ensemble_ctx, replica_base = span_part
                replica = replica_base + offset
                with span(
                    "sim.replica",
                    parent=ensemble_ctx,
                    index=replica,
                    attributes={"replica": replica},
                    recorder=span_sink,
                ) as live:
                    live.set_attribute("completed", result.completed)
                    live.set_attribute("failures", result.total_failures)
            _count_run(registry, result)
        fragments = (
            [span_to_dict(s) for s in span_sink.spans]
            if span_sink is not None
            else None
        )
        return results, None, registry.snapshot(), fragments
    if injectors is None:
        injectors = [None] * len(seeds)
    results: list[SimResult] = []
    traces: list[tuple] | None = [] if trace else None
    span_sink = SpanRecorder() if span_part is not None else None
    for offset, (seed, injector) in enumerate(zip(seeds, injectors)):
        recorder = TraceRecorder(maxlen=trace_maxlen) if trace else None
        if span_part is not None:
            ensemble_ctx, replica_base = span_part
            replica = replica_base + offset
            with span(
                "sim.replica",
                parent=ensemble_ctx,
                index=replica,
                attributes={"replica": replica},
                recorder=span_sink,
            ) as live:
                result = simulate(
                    config, seed=seed, process=process, injector=injector,
                    recorder=recorder,
                )
                live.set_attribute("completed", result.completed)
                live.set_attribute("failures", result.total_failures)
        else:
            result = simulate(
                config, seed=seed, process=process, injector=injector,
                recorder=recorder,
            )
        results.append(result)
        if traces is not None:
            traces.append(recorder.events)
        _count_run(registry, result)
    fragments = (
        [span_to_dict(s) for s in span_sink.spans]
        if span_sink is not None
        else None
    )
    return results, traces, registry.snapshot(), fragments


def run_ensemble(
    config: SimulationConfig,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    process: ArrivalProcess | None = None,
    injector=None,
    jobs: int | None = None,
    executor: Executor | None = None,
    trace: bool = False,
    trace_maxlen: int | None = None,
    registry: MetricsRegistry | None = None,
    batch: bool | None = None,
) -> EnsembleResult:
    """Run ``n_runs`` independent simulations of ``config``.

    Parameters
    ----------
    config:
        The resolved simulation setup.
    n_runs:
        Replications (the paper uses 100).
    seed:
        Root seed for the whole ensemble.
    process:
        Failure inter-arrival process override (ablation hook).
    injector:
        Failure-source override (e.g.
        :class:`~repro.sim.failure_injection.ScriptedFailures`).  Stateful
        injectors are deep-copied per replica — never shared across runs
        or worker processes — so every run replays the same trace from the
        start.  The injector must therefore be deep-copyable (and
        picklable under the process backend).
    jobs:
        Worker budget for the fan-out; ``None`` defers to ``REPRO_JOBS``
        (default 1 = serial, byte-identical to the historical loop).
    executor:
        An existing :class:`~repro.parallel.executor.Executor` to reuse
        instead of building one (the caller keeps ownership).
    trace:
        Record the per-replica event stream; the result's ``traces`` field
        then holds one event tuple per run.  Tracing never touches the RNG
        streams, so the ``runs`` are bit-identical either way.
    trace_maxlen:
        Ring-buffer capacity per replica trace (``None`` keeps everything).
    registry:
        Destination for the reduced per-replica metrics; defaults to the
        process-wide :data:`~repro.obs.metrics.METRICS`.  Drivers that fan
        whole ensembles out to worker processes pass a task-local registry
        here and ship its snapshot back to *their* parent.
    batch:
        Run each chunk through the batched replica engine
        (:func:`~repro.sim.batch.simulate_batch` — struct-of-arrays over
        the chunk's replicas, bit-identical results).  ``None`` defers to
        ``REPRO_BATCH`` (default on).  Requests the batched engine cannot
        honour — event tracing or a custom ``injector`` — transparently
        fall back to the per-replica path; the returned
        :class:`EnsembleResult` is identical either way.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    use_batch = resolve_batch(batch) and not trace and injector is None
    # Seed stability: spawn EVERY child generator up front, in replica
    # order, before any dispatch decision — parallelism must never change
    # which stream a replica consumes.
    rngs = spawn_generators(seed, n_runs)
    injectors: Sequence | None = None
    if injector is not None:
        try:
            injectors = [copy.deepcopy(injector) for _ in range(n_runs)]
        except Exception as exc:
            raise TypeError(
                f"injector {type(injector).__name__} cannot be deep-copied "
                "for per-replica isolation; pass a copyable injector or "
                "run replicas individually via repro.sim.engine.simulate"
            ) from exc
    executor, owned = ensure_executor(executor, jobs, n_runs)
    span_recorder = get_span_recorder()
    # Attributes stay backend-independent (no executor kind / job count)
    # so span_tree_signature is equal across serial/thread/process runs.
    with span("sim.ensemble", attributes={"runs": n_runs}) as ensemble_span:
        # Pinned (context, global replica offset) per chunk: replica span
        # ids derive from the ensemble context and the replica's global
        # index, so the tree is identical however the chunks fall.
        span_ctx = (
            ensemble_span.context if ensemble_span is not None else None
        )
        try:
            # Per-replica chunks oversubscribe 4x for load balancing; the
            # batched engine amortizes per-round overhead over the whole
            # chunk, so give it one maximal chunk per worker instead.
            # Results are chunking-independent either way (seed-stable
            # chunks, globally-indexed spans).
            n_chunks = executor.jobs if use_batch else executor.jobs * 4
            chunk_bounds = chunk_evenly(range(n_runs), max(1, n_chunks))
            tasks = []
            for bounds in chunk_bounds:
                lo, hi = bounds[0], bounds[-1] + 1
                tasks.append(
                    (
                        config,
                        rngs[lo:hi],
                        process,
                        None if injectors is None else injectors[lo:hi],
                        trace,
                        trace_maxlen,
                        (span_ctx, lo) if span_ctx is not None else None,
                        use_batch,
                    )
                )
            chunk_results = executor.map(_simulate_chunk, tasks)
        finally:
            if owned:
                executor.close()
        # Reduce worker metrics into the parent, in chunk order
        # (deterministic); re-emit worker span fragments the same way.
        destination = registry if registry is not None else METRICS
        for _, _, snapshot, fragments in chunk_results:
            destination.merge_snapshot(snapshot)
            if fragments:
                for fragment in fragments:
                    span_recorder.emit(span_from_dict(fragment))
    runs = tuple(run for chunk, _, _, _ in chunk_results for run in chunk)
    traces = None
    if trace:
        traces = tuple(
            events
            for _, chunk_traces, _, _ in chunk_results
            for events in chunk_traces
        )
    return EnsembleResult(runs=runs, traces=traces)
