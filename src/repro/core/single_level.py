"""Single-level optimizers (Section III-C).

Two solvers:

* :func:`solve_single_level_linear` — the closed forms of Formulas (10)/(11)
  for linear speedup ``g(N) = kappa N`` with constant costs:
  ``x* = sqrt(b T_e / (2 kappa eps_0))``,
  ``N* = sqrt(T_e / (kappa b (eta_0 + A)))``.

* :func:`solve_single_level_nonlinear` — the fixed-point iteration of
  Formulas (16)/(17) for arbitrary speedup models, with the scale equation
  solved by bisection over ``(0, N^(*)]`` (the derivative of ``E(T_w)``
  w.r.t. ``N`` is monotone there; when it has no root the optimum sits at
  the boundary ``N^(*)`` — "very few failures or small checkpoint overhead"
  per the paper).  Cost models may vary with ``N`` (the Fig. 3(b)
  linear-increasing-cost case), generalizing Formula (15) accordingly.

Both treat the expected failure count as ``mu(N) = b N`` (the Algorithm-1
inner condition); the outer mu-iteration lives in
:mod:`repro.core.algorithm1`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import single_level_wallclock
from repro.util.iteration import bisect_root


@dataclass(frozen=True)
class SingleLevelSolution:
    """Optimum of the single-level model.

    Attributes
    ----------
    x:
        Optimal number of checkpoint intervals.
    n:
        Optimal execution scale (cores; continuous relaxation).
    expected_wallclock:
        Objective value at the optimum (Formula 13 with ``mu = b n``).
    iterations:
        Fixed-point iterations used (0 for the closed form).
    boundary:
        True when the scale optimum landed on ``N^(*)`` (no interior root).
    """

    x: float
    n: float
    expected_wallclock: float
    iterations: int = 0
    boundary: bool = False


def solve_single_level_linear(
    te_core_seconds: float,
    kappa: float,
    checkpoint_cost: float,
    recovery_cost: float,
    allocation_period: float,
    b: float,
) -> SingleLevelSolution:
    """Closed-form optimum for linear speedup — Formulas (10)/(11).

    Parameters mirror Formula (7): ``eps_0 = checkpoint_cost``,
    ``eta_0 = recovery_cost``, ``A = allocation_period``, and the expected
    failure count is ``mu(N) = b N``.

    Requires ``b > 0`` and ``eta_0 + A > 0`` (otherwise the scale optimum is
    unbounded — failures are free, so use all the cores there are).
    """
    if te_core_seconds <= 0:
        raise ValueError(f"te must be positive, got {te_core_seconds}")
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    if checkpoint_cost <= 0:
        raise ValueError(
            f"checkpoint_cost must be positive, got {checkpoint_cost}"
        )
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if recovery_cost + allocation_period <= 0:
        raise ValueError(
            "recovery_cost + allocation_period must be positive, otherwise "
            "the optimal scale is unbounded for linear speedup"
        )
    x_opt = math.sqrt(b * te_core_seconds / (2.0 * kappa * checkpoint_cost))
    n_opt = math.sqrt(
        te_core_seconds / (kappa * b * (recovery_cost + allocation_period))
    )
    # Formula (7) objective at the optimum.
    value = (
        te_core_seconds / (kappa * n_opt)
        + checkpoint_cost * (x_opt - 1.0)
        + b
        * n_opt
        * (
            te_core_seconds / (kappa * n_opt) / (2.0 * x_opt)
            + recovery_cost
            + allocation_period
        )
    )
    return SingleLevelSolution(
        x=x_opt, n=n_opt, expected_wallclock=value, iterations=0
    )


def _objective(params: ModelParameters, x: float, n: float, b: float) -> float:
    """Formula (13) with ``mu = b n``."""
    return single_level_wallclock(params, x, n, mu=b * n)


def _scale_derivative(
    params: ModelParameters, x: float, n: float, b: float
) -> float:
    """d E / dN of Formula (13) — Formula (15) generalized to C(N), R(N)."""
    te = params.te_core_seconds
    g = float(params.speedup.speedup(n))
    g_prime = float(params.speedup.derivative(n))
    recovery = float(params.costs.recovery_costs(n)[0])
    cost_prime = float(params.costs.checkpoint_derivatives(n)[0])
    recovery_prime = float(params.costs.recovery_derivatives(n)[0])
    return (
        te * b / (2.0 * x * g)
        - te * (1.0 + b * n / (2.0 * x)) * g_prime / g**2
        + cost_prime * (x - 1.0)
        + b * (recovery + params.allocation_period)
        + b * n * recovery_prime
    )


def solve_single_level_nonlinear(
    params: ModelParameters,
    b: float,
    *,
    x0: float = 100_000.0,
    tol: float = 1e-6,
    max_iter: int = 500,
) -> SingleLevelSolution:
    """Fixed-point solution of Formulas (16)/(17).

    Alternates ``x^(k+1) = sqrt(b N^(k) T_e / (2 eps_0 g(N^(k))))``
    (Formula 16) with a bisection solve of the scale equation (Formula 17)
    until the relative change of ``x`` drops below ``tol``.  ``x0`` defaults
    to the paper's initial value of 100,000.

    ``params`` must be single level; ``b`` is the per-core expected failure
    count (``mu(N) = b N``).
    """
    if params.num_levels != 1:
        raise ValueError(
            "solve_single_level_nonlinear needs a 1-level model "
            "(use params.single_level())"
        )
    if b < 0:
        raise ValueError(f"b must be >= 0, got {b}")
    if x0 <= 0:
        raise ValueError(f"x0 must be positive, got {x0}")
    upper = params.scale_upper_bound
    lo = params.min_scale

    if b == 0.0:
        # No failures: never checkpoint (x -> 1), run at the ideal scale.
        n_opt = upper
        return SingleLevelSolution(
            x=1.0,
            n=n_opt,
            expected_wallclock=_objective(params, 1.0, n_opt, 0.0),
            iterations=0,
            boundary=True,
        )

    x = float(x0)
    n = upper
    boundary = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        te = params.te_core_seconds
        g_n = float(params.speedup.speedup(n))
        cost_n = float(params.costs.checkpoint_costs(n)[0])
        # Formula (16); interval counts below 1 are meaningless (one
        # interval = zero checkpoints), so floor there.
        x_new = max(1.0, math.sqrt(b * n * te / (2.0 * cost_n * g_n)))

        deriv = lambda nn: _scale_derivative(params, x_new, nn, b)
        d_hi = deriv(upper)
        d_lo = deriv(lo)
        if d_hi <= 0:
            n_new = upper  # no interior root: optimum at the ideal scale
            boundary = True
        elif d_lo >= 0:
            n_new = lo  # derivative positive everywhere: smallest scale
            boundary = True
        else:
            n_new, _ = bisect_root(deriv, lo, upper, xtol=0.5)
            boundary = False

        if abs(x_new - x) <= tol * max(abs(x), 1.0) and abs(n_new - n) <= 0.5:
            x, n = x_new, n_new
            break
        x, n = x_new, n_new
    return SingleLevelSolution(
        x=x,
        n=n,
        expected_wallclock=_objective(params, x, n, b),
        iterations=iterations,
        boundary=boundary,
    )
