"""The four strategies of the paper's evaluation (Section IV-A).

* **ML(opt-scale)** — multilevel model, optimized intervals *and* scale
  (this paper's contribution): Algorithm 1 over all levels.
* **SL(opt-scale)** — single-level model, optimized intervals and scale
  (improved Young per Jin et al. [23]).
* **ML(ori-scale)** — multilevel model, optimized intervals at the original
  ideal scale ``N^(*)`` (the authors' previous work [22]).
* **SL(ori-scale)** — single-level model at ``N^(*)`` with Young's formula
  (classic Young [3]).

Each function returns a :class:`~repro.core.notation.Solution` whose
``expected_wallclock`` is the *self-consistent* model prediction at the
chosen configuration, so strategies are compared on an equal footing
(the simulator provides the empirical comparison).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm1 import optimize
from repro.core.jin import solve_jin_single_level
from repro.core.memo import memoized_solver
from repro.core.notation import ModelParameters, Solution
from repro.core.wallclock import self_consistent_wallclock
from repro.core.young import young_initial_intervals

STRATEGY_NAMES: tuple[str, ...] = (
    "ml-opt-scale",
    "sl-opt-scale",
    "ml-ori-scale",
    "sl-ori-scale",
)


def ml_opt_scale(params: ModelParameters, **kwargs) -> Solution:
    """This paper: multilevel, optimized intervals + optimized scale."""
    return optimize(params, strategy_name="ml-opt-scale", **kwargs).solution


def sl_opt_scale(params: ModelParameters, **kwargs) -> Solution:
    """Jin et al. [23]: single level, optimized intervals + scale."""
    return solve_jin_single_level(params, **kwargs).solution


def ml_ori_scale(params: ModelParameters, **kwargs) -> Solution:
    """Previous work [22]: multilevel intervals optimized, scale pinned at
    the original ideal scale ``N^(*)``."""
    result = optimize(
        params,
        fixed_scale=params.scale_upper_bound,
        strategy_name="ml-ori-scale",
        **kwargs,
    )
    return result.solution


@memoized_solver
def sl_ori_scale(params: ModelParameters) -> Solution:
    """Classic Young [3]: single level, scale pinned at ``N^(*)``.

    The interval comes from Formula (25) with the expected failure count
    taken over the failure-free productive time (Young's first-order
    treatment ignores the overhead feedback), exactly the paper's
    characterization of the classic baseline.
    """
    collapsed = params.single_level() if params.num_levels > 1 else params
    n = collapsed.scale_upper_bound
    productive = collapsed.productive_time(n)
    mu0 = collapsed.rates.expected_failures(n, productive)
    x = young_initial_intervals(collapsed, n, mu0)
    try:
        wallclock, mu = self_consistent_wallclock(collapsed, x, n)
    except ValueError:
        # Expected loss per second >= 1: the linearized model says the run
        # never completes at this configuration (the paper's SL(ori-scale)
        # catastrophes, e.g. Table IV's 890-day rows, are this regime).
        wallclock, mu = float("inf"), mu0
    return Solution(
        intervals=tuple(float(v) for v in x),
        scale=float(n),
        expected_wallclock=float(wallclock),
        mu=tuple(float(m) for m in mu),
        strategy="sl-ori-scale",
    )


def compare_all_strategies(
    params: ModelParameters, **kwargs
) -> dict[str, Solution]:
    """Solve all four strategies; returns ``{strategy_name: Solution}``."""
    return {
        "ml-opt-scale": ml_opt_scale(params, **kwargs),
        "sl-opt-scale": sl_opt_scale(params),
        "ml-ori-scale": ml_ori_scale(params, **kwargs),
        "sl-ori-scale": sl_ori_scale(params),
    }
