"""Retry-aware second-order correction to the checkpoint model.

The first-order model (Formula 21) prices every scheduled checkpoint at its
nominal cost ``C_i``.  In the simulator (and in reality) a failure striking
*during* a checkpoint aborts it: the partial cost is paid and the
checkpoint re-attempted after recovery.  With failures arriving at total
rate ``Lambda``, the expected total time to push an operation of length
``c`` through to completion under restart-on-interrupt is the classic
exponential-interruption result

``c_eff = (e^(Lambda c) - 1) / Lambda``    (-> ``c`` as ``Lambda -> 0``),

which grows explosively once ``c`` approaches ``1 / Lambda`` — exactly the
regime where the full-scale baselines' PFS checkpoints (hours at 10^6
cores) become unserviceable, a behaviour the first-order model misses
entirely (THEORY.md §8).

This module substitutes ``c_eff`` for every checkpoint and recovery cost,
yielding:

* :func:`effective_cost` — the correction itself;
* :class:`RetryAwareCost` — a cost-model wrapper evaluating
  ``c_eff(N)`` with the scale-dependent total failure rate folded in
  (drop-in compatible with :class:`~repro.costs.model.LevelCostModel`);
* :func:`corrected_parameters` — a :class:`ModelParameters` clone whose
  costs are retry-aware, so **the entire solver stack (Algorithm 1, level
  selection, ...) runs unchanged on the corrected model**;
* :func:`corrected_wallclock` — corrected self-consistent ``E(T_w)`` for a
  given configuration.

Bracketing property (tested in ``tests/core/test_corrections.py`` and
quantified by ``benchmarks/test_bench_extensions.py``): the first-order
model is a *lower* bound on the simulated mean (it ignores retries
entirely) while the corrected model is an *upper* bound (it prices every
attempt as restarting from scratch, whereas the simulator usually resumes
from a nearby lower-level checkpoint), so

``E_plain <= E_simulated <= E_corrected``.

More importantly, **optimizing against the corrected objective produces
configurations that simulate faster than the paper's first-order optimum**
on failure-heavy settings — the correction steers the solver away from the
checkpoint-thrashing regime the first-order model cannot see.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import self_consistent_wallclock
from repro.costs.model import CostModel, LevelCostModel


def effective_cost(cost: float, total_rate_per_second: float) -> float:
    """Expected completion time of a ``cost``-second operation that restarts
    whenever a failure (rate ``total_rate_per_second``) interrupts it."""
    if cost < 0:
        raise ValueError(f"cost must be >= 0, got {cost}")
    if total_rate_per_second < 0:
        raise ValueError(
            f"rate must be >= 0, got {total_rate_per_second}"
        )
    if cost == 0.0 or total_rate_per_second == 0.0:
        return cost
    exponent = total_rate_per_second * cost
    if exponent > 700.0:  # exp overflow: effectively never completes
        return math.inf
    return math.expm1(exponent) / total_rate_per_second


class RetryAwareCost:
    """Cost model wrapper: ``c_eff(N) = expm1(Lambda(N) c(N)) / Lambda(N)``.

    Duck-type compatible with :class:`~repro.costs.model.CostModel`
    (callable + ``derivative``); the derivative is computed by central
    finite differences because ``Lambda(N)`` makes the closed form messy
    while the solvers only need a consistent gradient.
    """

    def __init__(self, base: CostModel, params: ModelParameters):
        self._base = base
        self._rates = params.rates
        #: Forwarded so LevelCostModel consumers can introspect.
        self.constant = base.constant
        self.coefficient = base.coefficient
        self.baseline = base.baseline

    def _total_rate(self, n: float) -> float:
        return float(np.sum(self._rates.rates_per_second(n)))

    def __call__(self, n):
        n_arr = np.atleast_1d(np.asarray(n, dtype=float))
        out = np.array(
            [
                effective_cost(float(self._base(v)), self._total_rate(v))
                for v in n_arr
            ]
        )
        if np.isscalar(n) or np.asarray(n).ndim == 0:
            return float(out[0])
        return out

    def derivative(self, n):
        n_arr = np.atleast_1d(np.asarray(n, dtype=float))
        out = np.empty(n_arr.shape)
        for i, v in enumerate(n_arr):
            h = max(abs(v), 1.0) * 1e-5
            lo = max(v - h, 1e-9)
            out[i] = (self(v + h) - self(lo)) / (v + h - lo)
        if np.isscalar(n) or np.asarray(n).ndim == 0:
            return float(out[0])
        return out

    def is_constant(self) -> bool:
        """Never constant: the effective cost grows with the scale through
        the failure rate even when the base cost is flat."""
        return False


def corrected_parameters(params: ModelParameters) -> ModelParameters:
    """Clone ``params`` with retry-aware checkpoint *and* recovery costs."""
    costs = LevelCostModel(
        checkpoint=tuple(
            RetryAwareCost(c, params) for c in params.costs.checkpoint
        ),
        recovery=tuple(RetryAwareCost(r, params) for r in params.costs.recovery),
    )
    return replace(params, costs=costs)


def corrected_wallclock(
    params: ModelParameters, x, n: float
) -> tuple[float, np.ndarray]:
    """Retry-aware self-consistent ``E(T_w)`` for one configuration.

    Raises ``ValueError`` when even the corrected model cannot complete
    (loss per second >= 1 — e.g. full-scale PFS checkpointing at the
    paper's harsh rates).
    """
    return self_consistent_wallclock(corrected_parameters(params), x, n)
