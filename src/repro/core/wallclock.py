"""The expected-wall-clock model (Formulas 5-7, 13, 18, 21, 22).

Conventions
-----------
* ``x`` is the vector of per-level interval counts ``(x_1, ..., x_L)``;
  ``n`` the execution scale.
* ``mu`` is the vector of expected failure counts per level.  Two
  parameterizations appear:

  - **given mu** (the inner convex problem of Algorithm 1): ``mu_i = b_i N``
    where ``b = params.failure_slope(T_fixed)`` for a frozen wall-clock
    estimate;
  - **self-consistent mu**: ``mu_i = lambda_i(N) * E(T_w)`` — Formula (21)
    is linear in ``mu`` and hence in ``E``, so the fixed point has the
    closed form ``E = base / (1 - sum_i lambda_i * loss_i)``, the multilevel
    generalization of Formula (6).

All times are seconds.
"""

from __future__ import annotations

import numpy as np

from repro.core.notation import ModelParameters


def _validate_xn(params: ModelParameters, x, n: float) -> np.ndarray:
    x_arr = np.asarray(x, dtype=float)
    if x_arr.ndim == 0:
        x_arr = x_arr[None]
    if x_arr.size != params.num_levels:
        raise ValueError(
            f"{x_arr.size} interval counts for {params.num_levels} levels"
        )
    if np.any(x_arr <= 0):
        raise ValueError(f"interval counts must be positive, got {x_arr}")
    if not n > 0:
        raise ValueError(f"scale must be positive, got {n}")
    return x_arr


def expected_rollback_loss(
    params: ModelParameters, x, n: float
) -> np.ndarray:
    """Per-level expected rollback loss ``E(Gamma_i)`` — Formula (18).

    ``E(Gamma_i) = f(T_e,N)/(2 x_i) + sum_{k<=i} C_k(N) x_k / (2 x_i)``:
    half an interval of lost productive work plus the lower-level checkpoint
    overheads taken (and therefore wasted) during the rolled-back span.
    Returns the length-``L`` vector.
    """
    x_arr = _validate_xn(params, x, n)
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    weighted = np.cumsum(costs * x_arr)  # sum_{k<=i} C_k x_k
    return f / (2.0 * x_arr) + weighted / (2.0 * x_arr)


def expected_wallclock(
    params: ModelParameters, x, n: float, mu
) -> float:
    """``E(T_w)`` for given per-level failure counts ``mu`` — Formula (21).

    ``E = T_e/g(N) + sum_i C_i (x_i - 1)
    + sum_i mu_i (Gamma_i + A + R_i(N))``.
    """
    x_arr = _validate_xn(params, x, n)
    mu_arr = np.asarray(mu, dtype=float)
    if mu_arr.shape != x_arr.shape:
        raise ValueError(
            f"mu shape {mu_arr.shape} does not match levels {x_arr.shape}"
        )
    if np.any(mu_arr < 0):
        raise ValueError(f"mu must be non-negative, got {mu_arr}")
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    recoveries = params.costs.recovery_costs(n)
    rollback = expected_rollback_loss(params, x_arr, n)
    per_failure = rollback + params.allocation_period + recoveries
    return float(f + np.sum(costs * (x_arr - 1.0)) + np.sum(mu_arr * per_failure))


def self_consistent_wallclock(
    params: ModelParameters, x, n: float
) -> tuple[float, np.ndarray]:
    """``E(T_w)`` with ``mu_i = lambda_i(N) * E(T_w)`` eliminated exactly.

    Formula (21) is linear in ``mu``; substituting ``mu = lambda(N) * E``
    and solving for ``E`` gives

    ``E = base / (1 - sum_i lambda_i(N) * (Gamma_i + A + R_i))``

    — the multilevel analogue of Formula (6).  Returns ``(E, mu)``.

    Raises
    ------
    ValueError
        When the denominator is <= 0: the expected loss per unit wall-clock
        exceeds 1, i.e. failure rates are so high the execution never
        finishes (the regime in which the paper notes Algorithm 1 cannot
        converge either).
    """
    x_arr = _validate_xn(params, x, n)
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    recoveries = params.costs.recovery_costs(n)
    rollback = expected_rollback_loss(params, x_arr, n)
    lam = params.rates.rates_per_second(n)
    per_failure = rollback + params.allocation_period + recoveries
    base = f + float(np.sum(costs * (x_arr - 1.0)))
    denom = 1.0 - float(np.sum(lam * per_failure))
    if denom <= 0:
        raise ValueError(
            "failure rates too high for this configuration: expected loss "
            f"per wall-clock second is {1.0 - denom:.3f} >= 1, the execution "
            "cannot complete (cf. Section III-D convergence discussion)"
        )
    wallclock = base / denom
    return wallclock, lam * wallclock


def single_level_wallclock(
    params: ModelParameters, x: float, n: float, mu: float | None = None
) -> float:
    """Single-level objective — Formula (13) (and (7) for linear speedup).

    ``E = T_e/g(N) + C(N)(x-1) + mu (T_e/(2 x g(N)) + R(N) + A)``.

    Note Formula (13) omits the ``C/2`` self-term that the multilevel
    Formula (18) includes for the failing level; both are implemented
    faithfully, and the difference is one checkpoint overhead per failure.
    With ``mu=None`` the self-consistent value ``mu = lambda(N) E`` is
    eliminated exactly (Formula (6) generalized to arbitrary ``g``).
    """
    if params.num_levels != 1:
        raise ValueError(
            f"single_level_wallclock needs a 1-level model, got "
            f"{params.num_levels} levels (use params.single_level())"
        )
    if not x > 0:
        raise ValueError(f"x must be positive, got {x}")
    if not n > 0:
        raise ValueError(f"n must be positive, got {n}")
    f = params.productive_time(n)
    cost = float(params.costs.checkpoint_costs(n)[0])
    recovery = float(params.costs.recovery_costs(n)[0])
    base = f + cost * (x - 1.0)
    per_failure = f / (2.0 * x) + recovery + params.allocation_period
    if mu is not None:
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        return base + mu * per_failure
    lam = float(params.rates.rates_per_second(n)[0])
    denom = 1.0 - lam * per_failure
    if denom <= 0:
        raise ValueError(
            "failure rate too high: expected loss per wall-clock second "
            f"is {1.0 - denom:.3f} >= 1"
        )
    return base / denom


def time_portions(
    params: ModelParameters, x, n: float, mu=None
) -> dict[str, float]:
    """Expected wall-clock decomposition (the Fig. 5/6 stacked portions).

    Returns ``{"productive", "checkpoint", "restart", "rollback",
    "wallclock"}`` where

    * productive — failure-free parallel time ``T_e/g(N)``;
    * checkpoint — ``sum_i C_i (x_i - 1)`` (scheduled checkpoints);
    * restart — ``sum_i mu_i (R_i + A)`` (recovery + allocation);
    * rollback — ``sum_i mu_i Gamma_i`` (re-executed work + wasted
      lower-level checkpoints).

    ``mu=None`` uses the self-consistent failure counts.
    """
    x_arr = _validate_xn(params, x, n)
    if mu is None:
        _, mu_arr = self_consistent_wallclock(params, x_arr, n)
    else:
        mu_arr = np.asarray(mu, dtype=float)
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    recoveries = params.costs.recovery_costs(n)
    rollback = expected_rollback_loss(params, x_arr, n)
    portions = {
        "productive": f,
        "checkpoint": float(np.sum(costs * (x_arr - 1.0))),
        "restart": float(np.sum(mu_arr * (recoveries + params.allocation_period))),
        "rollback": float(np.sum(mu_arr * rollback)),
    }
    portions["wallclock"] = sum(portions.values())
    return portions


def wallclock_gradient_x(
    params: ModelParameters, x, n: float, b
) -> np.ndarray:
    """``dE/dx_i`` under ``mu_i = b_i N`` — Formula (23), all levels.

    ``dE/dx_i = C_i - mu_i/(2 x_i^2) (T_e/g + sum_{j<i} C_j x_j)
    + C_i/2 * sum_{j>i} mu_j / x_j``.
    """
    x_arr = _validate_xn(params, x, n)
    b_arr = np.asarray(b, dtype=float)
    if b_arr.shape != x_arr.shape:
        raise ValueError(f"b shape {b_arr.shape} != levels {x_arr.shape}")
    mu = b_arr * n
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    weighted = costs * x_arr
    below = np.concatenate([[0.0], np.cumsum(weighted)[:-1]])  # sum_{j<i}
    ratio = mu / x_arr
    above = np.concatenate([np.cumsum(ratio[::-1])[::-1][1:], [0.0]])  # sum_{j>i}
    return costs - mu / (2.0 * x_arr**2) * (f + below) + costs / 2.0 * above


def wallclock_gradient_n(
    params: ModelParameters, x, n: float, b
) -> float:
    """``dE/dN`` under ``mu_i = b_i N`` — Formula (24).

    ``dE/dN = T_e/g^2 [ sum_i b_i/(2 x_i) g - (1 + sum_i mu_i/(2 x_i)) g' ]
    + sum_i C_i' (x_i - 1)
    + sum_i [ b_i (sum_{k<=i} C_k x_k/(2 x_i) + A + R_i)
    + mu_i (sum_{k<=i} C_k' x_k/(2 x_i) + R_i') ]``.
    """
    x_arr = _validate_xn(params, x, n)
    b_arr = np.asarray(b, dtype=float)
    if b_arr.shape != x_arr.shape:
        raise ValueError(f"b shape {b_arr.shape} != levels {x_arr.shape}")
    mu = b_arr * n
    te = params.te_core_seconds
    g = float(params.speedup.speedup(n))
    g_prime = float(params.speedup.derivative(n))
    costs = params.costs.checkpoint_costs(n)
    cost_primes = params.costs.checkpoint_derivatives(n)
    recoveries = params.costs.recovery_costs(n)
    recovery_primes = params.costs.recovery_derivatives(n)

    speedup_term = (
        te
        / g**2
        * (
            float(np.sum(b_arr / (2.0 * x_arr))) * g
            - (1.0 + float(np.sum(mu / (2.0 * x_arr)))) * g_prime
        )
    )
    checkpoint_term = float(np.sum(cost_primes * (x_arr - 1.0)))
    ckpt_weighted = np.cumsum(costs * x_arr) / (2.0 * x_arr)  # sum_{k<=i} C_k x_k / 2x_i
    ckpt_prime_weighted = np.cumsum(cost_primes * x_arr) / (2.0 * x_arr)
    failure_term = float(
        np.sum(
            b_arr * (ckpt_weighted + params.allocation_period + recoveries)
            + mu * (ckpt_prime_weighted + recovery_primes)
        )
    )
    return speedup_term + checkpoint_term + failure_term
