"""Vectorized sweep solver: Algorithm 1 batched across a parameter grid.

The experiment drivers and the service run Algorithm 1 once per
``(N-grid x strategy)`` point — an embarrassingly batchable shape.  This
module advances the Formula-23 sweep, the Formula-24 bisection, and the
outer mu-loop for *all* configurations at once as numpy struct-of-arrays,
with per-lane convergence masks (the discipline of :mod:`repro.sim.batch`):
finished lanes freeze and hold their values, active lanes advance, and
divergent lanes are recorded per-configuration instead of aborting the
batch.

Contract
--------
Results are **bit-identical** to the scalar :func:`repro.core.algorithm1.
optimize` path per configuration: the same :class:`Algorithm1Result`
fields, the same convergence traces and ``FixedPointDiverged`` payloads,
the same ``solver.optimize``/``solver.outer`` span trees and log lines
(replayed per-lane after the kernel finishes, in call order), and the
same ``SolverCache`` protocol — per-config canonical keys, ``memo.*``
counters incremented per lane, write-through to the persistent store.
``tests/core/test_batch_solve.py`` enforces all of it with an
equivalence matrix like the simulator's.

Fallback rules
--------------
The kernel covers the stock model family — exact ``ModelParameters`` /
``QuadraticSpeedup`` / ``LevelCostModel`` / ``FailureRates`` types with
registered scaling baselines.  Anything else (custom speedup or cost
objects, unknown kwargs, out-of-range arguments that the scalar path
would reject with its own exceptions) transparently falls back to the
scalar solver, lane by lane, so ``batch_*`` entry points accept exactly
what their scalar counterparts accept.  The ``REPRO_BATCH_SOLVE``
environment variable (and the ``batch=`` kwarg, which wins) turns the
kernel off globally; both paths then share one code route.

One documented edge: distinct-key cache lookups happen at batch setup,
before other lanes' inserts, so LRU *recency ordering* under a tiny
``set_max_entries`` bound can differ from the strict call-order scalar
path in exotic mixed hit/miss batches.  Counters, stored values, and
canonical keys are exact either way.
"""

from __future__ import annotations

import operator
import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.algorithm1 import (
    Algorithm1Result,
    OuterIterationRecord,
    optimize,
)
from repro.core.jin import solve_jin_single_level
from repro.core.memo import SOLVER_CACHE, SolverCache, canonical_key
from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import sl_ori_scale
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import named_baseline
from repro.failures.rates import FailureRates
from repro.obs.logconf import get_logger
from repro.obs.spans import span
from repro.speedup.quadratic import QuadraticSpeedup
from repro.util.iteration import FixedPointDiverged
from repro.util.units import per_day_to_per_second

#: Environment escape hatch: set to 0/false/off/no to disable the kernel.
BATCH_SOLVE_ENV_VAR = "REPRO_BATCH_SOLVE"

#: The scalar solvers being mirrored (memoized wrappers + raw functions).
_OPT_FN = optimize.__wrapped__
_JIN_FN = solve_jin_single_level.__wrapped__
_OPT_NAME = f"{_OPT_FN.__module__}.{_OPT_FN.__qualname__}"
_JIN_NAME = f"{_JIN_FN.__module__}.{_JIN_FN.__qualname__}"

_BASELINE_CODES = {"constant": 0, "linear": 1, "sqrt": 2, "log": 3}
_OPT_KEYS = frozenset(
    (
        "fixed_scale",
        "delta",
        "max_outer",
        "inner_kwargs",
        "strategy_name",
        "warm_wallclock",
    )
)
_INNER_KEYS = frozenset(("n0", "tol", "max_iter", "gauss_seidel"))
_JIN_KEYS = frozenset(("delta", "max_outer"))

#: Replayed telemetry goes through the scalar solver's logger so batch
#: and scalar runs emit byte-identical log records.
logger = get_logger("core.algorithm1")


def resolve_batch_solve(batch: bool | None = None) -> bool:
    """Resolve the batch-kernel flag: argument > environment > on.

    Mirrors :func:`repro.sim.ensemble.resolve_batch` exactly, with
    :data:`BATCH_SOLVE_ENV_VAR` as the variable.
    """
    if batch is not None:
        return bool(batch)
    text = os.environ.get(BATCH_SOLVE_ENV_VAR)
    if text is None:
        return True
    return text.strip().lower() not in ("0", "false", "off", "no")


@dataclass
class _Lane:
    """One kernel-eligible configuration, parsed to plain scalars."""

    te: float
    alloc: float
    min_s: float
    upper: float
    kappa: float
    curv: float
    base: tuple[float, ...]  # per-second rates at the baseline scale
    bscale: float
    ck: tuple[tuple[float, float, int], ...]  # (const, coef, kind) per level
    rc: tuple[tuple[float, float, int], ...]
    fixed: float | None
    n0: float | None
    warm: float | None
    delta: float
    tol: float
    gs: bool
    max_outer: int
    max_iter: int
    strategy: str

    @property
    def num_levels(self) -> int:
        return len(self.ck)

    @property
    def n_start_inner(self) -> float:
        """The scale every inner solve restarts from (fixed / n0 / upper)."""
        if self.fixed is not None:
            return self.fixed
        if self.n0 is not None:
            return self.n0
        return self.upper

    @property
    def n_init_outer(self) -> float:
        """The scale the line-1 mu initialization uses (fixed / upper)."""
        return self.fixed if self.fixed is not None else self.upper


def _parse_cost(model: object) -> tuple[float, float, int]:
    """``(const, coef, kind)`` for one stock CostModel, or raise."""
    if type(model) is not CostModel:
        raise TypeError("custom cost model")
    name = model.baseline.name
    if named_baseline(name) is not model.baseline:
        raise TypeError("ad-hoc scaling baseline")
    return (float(model.constant), float(model.coefficient), _BASELINE_CODES[name])


def _parse_lane(params: ModelParameters, kwargs: dict) -> _Lane:
    """Parse one ``optimize(params, **kwargs)`` call into a kernel lane.

    Raises (any exception) when the configuration is outside the kernel's
    coverage; the caller falls back to the scalar path, which reproduces
    the scalar solver's own error behaviour exactly.
    """
    if type(params) is not ModelParameters:
        raise TypeError("subclassed ModelParameters")
    if type(params.speedup) is not QuadraticSpeedup:
        raise TypeError("non-quadratic speedup model")
    if type(params.costs) is not LevelCostModel:
        raise TypeError("custom level cost model")
    if type(params.rates) is not FailureRates:
        raise TypeError("custom failure rates")
    unknown = set(kwargs) - _OPT_KEYS
    if unknown:
        raise TypeError(f"unknown optimize kwargs {sorted(unknown)}")

    upper = float(params.scale_upper_bound)
    min_s = float(params.min_scale)
    kappa = float(params.speedup.kappa)
    ideal = float(params.speedup.ideal_scale)
    curv = -kappa / (2.0 * ideal)  # QuadraticSpeedup.curvature, verbatim

    delta = float(kwargs.get("delta", 1e-12))
    if not delta > 0:
        raise ValueError("delta must be positive (scalar raises)")
    max_outer = operator.index(kwargs.get("max_outer", 200))
    if max_outer < 1:
        raise ValueError("max_outer < 1 (scalar behaviour is undefined)")

    fixed = kwargs.get("fixed_scale")
    if fixed is not None:
        fixed = float(fixed)
        if not min_s <= fixed <= upper:
            raise ValueError("fixed_scale out of bounds (scalar raises)")
    warm = kwargs.get("warm_wallclock")
    if warm is not None:
        if not warm > 0:
            raise ValueError("warm_wallclock must be positive (scalar raises)")
        warm = float(warm)

    inner = dict(kwargs.get("inner_kwargs") or {})
    unknown = set(inner) - _INNER_KEYS
    if unknown:
        raise TypeError(f"unknown inner kwargs {sorted(unknown)}")
    n0 = inner.get("n0")
    if n0 is not None:
        n0 = float(n0)
        if not min_s <= n0 <= upper:
            raise ValueError("n0 outside the kernel's covered range")
    tol = float(inner.get("tol", 1e-8))
    max_iter = operator.index(inner.get("max_iter", 1000))
    gs = bool(inner.get("gauss_seidel", True))

    strategy = kwargs.get("strategy_name", "ml-opt-scale")
    if not isinstance(strategy, str):
        raise TypeError("strategy_name must be a string")

    lane = _Lane(
        te=float(params.te_core_seconds),
        alloc=float(params.allocation_period),
        min_s=min_s,
        upper=upper,
        kappa=kappa,
        curv=curv,
        base=tuple(
            per_day_to_per_second(r) for r in params.rates.per_day_at_baseline
        ),
        bscale=float(params.rates.baseline_scale),
        ck=tuple(_parse_cost(c) for c in params.costs.checkpoint),
        rc=tuple(_parse_cost(r) for r in params.costs.recovery),
        fixed=fixed,
        n0=n0,
        warm=warm,
        delta=delta,
        tol=tol,
        gs=gs,
        max_outer=max_outer,
        max_iter=max_iter,
        strategy=strategy,
    )
    # Young's initialization (Formula 25) divides by the checkpoint costs
    # at the inner start scale; the scalar path raises ValueError for
    # non-positive costs, so such configs go through the scalar route.
    n_start = lane.n_start_inner
    if np.any(params.costs.checkpoint_costs(n_start) <= 0):
        raise ValueError("non-positive checkpoint cost at the start scale")
    return lane


# -- the struct-of-arrays kernel ---------------------------------------------
#
# One `_Group` holds every lane with the same level count L as (K,) and
# (K, L) arrays.  Every arithmetic expression below reproduces the scalar
# path's operation order exactly (same elementwise IEEE ops, same np.sum /
# np.cumsum reduction trees), which is what makes the outputs bit-identical
# per lane.  The only deliberate deviations are the documented NaN clamps:
# Python's ``max(1.0, nan)`` returns 1.0 where ``np.maximum`` would
# propagate NaN, so those two spots carry explicit ``np.where`` overrides.


class _Group:
    """Struct-of-arrays state for all lanes sharing one level count."""

    def __init__(self, lanes: list[_Lane]):
        self.lanes = lanes
        K = len(lanes)
        L = lanes[0].num_levels
        as_f = lambda get: np.array([get(l) for l in lanes], dtype=float)
        self.te = as_f(lambda l: l.te)
        self.alloc = as_f(lambda l: l.alloc)
        self.min_s = as_f(lambda l: l.min_s)
        self.upper = as_f(lambda l: l.upper)
        self.kappa = as_f(lambda l: l.kappa)
        self.curv = as_f(lambda l: l.curv)
        self.base = np.array([l.base for l in lanes], dtype=float)  # (K, L)
        self.bscale = as_f(lambda l: l.bscale)
        # failure_slope: rate_derivatives_per_second(1.0) = base / N_b.
        self.rate_deriv = self.base / self.bscale[:, None]
        self.ck_const = np.array([[c[0] for c in l.ck] for l in lanes])
        self.ck_coef = np.array([[c[1] for c in l.ck] for l in lanes])
        self.ck_kind = np.array(
            [[c[2] for c in l.ck] for l in lanes], dtype=np.intp
        )
        self.rc_const = np.array([[r[0] for r in l.rc] for l in lanes])
        self.rc_coef = np.array([[r[1] for r in l.rc] for l in lanes])
        self.rc_kind = np.array(
            [[r[2] for r in l.rc] for l in lanes], dtype=np.intp
        )
        self.has_fixed = np.array(
            [l.fixed is not None for l in lanes], dtype=bool
        )
        self.n_start = as_f(lambda l: l.n_start_inner)
        self.n_init = as_f(lambda l: l.n_init_outer)
        self.delta = as_f(lambda l: l.delta)
        self.tol = as_f(lambda l: l.tol)
        self.gs = np.array([l.gs for l in lanes], dtype=bool)
        self.max_outer = np.array([l.max_outer for l in lanes], dtype=np.intp)
        self.max_iter = np.array([l.max_iter for l in lanes], dtype=np.intp)
        self.K, self.L = K, L

    # -- model pieces, vectorized lane-wise -----------------------------------

    def _g(self, idx, n):
        """``g(N)`` — QuadraticSpeedup.speedup, verbatim op order."""
        return self.curv[idx] * n * n + self.kappa[idx] * n

    def _g_prime(self, idx, n):
        return 2.0 * self.curv[idx] * n + self.kappa[idx]

    def _baseline(self, kind, n):
        """Stock-baseline values H(N) per (lane, level) — (k, L)."""
        z = np.zeros_like(n)
        return np.choose(
            kind, [z[:, None], n[:, None], np.sqrt(n)[:, None], np.log1p(n)[:, None]]
        )

    def _baseline_prime(self, kind, n):
        z = np.zeros_like(n)
        one = np.ones_like(n)
        sq = 0.5 / np.sqrt(np.maximum(n, 1e-300))
        lg = 1.0 / (1.0 + n)
        return np.choose(
            kind, [z[:, None], one[:, None], sq[:, None], lg[:, None]]
        )

    def _ck(self, idx, n):
        """Checkpoint costs C_i(N) — CostModel.__call__ op order."""
        return self.ck_const[idx] + self.ck_coef[idx] * self._baseline(
            self.ck_kind[idx], n
        )

    def _ck_prime(self, idx, n):
        return self.ck_coef[idx] * self._baseline_prime(self.ck_kind[idx], n)

    def _rc(self, idx, n):
        return self.rc_const[idx] + self.rc_coef[idx] * self._baseline(
            self.rc_kind[idx], n
        )

    def _rc_prime(self, idx, n):
        return self.rc_coef[idx] * self._baseline_prime(self.rc_kind[idx], n)

    def _f(self, idx, n):
        """Productive time ``f(T_e, N) = T_e / g(N)``."""
        return self.te[idx] / self._g(idx, n)

    def _mu_at(self, idx, n, w):
        """``expected_failures(n, w)`` — base * (n / N_b), then * w."""
        return (self.base[idx] * (n / self.bscale[idx])[:, None]) * w[:, None]

    # -- Formula 23: one interval sweep ---------------------------------------

    def _sweep(self, idx, x, n, b):
        mu = b * n[:, None]
        f = self._f(idx, n)
        costs = self._ck(idx, n)
        gsm = self.gs[idx]
        current = x.copy()
        for i in range(self.L):
            src = np.where(gsm[:, None], current, x)
            below = np.sum(costs[:, :i] * src[:, :i], axis=1)
            above = np.sum(mu[:, i + 1 :] / src[:, i + 1 :], axis=1)
            denom = 2.0 * costs[:, i] * (1.0 + 0.5 * above)
            value = mu[:, i] * (f + below) / denom
            sq = np.sqrt(np.maximum(value, 0.0))
            # Python's max(1.0, nan) is 1.0; np.maximum would keep the NaN.
            current[:, i] = np.where(np.isnan(sq), 1.0, np.maximum(1.0, sq))
        return current

    # -- Formula 25: per-level Young initialization ---------------------------

    def _young(self, idx, n, mu):
        p = self._f(idx, n)
        costs = self._ck(idx, n)
        sq = np.sqrt((mu * p[:, None]) / (2.0 * costs))
        return np.where(np.isnan(sq), 1.0, np.maximum(1.0, sq))

    # -- Formula 24: dE/dN and the bisection scale solve ----------------------

    def _grad_n(self, idx, x, n, b):
        """``wallclock_gradient_n``, term for term."""
        mu = b * n[:, None]
        te = self.te[idx]
        g = self._g(idx, n)
        g_prime = self._g_prime(idx, n)
        costs = self._ck(idx, n)
        cost_primes = self._ck_prime(idx, n)
        recov = self._rc(idx, n)
        recov_primes = self._rc_prime(idx, n)
        speedup_term = (
            te
            / np.power(g, 2.0)
            * (
                np.sum(b / (2.0 * x), axis=1) * g
                - (1.0 + np.sum(mu / (2.0 * x), axis=1)) * g_prime
            )
        )
        checkpoint_term = np.sum(cost_primes * (x - 1.0), axis=1)
        ckpt_weighted = np.cumsum(costs * x, axis=1) / (2.0 * x)
        ckpt_prime_weighted = np.cumsum(cost_primes * x, axis=1) / (2.0 * x)
        failure_term = np.sum(
            b * (ckpt_weighted + self.alloc[idx][:, None] + recov)
            + mu * (ckpt_prime_weighted + recov_primes),
            axis=1,
        )
        return speedup_term + checkpoint_term + failure_term

    def _solve_scale(self, idx, x, b):
        """Vectorized `_solve_scale`: returns ``(n, boundary)`` per lane.

        The scalar bisection's zero/sign-equality preconditions are
        provably unreachable for lanes routed here (``f(lo) == 0`` and
        ``f(hi) == 0`` are caught by the boundary checks; the bracket
        endpoints then have strictly opposite — or NaN — signs), so only
        the masked bisection loop itself is reproduced.
        """
        n_out = np.empty(len(idx))
        boundary = np.zeros(len(idx), dtype=bool)
        hi0 = self.upper[idx]
        lo0 = self.min_s[idx]
        d_hi = self._grad_n(idx, x, hi0, b)
        at_hi = d_hi <= 0
        n_out[at_hi] = hi0[at_hi]
        boundary[at_hi] = True
        rest = ~at_hi
        if np.any(rest):
            r = np.flatnonzero(rest)
            d_lo = self._grad_n(idx[r], x[r], lo0[r], b[r])
            at_lo = d_lo >= 0
            n_out[r[at_lo]] = lo0[r[at_lo]]
            boundary[r[at_lo]] = True
            bi = r[~at_lo]
            if bi.size:
                lo = lo0[bi].copy()
                hi = hi0[bi].copy()
                f_lo = d_lo[~at_lo].copy()
                sub = idx[bi]
                xs = x[bi]
                bs = b[bi]
                pos = np.arange(bi.size)
                root = np.empty(bi.size)
                for _ in range(200):
                    mid = 0.5 * (lo + hi)
                    f_mid = self._grad_n(sub, xs, mid, bs)
                    stop = (f_mid == 0.0) | ((hi - lo) <= 0.5)
                    if np.any(stop):
                        root[pos[stop]] = mid[stop]
                        keep = ~stop
                        lo, hi, f_lo = lo[keep], hi[keep], f_lo[keep]
                        mid, f_mid = mid[keep], f_mid[keep]
                        sub, xs, bs = sub[keep], xs[keep], bs[keep]
                        pos = pos[keep]
                        if not pos.size:
                            break
                    move = np.sign(f_mid) == np.sign(f_lo)
                    lo = np.where(move, mid, lo)
                    f_lo = np.where(move, f_mid, f_lo)
                    hi = np.where(move, hi, mid)
                if pos.size:
                    root[pos] = 0.5 * (lo + hi)
                n_out[bi] = root
        return n_out, boundary

    # -- Formula 21: E(T_w) ---------------------------------------------------

    def _wallclock(self, idx, x, n, mu):
        f = self._f(idx, n)
        costs = self._ck(idx, n)
        recov = self._rc(idx, n)
        rollback = f[:, None] / (2.0 * x) + np.cumsum(costs * x, axis=1) / (
            2.0 * x
        )
        per_failure = rollback + self.alloc[idx][:, None] + recov
        return (
            f
            + np.sum(costs * (x - 1.0), axis=1)
            + np.sum(mu * per_failure, axis=1)
        )


def _solve_group(group: _Group) -> list[tuple]:
    """Run Algorithm 1 for every lane of one level-count group.

    Returns one outcome tuple per lane, in lane order:

    * ``("ok", Algorithm1Result)`` — converged;
    * ``("outer-diverged", payload)`` — the line-11 loop exhausted
      ``max_outer`` (the scalar path's for-else raise);
    * ``("inner-diverged", payload)`` — a line-5 inner solve exhausted
      ``max_iter``;
    * ``("rerun", reason)`` — the lane left the kernel's covered regime
      mid-flight (e.g. a negative wall-clock estimate, which the scalar
      path rejects with ``ValueError``); the caller re-runs it scalar.

    Overflow/invalid warnings are silenced for the whole pass: lanes
    heading for divergence legitimately push through inf/nan (the
    scalar path's Python-float arithmetic does the same silently), and
    the NaN-clamp rules below reproduce the scalar results bit-exactly.
    """
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        return _solve_group_inner(group)


def _solve_group_inner(group: _Group) -> list[tuple]:
    K = group.K
    lanes = group.lanes
    outcomes: list[tuple | None] = [None] * K
    alive = np.ones(K, dtype=bool)
    all_idx = np.arange(K)

    # Lines 1-3: mu from the failure-free productive time (or warm E(T_w)).
    warm = np.array(
        [l.warm if l.warm is not None else np.nan for l in lanes]
    )
    has_warm = np.array([l.warm is not None for l in lanes], dtype=bool)
    w = np.where(has_warm, warm, group._f(all_idx, group.n_init))
    mu = group._mu_at(all_idx, group.n_init, w)
    histories: list[list] = [
        [tuple(float(m) for m in mu[k])] for k in range(K)
    ]
    traces: list[list] = [[] for _ in range(K)]
    inner_totals = np.zeros(K, dtype=np.intp)
    x_warm = np.zeros((K, group.L))
    resid_last = np.zeros(K)

    for t in range(1, int(group.max_outer.max()) + 1):
        act = np.flatnonzero(alive)
        if act.size == 0:
            break
        # Line 4: freeze the wall-clock estimate into the slope b.
        b = group.rate_deriv[act] * w[act][:, None]

        # Line 5: the inner convex solve (Formulas 23/24), masked.
        if t == 1:
            xs = group._young(
                act, group.n_start[act], b * group.n_start[act][:, None]
            )
        else:
            xs = x_warm[act]
        ns = group.n_start[act].copy()
        k = act.size
        iters = np.zeros(k, dtype=np.intp)
        inner_fail = np.zeros(k, dtype=bool)
        max_it = group.max_iter[act]
        inner_fail[max_it < 1] = True  # scalar: empty range -> immediate raise
        live = np.flatnonzero(max_it >= 1)
        it = 0
        while live.size:
            it += 1
            sub = act[live]
            x_old = xs[live]
            n_old = ns[live]
            x_new = group._sweep(sub, x_old, n_old, b[live])
            n_new = n_old.copy()
            nf = np.flatnonzero(~group.has_fixed[sub])
            if nf.size:
                n_sol, _ = group._solve_scale(sub[nf], x_new[nf], b[live][nf])
                n_new[nf] = n_sol
            rc = np.max(
                np.abs(x_new - x_old) / np.maximum(np.abs(x_old), 1.0), axis=1
            )
            nterm = np.abs(n_new - n_old) / np.maximum(np.abs(n_old), 1.0)
            res = np.maximum(rc, nterm)
            xs[live] = x_new
            ns[live] = n_new
            iters[live] = it
            done = res <= group.tol[sub]
            exhausted = ~done & (it >= max_it[live])
            inner_fail[live[exhausted]] = True
            live = live[~(done | exhausted)]

        fail_pos = np.flatnonzero(inner_fail)
        for p in fail_pos:
            lane_k = int(act[p])
            outcomes[lane_k] = (
                "inner-diverged",
                {
                    "strategy": lanes[lane_k].strategy,
                    "trace": list(traces[lane_k]),
                    "iteration": t,
                    "max_iter": lanes[lane_k].max_iter,
                    "x": xs[p].copy(),
                    "n": float(ns[p]),
                },
            )
            alive[lane_k] = False
        ok_pos = np.flatnonzero(~inner_fail)
        if ok_pos.size == 0:
            continue
        sub = act[ok_pos]
        x_fin = xs[ok_pos]
        n_fin = ns[ok_pos]
        it_fin = iters[ok_pos]

        # Line 6: E(T_w) at the inner solution with the frozen mu.
        ew = group._wallclock(sub, x_fin, n_fin, b[ok_pos] * n_fin[:, None])
        inner_totals[sub] += it_fin
        x_warm[sub] = x_fin
        w[sub] = ew

        # A negative wall-clock estimate leaves the kernel's regime: the
        # scalar path raises ValueError inside expected_failures.  NaN
        # stays in-kernel (the scalar comparison is False for NaN too).
        neg = ew < 0.0
        for p in np.flatnonzero(neg):
            lane_k = int(sub[p])
            outcomes[lane_k] = ("rerun", "negative wallclock estimate")
            alive[lane_k] = False
        keep = ~neg
        if not np.any(keep):
            continue
        sub = sub[keep]
        x_fin, n_fin, it_fin, ew = (
            x_fin[keep], n_fin[keep], it_fin[keep], ew[keep],
        )

        # Lines 7-11: refresh mu, measure the stopping residual.
        mu_new = group._mu_at(sub, n_fin, ew)
        res_out = np.max(
            np.abs(mu_new - mu[sub]) / np.maximum(np.abs(mu[sub]), 1.0),
            axis=1,
        )
        mu[sub] = mu_new
        resid_last[sub] = res_out
        for j in range(sub.size):
            lane_k = int(sub[j])
            lane = lanes[lane_k]
            mu_t = tuple(float(m) for m in mu_new[j])
            histories[lane_k].append(mu_t)
            traces[lane_k].append(
                OuterIterationRecord(
                    index=t,
                    mu=mu_t,
                    expected_wallclock=float(ew[j]),
                    residual=float(res_out[j]),
                    inner_iterations=int(it_fin[j]),
                    scale=float(n_fin[j]),
                )
            )
            if res_out[j] <= group.delta[lane_k]:
                solution = Solution(
                    intervals=tuple(float(v) for v in x_fin[j]),
                    scale=float(n_fin[j]),
                    expected_wallclock=float(ew[j]),
                    mu=mu_t,
                    strategy=lane.strategy,
                    outer_iterations=t,
                    inner_iterations=int(inner_totals[lane_k]),
                )
                outcomes[lane_k] = (
                    "ok",
                    Algorithm1Result(
                        solution=solution,
                        outer_iterations=t,
                        inner_iterations_total=int(inner_totals[lane_k]),
                        mu_history=tuple(histories[lane_k]),
                        trace=tuple(traces[lane_k]),
                    ),
                )
                alive[lane_k] = False
            elif t == lane.max_outer:
                outcomes[lane_k] = (
                    "outer-diverged",
                    {
                        "strategy": lane.strategy,
                        "max_outer": lane.max_outer,
                        "residual": float(res_out[j]),
                        "mu": mu_new[j].copy(),
                        "history": histories[lane_k],
                        "trace": traces[lane_k],
                    },
                )
                alive[lane_k] = False

    for k in range(K):  # pragma: no cover - safety net, unreachable
        if outcomes[k] is None:
            outcomes[k] = ("rerun", "kernel did not resolve the lane")
    return outcomes


# -- telemetry replay ---------------------------------------------------------
#
# The kernel computes silently; span trees and log lines are replayed per
# lane at finish time, in call order, producing the identical
# solver.optimize / solver.outer structure (and identical logger records)
# the scalar path emits while iterating.


def _replay_trace_records(strategy: str, trace) -> None:
    for rec in trace:
        with span(
            "solver.outer", attributes={"iteration": rec.index}
        ) as outer_span:
            if outer_span is not None:
                outer_span.set_attribute("residual", rec.residual)
                outer_span.set_attribute(
                    "inner_iterations", rec.inner_iterations
                )
            logger.debug(
                "%s outer %d: E(T_w)=%.8g residual=%.3e inner=%d scale=%.6g",
                strategy, rec.index, rec.expected_wallclock, rec.residual,
                rec.inner_iterations, rec.scale,
            )


def _replay_success(result: Algorithm1Result, strategy: str) -> Algorithm1Result:
    with span(
        "solver.optimize", attributes={"strategy": strategy}
    ) as optimize_span:
        _replay_trace_records(strategy, result.trace)
        if optimize_span is not None:
            optimize_span.set_attribute(
                "outer_iterations", result.outer_iterations
            )
            optimize_span.set_attribute(
                "inner_iterations", result.inner_iterations_total
            )
    solution = result.solution
    logger.info(
        "%s converged in %d outer iterations (%d inner total): "
        "E(T_w)=%.8g at N=%.6g",
        strategy, result.outer_iterations, result.inner_iterations_total,
        solution.expected_wallclock, solution.scale,
    )
    return result


def _replay_outer_divergence(payload: dict) -> None:
    strategy = payload["strategy"]
    with span("solver.optimize", attributes={"strategy": strategy}):
        _replay_trace_records(strategy, payload["trace"])
        raise FixedPointDiverged(
            f"Algorithm 1 did not converge within {payload['max_outer']} "
            f"outer iterations (failure rates may be unrealistically high); "
            f"last residual {payload['residual']:.3e}",
            last_value=payload["mu"],
            history=payload["history"],
            trace=payload["trace"],
        )


def _replay_inner_divergence(payload: dict) -> None:
    strategy = payload["strategy"]
    with span("solver.optimize", attributes={"strategy": strategy}):
        _replay_trace_records(strategy, payload["trace"])
        with span(
            "solver.outer", attributes={"iteration": payload["iteration"]}
        ):
            raise FixedPointDiverged(
                f"inner multilevel fixed point did not converge in "
                f"{payload['max_iter']} sweeps",
                last_value=(payload["x"], payload["n"]),
            )


# -- the request ledger and cache protocol -----------------------------------


@dataclass
class _Request:
    """One queued solve and its cache-protocol mode.

    Modes: ``scalar`` (kernel off or config not covered — finish calls the
    public memoized wrapper), ``resolved`` (setup-time cache hit),
    ``owner`` (owns a kernel lane; the setup miss was counted),
    ``opt-alias`` (duplicate optimize key in this batch; lookup deferred
    to finish so the owner's insert lands first), and the jin-level
    variants mirroring the nested memoized optimize call:
    ``jin-owner`` / ``jin-insert`` / ``jin-opt-alias`` / ``jin-alias``.
    """

    kind: str  # "opt" | "jin"
    params: ModelParameters
    kwargs: dict
    mode: str = "scalar"
    lane: _Lane | None = None
    key: object = None
    opt_key: object = None
    collapsed: ModelParameters | None = None
    nested_kwargs: dict | None = None
    primary: "_Request | None" = None
    store: bool = True
    outcome: tuple | None = None
    value: object = None
    error: BaseException | None = None
    finished: bool = False


class BatchSolver:
    """Queue scalar-equivalent solves, run them as one vector kernel.

    Usage::

        solver = BatchSolver()
        handles = [solver.add_optimize(p, **kw) for p, kw in work]
        solver.solve()                    # one struct-of-arrays kernel pass
        results = [solver.finish(h) for h in handles]   # in add order

    ``finish`` returns exactly what the scalar call would have returned
    (or raises exactly what it would have raised), replays the scalar
    span/log telemetry, and performs the scalar cache protocol for its
    lane.  Call ``finish`` in add order — that is the order the scalar
    loop would have executed, and the order the alias bookkeeping
    assumes.
    """

    def __init__(
        self, *, batch: bool | None = None, cache: SolverCache | None = None
    ):
        self._enabled = resolve_batch_solve(batch)
        self._cache = cache if cache is not None else SOLVER_CACHE
        self._requests: list[_Request] = []
        self._opt_primary: dict = {}
        self._jin_primary: dict = {}
        self._solved = False

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def kernel_lanes(self) -> int:
        """Number of queued requests the vector kernel will solve."""
        return sum(1 for r in self._requests if r.lane is not None)

    def add_optimize(self, params: ModelParameters, **kwargs) -> int:
        """Queue one ``optimize(params, **kwargs)``; returns a handle."""
        req = _Request(kind="opt", params=params, kwargs=kwargs)
        self._requests.append(req)
        handle = len(self._requests) - 1
        if not self._enabled:
            return handle
        try:
            lane = _parse_lane(params, kwargs)
            key = canonical_key(_OPT_NAME, params, kwargs)
        except Exception:
            return handle  # scalar fallback
        req.key = key
        req.store = not self._cache.bypassing
        if key in self._opt_primary:
            req.mode = "opt-alias"
            req.primary = self._opt_primary[key]
            return handle
        found, value = self._cache.lookup(key)
        if found:
            req.mode = "resolved"
            req.value = value
            return handle
        req.mode = "owner"
        req.lane = lane
        self._opt_primary[key] = req
        return handle

    def add_jin(self, params: ModelParameters, **kwargs) -> int:
        """Queue one ``solve_jin_single_level(params, **kwargs)`` call."""
        req = _Request(kind="jin", params=params, kwargs=kwargs)
        self._requests.append(req)
        handle = len(self._requests) - 1
        if not self._enabled:
            return handle
        try:
            if set(kwargs) - _JIN_KEYS:
                raise TypeError("unknown jin kwargs")
            collapsed = (
                params.single_level() if params.num_levels > 1 else params
            )
            # The nested memoized optimize call, kwargs verbatim.
            nested = {
                "delta": kwargs.get("delta", 1e-12),
                "max_outer": kwargs.get("max_outer", 200),
                "strategy_name": "sl-opt-scale",
            }
            lane = _parse_lane(collapsed, nested)
            jin_key = canonical_key(_JIN_NAME, params, kwargs)
            opt_key = canonical_key(_OPT_NAME, collapsed, nested)
        except Exception:
            return handle  # scalar fallback
        req.key = jin_key
        req.opt_key = opt_key
        req.collapsed = collapsed
        req.nested_kwargs = nested
        req.store = not self._cache.bypassing
        if jin_key in self._jin_primary:
            req.mode = "jin-alias"
            req.primary = self._jin_primary[jin_key]
            return handle
        found, value = self._cache.lookup(jin_key)
        if found:
            req.mode = "resolved"
            req.value = value
            return handle
        self._jin_primary[jin_key] = req
        if opt_key in self._opt_primary:
            req.mode = "jin-opt-alias"
            req.primary = self._opt_primary[opt_key]
            return handle
        found, value = self._cache.lookup(opt_key)
        if found:
            req.mode = "jin-insert"
            req.value = value
            return handle
        req.mode = "jin-owner"
        req.lane = lane
        self._opt_primary[opt_key] = req
        return handle

    def solve(self) -> "BatchSolver":
        """Run the vector kernel over all owned lanes (idempotent)."""
        if self._solved:
            return self
        self._solved = True
        groups: dict[int, list[_Request]] = {}
        for req in self._requests:
            if req.lane is not None:
                groups.setdefault(req.lane.num_levels, []).append(req)
        for reqs in groups.values():
            try:
                outcomes = _solve_group(_Group([r.lane for r in reqs]))
            except Exception as exc:  # pragma: no cover - safety net
                for r in reqs:
                    r.outcome = ("rerun", f"kernel error: {exc!r}")
                continue
            for r, out in zip(reqs, outcomes):
                r.outcome = out
        return self

    def finish(self, handle: int):
        """Resolve one queued solve: scalar-identical value or exception."""
        req = self._requests[handle]
        if req.finished:
            if req.error is not None:
                raise req.error
            return req.value
        if not self._solved:
            self.solve()
        try:
            value = self._finish(req)
        except BaseException as exc:
            req.finished = True
            req.error = exc
            raise
        req.finished = True
        req.value = value
        return value

    def _finish(self, req: _Request):
        mode = req.mode
        if mode == "scalar":
            if req.kind == "jin":
                return solve_jin_single_level(req.params, **req.kwargs)
            return optimize(req.params, **req.kwargs)
        if mode == "resolved":
            return req.value
        if mode == "owner":
            value = self._execute(req)
            if req.store:
                self._cache.insert(req.key, value)
            return value
        if mode == "opt-alias":
            found, value = self._cache.lookup(req.key)
            if found:
                return value
            value = self._execute(req.primary)
            if req.store:
                self._cache.insert(req.key, value)
            return value
        if mode == "jin-owner":
            value = self._execute(req)
            if req.store:
                self._cache.insert(req.opt_key, value)
                self._cache.insert(req.key, value)
            return value
        if mode == "jin-insert":
            if req.store:
                self._cache.insert(req.key, req.value)
            return req.value
        if mode == "jin-opt-alias":
            found, value = self._cache.lookup(req.opt_key)
            if not found:
                value = self._execute(req.primary)
                if req.store:
                    self._cache.insert(req.opt_key, value)
            if req.store:
                self._cache.insert(req.key, value)
            return value
        if mode == "jin-alias":
            found, value = self._cache.lookup(req.key)
            if found:
                return value
            value = self._jin_nested(req)
            if req.store:
                self._cache.insert(req.key, value)
            return value
        raise RuntimeError(f"unknown request mode {mode!r}")  # pragma: no cover

    def _execute(self, req: _Request):
        """Turn a kernel outcome into the scalar call's value/exception."""
        kind_, payload = req.outcome
        if kind_ == "ok":
            return _replay_success(payload, req.lane.strategy)
        if kind_ == "outer-diverged":
            _replay_outer_divergence(payload)
        if kind_ == "inner-diverged":
            _replay_inner_divergence(payload)
        # Rerun: the raw scalar function.  The cache miss was already
        # counted at setup and errors are never stored, so the unwrapped
        # call reproduces the scalar path's counters, spans, and raise.
        if req.kind == "jin":
            return _OPT_FN(req.collapsed, **req.nested_kwargs)
        return _OPT_FN(req.params, **req.kwargs)

    def _jin_nested(self, req: _Request):
        """Mirror the jin solver's nested memoized optimize call."""
        found, value = self._cache.lookup(req.opt_key)
        if found:
            return value
        target = req.primary
        while target is not None and target.lane is None:
            target = target.primary
        if target is None or target.outcome is None:
            value = _OPT_FN(req.collapsed, **req.nested_kwargs)
        else:
            value = self._execute(target)
        if req.store:
            self._cache.insert(req.opt_key, value)
        return value


# -- public sweep entry points ------------------------------------------------


def batch_optimize(
    params_list,
    kwargs_list=None,
    *,
    batch: bool | None = None,
    cache: SolverCache | None = None,
    return_exceptions: bool = False,
):
    """Run ``optimize`` for every configuration, batched.

    Returns one :class:`Algorithm1Result` per configuration, in order —
    bit-identical to looping the scalar :func:`repro.core.algorithm1.
    optimize`.  With ``return_exceptions=True``, per-config
    :class:`FixedPointDiverged` exceptions are returned in place instead
    of raised, so one divergent configuration does not poison the
    converged lanes (other exception types still raise).
    """
    params_list = list(params_list)
    if kwargs_list is None:
        kwargs_list = [{} for _ in params_list]
    else:
        kwargs_list = [dict(kw or {}) for kw in kwargs_list]
        if len(kwargs_list) != len(params_list):
            raise ValueError(
                f"{len(kwargs_list)} kwargs for {len(params_list)} configs"
            )
    solver = BatchSolver(batch=batch, cache=cache)
    handles = [
        solver.add_optimize(p, **kw)
        for p, kw in zip(params_list, kwargs_list)
    ]
    solver.solve()
    results = []
    for handle in handles:
        if return_exceptions:
            try:
                results.append(solver.finish(handle))
            except FixedPointDiverged as exc:
                results.append(exc)
        else:
            results.append(solver.finish(handle))
    return results


def batch_compare_all_strategies(
    params_list,
    *,
    batch: bool | None = None,
    cache: SolverCache | None = None,
    **kwargs,
) -> list[dict[str, Solution]]:
    """Batched :func:`repro.core.solutions.compare_all_strategies`.

    Solves every iterative strategy of every configuration through one
    kernel pass; per-config results (dict order, cache protocol, span
    replay order, closed-form SL(ori-scale)) match the scalar loop
    exactly.
    """
    params_list = list(params_list)
    solver = BatchSolver(batch=batch, cache=cache)
    queued = []
    for params in params_list:
        h_ml = solver.add_optimize(params, strategy_name="ml-opt-scale", **kwargs)
        h_sl = solver.add_jin(params)
        h_ori = solver.add_optimize(
            params,
            fixed_scale=params.scale_upper_bound,
            strategy_name="ml-ori-scale",
            **kwargs,
        )
        queued.append((params, h_ml, h_sl, h_ori))
    solver.solve()
    results = []
    for params, h_ml, h_sl, h_ori in queued:
        results.append(
            {
                "ml-opt-scale": solver.finish(h_ml).solution,
                "sl-opt-scale": solver.finish(h_sl).solution,
                "ml-ori-scale": solver.finish(h_ori).solution,
                "sl-ori-scale": sl_ori_scale(params),
            }
        )
    return results


def sweep_scales(
    params_list,
    scales,
    *,
    warm_start: bool = True,
    batch: bool | None = None,
    cache: SolverCache | None = None,
    return_exceptions: bool = False,
    **kwargs,
):
    """Sweep ``max_scale`` over an N-grid, one batched solve per grid point.

    For every scale ``N`` in ``scales`` each base configuration is
    re-solved with ``max_scale=N``.  With ``warm_start=True`` (default)
    each grid point seeds Algorithm 1's line-1 wall-clock estimate from
    the *previous* grid point's converged ``E(T_w)`` (the
    ``warm_wallclock`` kwarg), which cuts outer-iteration counts on
    monotone grids; configurations that diverged at the previous point
    fall back to the cold initialization.  Returns a list (per scale) of
    lists (per configuration) of results, following ``batch_optimize``'s
    ``return_exceptions`` convention.
    """
    params_list = list(params_list)
    results = []
    previous: list[Algorithm1Result | None] = [None] * len(params_list)
    for scale in scales:
        step_params = [
            replace(p, max_scale=float(scale)) for p in params_list
        ]
        kwargs_list = []
        for prev in previous:
            kw = dict(kwargs)
            if warm_start and prev is not None:
                kw["warm_wallclock"] = prev.solution.expected_wallclock
            kwargs_list.append(kw)
        step = batch_optimize(
            step_params,
            kwargs_list,
            batch=batch,
            cache=cache,
            return_exceptions=True,
        )
        previous = [
            r if isinstance(r, Algorithm1Result) else None for r in step
        ]
        if not return_exceptions:
            for r in step:
                if isinstance(r, BaseException):
                    raise r
        results.append(step)
    return results
