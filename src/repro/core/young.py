"""Young's first-order optimum checkpoint interval (1974) and Formula (25).

Young's classic result: for checkpoint cost ``C`` and mean time between
failures ``M``, the optimal checkpoint *interval* is ``tau = sqrt(2 C M)``.
Re-expressed in this library's variables — productive time ``P``, expected
failure count ``mu`` over the run (so ``M ~ P / mu``) — the optimal *number
of intervals* is ``x = P / tau = sqrt(mu P / (2 C))``, which is exactly the
paper's Formula (25) used to initialize the multilevel fixed point (and, at
the top level, the SL(ori-scale) baseline).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.notation import ModelParameters


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Classic Young interval ``tau = sqrt(2 C M)`` (seconds)."""
    if checkpoint_cost <= 0:
        raise ValueError(f"checkpoint_cost must be positive, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ValueError(f"mtbf must be positive, got {mtbf}")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def young_num_intervals(
    mu: float, productive_time: float, checkpoint_cost: float
) -> float:
    """Formula (25): ``x = sqrt(mu * P / (2 C))`` (at least 1)."""
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    if productive_time <= 0:
        raise ValueError(
            f"productive_time must be positive, got {productive_time}"
        )
    if checkpoint_cost <= 0:
        raise ValueError(f"checkpoint_cost must be positive, got {checkpoint_cost}")
    return max(1.0, math.sqrt(mu * productive_time / (2.0 * checkpoint_cost)))


def young_initial_intervals(
    params: ModelParameters, n: float, mu
) -> np.ndarray:
    """Per-level Young initialization for the multilevel fixed point.

    Applies Formula (25) level by level: each level is initialized as if it
    were alone, ignoring cross-level checkpoint interactions — "it leads to
    the suboptimal checkpoint interval result for a particular level i
    without taking into account the impact of checkpoint overheads at other
    levels".
    """
    mu_arr = np.asarray(mu, dtype=float)
    if mu_arr.size != params.num_levels:
        raise ValueError(
            f"{mu_arr.size} mu values for {params.num_levels} levels"
        )
    p = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    return np.array(
        [
            young_num_intervals(float(m), p, float(c))
            for m, c in zip(mu_arr, costs)
        ]
    )
