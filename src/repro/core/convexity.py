"""Numerical convexity analysis (Section III-A, "Difficulty Analysis").

The paper argues that the *self-consistent* objective (Formula 6 — with the
expected failure count eliminated through ``E(Y) = lambda E(T_w)``) is not
convex in ``(x, N)``: "they [the second-order derivatives] are actually
lower than 0 in some situations".  These helpers probe that claim
numerically: central-difference Hessians, local-convexity checks, and a
grid search that returns a concrete witness point where the Hessian of the
self-consistent single-level objective is indefinite.

Algorithm 1 sidesteps the non-convexity by freezing ``mu`` (the inner
problem *is* convex — also checkable with these tools), which is exactly
what the tests verify.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import single_level_wallclock


def hessian_2d(
    func: Callable[[float, float], float],
    point: tuple[float, float],
    *,
    rel_step: float = 1e-4,
) -> np.ndarray:
    """Central-difference 2x2 Hessian of ``func`` at ``point``.

    Steps are relative to each coordinate's magnitude (floored at
    ``rel_step``) so the probe works across the x ~ 1e2 / N ~ 1e5 scale
    disparity of this problem.
    """
    x0, y0 = float(point[0]), float(point[1])
    hx = max(abs(x0), 1.0) * rel_step
    hy = max(abs(y0), 1.0) * rel_step
    f = func

    fxx = (f(x0 + hx, y0) - 2.0 * f(x0, y0) + f(x0 - hx, y0)) / hx**2
    fyy = (f(x0, y0 + hy) - 2.0 * f(x0, y0) + f(x0, y0 - hy)) / hy**2
    fxy = (
        f(x0 + hx, y0 + hy)
        - f(x0 + hx, y0 - hy)
        - f(x0 - hx, y0 + hy)
        + f(x0 - hx, y0 - hy)
    ) / (4.0 * hx * hy)
    return np.array([[fxx, fxy], [fxy, fyy]])


def is_locally_convex(
    func: Callable[[float, float], float],
    point: tuple[float, float],
    *,
    rel_step: float = 1e-4,
    tol: float = 0.0,
) -> bool:
    """Whether the numerical Hessian at ``point`` is positive semidefinite.

    ``tol`` allows a small negative eigenvalue slack for finite-difference
    noise.
    """
    h = hessian_2d(func, point, rel_step=rel_step)
    eigenvalues = np.linalg.eigvalsh(h)
    return bool(np.all(eigenvalues >= -abs(tol)))


def nonconvexity_witness(
    params: ModelParameters,
    *,
    x_grid=None,
    n_grid=None,
    rel_step: float = 1e-3,
) -> Optional[tuple[float, float]]:
    """Find ``(x, N)`` where the self-consistent objective is non-convex.

    Scans a grid of the single-level self-consistent wall-clock
    (Formula 6) and returns the first point whose Hessian has a negative
    eigenvalue, or ``None`` when every probed point is locally convex.
    ``params`` must be a single-level model (``params.single_level()``
    collapses a multilevel one).

    This is the constructive version of the paper's Section III-A claim;
    the accompanying test asserts a witness exists for a realistic
    configuration.
    """
    if params.num_levels != 1:
        raise ValueError("nonconvexity_witness needs a single-level model")
    upper = params.scale_upper_bound
    if x_grid is None:
        x_grid = np.geomspace(2.0, 5_000.0, 12)
    if n_grid is None:
        n_grid = np.geomspace(max(params.min_scale, 2.0), 0.98 * upper, 12)

    def objective(x: float, n: float) -> float:
        if x <= 0 or n <= 0 or n >= upper:
            return np.inf
        try:
            return single_level_wallclock(params, x, n)
        except ValueError:
            return np.inf

    for x0 in x_grid:
        for n0 in n_grid:
            center = objective(x0, n0)
            if not np.isfinite(center):
                continue
            h = hessian_2d(objective, (x0, n0), rel_step=rel_step)
            if not np.all(np.isfinite(h)):
                continue
            eigenvalues = np.linalg.eigvalsh(h)
            if eigenvalues[0] < -1e-12 * max(1.0, abs(center)):
                return (float(x0), float(n0))
    return None
