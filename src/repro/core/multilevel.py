"""Inner solver of the multilevel model (Formulas 23/24, Section III-D).

Under the Algorithm-1 condition ``mu_i(N) = b_i N`` the objective
(Formula 21) is convex in each variable, and the first-order conditions
form the system of Formulas (23) (one per level) and (24).  Direct solution
is impractical ("extremely complicated equation"), so the paper uses fixed-
point iteration:

* the level equations rearrange into the explicit update

  ``x_i <- sqrt( mu_i (T_e/g + sum_{j<i} C_j x_j)
  / (2 C_i (1 + 1/2 sum_{j>i} mu_j / x_j)) )``

  swept Gauss-Seidel style (each level sees its predecessors' fresh
  values — the ablation bench compares Jacobi sweeps);

* the scale equation (24) is solved by bisection over
  ``[min_scale, N^(*)]``; with no interior root the optimum sits on the
  boundary.

Initialization is per-level Young (Formula 25).  The solver also powers
the fixed-scale variant (the paper's previous work [22], the ML(ori-scale)
baseline) by simply skipping the scale update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.wallclock import (
    expected_wallclock,
    wallclock_gradient_n,
)
from repro.core.young import young_initial_intervals
from repro.util.iteration import FixedPointDiverged, bisect_root, relative_change


@dataclass(frozen=True)
class MultilevelInnerSolution:
    """Optimum of the inner (frozen-mu) multilevel problem.

    Attributes
    ----------
    intervals:
        Optimal ``(x_1, ..., x_L)``.
    scale:
        Optimal ``N`` (continuous relaxation).
    expected_wallclock:
        Objective (Formula 21) at the optimum with ``mu_i = b_i N``.
    mu:
        The failure counts at the solution scale.
    iterations:
        Fixed-point sweeps used.
    boundary:
        True when the scale landed on a bound rather than an interior root.
    """

    intervals: tuple[float, ...]
    scale: float
    expected_wallclock: float
    mu: tuple[float, ...]
    iterations: int
    boundary: bool


def _sweep_intervals(
    params: ModelParameters,
    x: np.ndarray,
    n: float,
    b: np.ndarray,
    *,
    gauss_seidel: bool = True,
) -> np.ndarray:
    """One sweep of the Formula (23) fixed-point updates over all levels."""
    mu = b * n
    f = params.productive_time(n)
    costs = params.costs.checkpoint_costs(n)
    levels = params.num_levels
    current = x.copy()
    source = current if gauss_seidel else x
    for i in range(levels):
        below = float(np.sum(costs[:i] * source[:i]))
        above = float(np.sum(mu[i + 1 :] / source[i + 1 :]))
        denom = 2.0 * costs[i] * (1.0 + 0.5 * above)
        value = mu[i] * (f + below) / denom
        current[i] = max(1.0, math.sqrt(max(value, 0.0)))
    return current


def _solve_scale(
    params: ModelParameters, x: np.ndarray, n_prev: float, b: np.ndarray
) -> tuple[float, bool]:
    """Solve Formula (24) for ``N`` by bisection; returns ``(N, boundary)``."""
    lo = params.min_scale
    hi = params.scale_upper_bound
    deriv = lambda nn: wallclock_gradient_n(params, x, nn, b)
    d_hi = deriv(hi)
    if d_hi <= 0:
        return hi, True
    d_lo = deriv(lo)
    if d_lo >= 0:
        return lo, True
    root, _ = bisect_root(deriv, lo, hi, xtol=0.5)
    return root, False


def solve_inner(
    params: ModelParameters,
    b,
    *,
    x0=None,
    n0: float | None = None,
    fixed_scale: float | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    gauss_seidel: bool = True,
) -> MultilevelInnerSolution:
    """Solve the frozen-mu multilevel problem (Algorithm 1, line 5).

    Parameters
    ----------
    params:
        Model parameters.
    b:
        Per-core expected failure counts (``mu_i = b_i N``), from
        :meth:`ModelParameters.failure_slope`.
    x0:
        Initial interval counts; default per-level Young (Formula 25).
    n0:
        Initial scale; default the upper bound ``N^(*)``.
    fixed_scale:
        When given, ``N`` is pinned (the ML(ori-scale)/[22] behaviour) and
        only the interval system (23) is iterated.
    gauss_seidel:
        Sweep style for the interval updates (False = Jacobi; ablation).
    """
    b_arr = np.asarray(b, dtype=float)
    if b_arr.size != params.num_levels:
        raise ValueError(f"{b_arr.size} b values for {params.num_levels} levels")
    if np.any(b_arr < 0):
        raise ValueError(f"b must be non-negative, got {b_arr}")
    if fixed_scale is not None:
        if not params.min_scale <= fixed_scale <= params.scale_upper_bound:
            raise ValueError(
                f"fixed_scale {fixed_scale} outside "
                f"[{params.min_scale}, {params.scale_upper_bound}]"
            )
        n = float(fixed_scale)
    else:
        n = float(n0) if n0 is not None else params.scale_upper_bound
    if x0 is None:
        x = young_initial_intervals(params, n, b_arr * n)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.size != params.num_levels:
            raise ValueError(f"x0 has {x.size} entries for {params.num_levels} levels")
        if np.any(x <= 0):
            raise ValueError(f"x0 must be positive, got {x}")

    boundary = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        x_new = _sweep_intervals(params, x, n, b_arr, gauss_seidel=gauss_seidel)
        if fixed_scale is None:
            n_new, boundary = _solve_scale(params, x_new, n, b_arr)
        else:
            n_new = n
        residual = max(
            relative_change(x_new, x), abs(n_new - n) / max(abs(n), 1.0)
        )
        x, n = x_new, n_new
        if residual <= tol:
            break
    else:
        raise FixedPointDiverged(
            f"inner multilevel fixed point did not converge in {max_iter} sweeps",
            last_value=(x, n),
        )
    mu = b_arr * n
    value = expected_wallclock(params, x, n, mu)
    return MultilevelInnerSolution(
        intervals=tuple(float(v) for v in x),
        scale=float(n),
        expected_wallclock=float(value),
        mu=tuple(float(m) for m in mu),
        iterations=iterations,
        boundary=boundary,
    )


def optimize_intervals_fixed_scale(
    params: ModelParameters,
    b,
    scale: float,
    **kwargs,
) -> MultilevelInnerSolution:
    """Optimize intervals only, at a pinned scale (previous work [22])."""
    return solve_inner(params, b, fixed_scale=scale, **kwargs)
