"""Algorithm 1: the outer mu-iteration (Section III-B).

The inner solver (:mod:`repro.core.multilevel`) needs the condition that
the expected failure counts depend only on the scale — ``mu_i(N) = b_i N``
with ``b_i`` proportional to a *frozen* wall-clock estimate.  Algorithm 1
removes the condition iteratively:

1. initialize ``mu_i`` from the failure-free productive time
   ``f(T_e, N) = T_e / g(N)`` (lines 1-3);
2. solve the inner convex problem for ``(x*, N*)`` (line 5);
3. evaluate ``E(T_w)`` at the solution (line 6);
4. recompute ``mu_i = lambda_i(N*) * E(T_w)`` (lines 7-10);
5. repeat until ``max_i |mu_i' - mu_i| <= delta`` (line 11).

The paper reports convergence in 7-15 outer iterations at delta = 1e-12
and identifies only unrealistically high failure rates as a divergence
risk; this implementation raises :class:`FixedPointDiverged` with the
trajectory in that case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memo import memoized_solver
from repro.core.multilevel import MultilevelInnerSolution, solve_inner
from repro.core.notation import ModelParameters, Solution
from repro.util.iteration import FixedPointDiverged


@dataclass(frozen=True)
class Algorithm1Result:
    """Converged output of Algorithm 1.

    Attributes
    ----------
    solution:
        The final :class:`~repro.core.notation.Solution` (intervals, scale,
        self-consistent wall-clock, mu).
    outer_iterations:
        Outer mu-iterations used (the paper's 7-15 claim).
    inner_iterations_total:
        Sum of inner fixed-point sweeps across outer iterations.
    mu_history:
        Per-outer-iteration mu vectors (for convergence plots).
    """

    solution: Solution
    outer_iterations: int
    inner_iterations_total: int
    mu_history: tuple[tuple[float, ...], ...]


@memoized_solver
def optimize(
    params: ModelParameters,
    *,
    fixed_scale: float | None = None,
    delta: float = 1e-12,
    max_outer: int = 200,
    inner_kwargs: dict | None = None,
    strategy_name: str = "ml-opt-scale",
) -> Algorithm1Result:
    """Run Algorithm 1 to co-optimize intervals and (optionally) scale.

    Parameters
    ----------
    params:
        Model parameters (any number of levels; single-level params give
        the SL strategies).
    fixed_scale:
        Pin ``N`` (ML(ori-scale)/SL(ori-scale) behaviour) instead of
        optimizing it.
    delta:
        Convergence threshold on ``max_i |mu_i' - mu_i|`` (line 11); the
        paper uses 1e-12 relative to counts of order 1-1e3, which we apply
        as a relative threshold to be scale-free.
    max_outer:
        Outer-iteration budget before declaring divergence.
    inner_kwargs:
        Extra arguments for :func:`repro.core.multilevel.solve_inner`.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    inner_kwargs = dict(inner_kwargs or {})

    # Lines 1-3: initialize mu from the failure-free productive time.
    n_init = fixed_scale if fixed_scale is not None else params.scale_upper_bound
    wallclock_estimate = params.productive_time(n_init)
    mu = params.rates.expected_failures(n_init, wallclock_estimate)
    mu_history: list[tuple[float, ...]] = [tuple(float(m) for m in mu)]

    inner_total = 0
    inner: MultilevelInnerSolution | None = None
    x_warm = None
    for outer in range(1, max_outer + 1):
        b = params.failure_slope(wallclock_estimate)
        # Line 5: inner convex solve under the frozen-mu condition.
        inner = solve_inner(
            params,
            b,
            fixed_scale=fixed_scale,
            x0=x_warm,
            **inner_kwargs,
        )
        inner_total += inner.iterations
        x_warm = np.asarray(inner.intervals)
        # Line 6: wall-clock at the solution (with the frozen mu).
        wallclock_estimate = inner.expected_wallclock
        # Lines 7-10: refresh mu from the new wall-clock estimate.
        mu_new = params.rates.expected_failures(inner.scale, wallclock_estimate)
        residual = float(
            np.max(np.abs(mu_new - mu) / np.maximum(np.abs(mu), 1.0))
        )
        mu = mu_new
        mu_history.append(tuple(float(m) for m in mu))
        if residual <= delta:
            break
    else:
        raise FixedPointDiverged(
            f"Algorithm 1 did not converge within {max_outer} outer "
            f"iterations (failure rates may be unrealistically high); "
            f"last residual {residual:.3e}",
            last_value=mu,
            history=mu_history,
        )

    solution = Solution(
        intervals=inner.intervals,
        scale=inner.scale,
        expected_wallclock=inner.expected_wallclock,
        mu=tuple(float(m) for m in mu),
        strategy=strategy_name,
        outer_iterations=outer,
        inner_iterations=inner_total,
    )
    return Algorithm1Result(
        solution=solution,
        outer_iterations=outer,
        inner_iterations_total=inner_total,
        mu_history=tuple(mu_history),
    )
