"""Algorithm 1: the outer mu-iteration (Section III-B).

The inner solver (:mod:`repro.core.multilevel`) needs the condition that
the expected failure counts depend only on the scale — ``mu_i(N) = b_i N``
with ``b_i`` proportional to a *frozen* wall-clock estimate.  Algorithm 1
removes the condition iteratively:

1. initialize ``mu_i`` from the failure-free productive time
   ``f(T_e, N) = T_e / g(N)`` (lines 1-3);
2. solve the inner convex problem for ``(x*, N*)`` (line 5);
3. evaluate ``E(T_w)`` at the solution (line 6);
4. recompute ``mu_i = lambda_i(N*) * E(T_w)`` (lines 7-10);
5. repeat until ``max_i |mu_i' - mu_i| <= delta`` (line 11).

The paper reports convergence in 7-15 outer iterations at delta = 1e-12
and identifies only unrealistically high failure rates as a divergence
risk; this implementation raises :class:`FixedPointDiverged` with the
trajectory in that case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memo import memoized_solver
from repro.core.multilevel import MultilevelInnerSolution, solve_inner
from repro.core.notation import ModelParameters, Solution
from repro.obs.logconf import get_logger
from repro.obs.spans import span
from repro.util.iteration import FixedPointDiverged

logger = get_logger("core.algorithm1")


@dataclass(frozen=True)
class OuterIterationRecord:
    """Telemetry for one outer mu-iteration of Algorithm 1.

    Attributes
    ----------
    index:
        1-based outer-iteration number.
    mu:
        The refreshed expected failure counts ``mu_i`` after this
        iteration (lines 7-10).
    expected_wallclock:
        ``E(T_w)`` of the inner solution evaluated this iteration (line 6).
    residual:
        Relative change ``max_i |mu_i' - mu_i| / max(|mu_i|, 1)`` against
        the previous iterate (the line-11 stopping metric).
    inner_iterations:
        Inner fixed-point sweeps the line-5 solve used this iteration.
    scale:
        The inner solution's execution scale ``N``.
    """

    index: int
    mu: tuple[float, ...]
    expected_wallclock: float
    residual: float
    inner_iterations: int
    scale: float


def format_convergence_table(
    trace: tuple[OuterIterationRecord, ...]
) -> str:
    """Render a per-iteration mu_i / E(T_w) convergence table."""
    if not trace:
        return "(empty convergence trace)"
    num_levels = len(trace[0].mu)
    header = (
        f"{'iter':>4}  "
        + "  ".join(f"{f'mu_{i}':>12}" for i in range(1, num_levels + 1))
        + f"  {'E(T_w) s':>14}  {'residual':>10}  {'inner':>5}"
    )
    lines = [header, "-" * len(header)]
    for record in trace:
        lines.append(
            f"{record.index:>4}  "
            + "  ".join(f"{m:>12.6g}" for m in record.mu)
            + f"  {record.expected_wallclock:>14.8g}"
            + f"  {record.residual:>10.3e}"
            + f"  {record.inner_iterations:>5}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class Algorithm1Result:
    """Converged output of Algorithm 1.

    Attributes
    ----------
    solution:
        The final :class:`~repro.core.notation.Solution` (intervals, scale,
        self-consistent wall-clock, mu).
    outer_iterations:
        Outer mu-iterations used (the paper's 7-15 claim).
    inner_iterations_total:
        Sum of inner fixed-point sweeps across outer iterations.
    mu_history:
        Per-outer-iteration mu vectors (for convergence plots).
    trace:
        Per-outer-iteration :class:`OuterIterationRecord` telemetry —
        ``(mu_i, E(T_w), residual, inner iterations, scale)`` for every
        line-5/6/7-10 pass, in order.  ``len(trace) == outer_iterations``.
    """

    solution: Solution
    outer_iterations: int
    inner_iterations_total: int
    mu_history: tuple[tuple[float, ...], ...]
    trace: tuple[OuterIterationRecord, ...] = ()


@memoized_solver
def optimize(
    params: ModelParameters,
    *,
    fixed_scale: float | None = None,
    delta: float = 1e-12,
    max_outer: int = 200,
    inner_kwargs: dict | None = None,
    strategy_name: str = "ml-opt-scale",
    warm_wallclock: float | None = None,
) -> Algorithm1Result:
    """Run Algorithm 1 to co-optimize intervals and (optionally) scale.

    Parameters
    ----------
    params:
        Model parameters (any number of levels; single-level params give
        the SL strategies).
    fixed_scale:
        Pin ``N`` (ML(ori-scale)/SL(ori-scale) behaviour) instead of
        optimizing it.
    delta:
        Convergence threshold on ``max_i |mu_i' - mu_i|`` (line 11); the
        paper uses 1e-12 relative to counts of order 1-1e3, which we apply
        as a relative threshold to be scale-free.
    max_outer:
        Outer-iteration budget before declaring divergence.
    inner_kwargs:
        Extra arguments for :func:`repro.core.multilevel.solve_inner`.
    warm_wallclock:
        Seed the line-1 wall-clock estimate with a previous solution's
        ``E(T_w)`` instead of the failure-free productive time.  Used by
        monotone scale sweeps (:func:`repro.core.batch_solve.sweep_scales`):
        the neighbouring grid point's wall-clock is a far better initial
        guess, so the outer loop converges in fewer iterations.  The
        converged fixed point is the same; only the trajectory shortens.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if warm_wallclock is not None and not warm_wallclock > 0:
        raise ValueError(
            f"warm_wallclock must be positive, got {warm_wallclock}"
        )
    inner_kwargs = dict(inner_kwargs or {})

    # Lines 1-3: initialize mu from the failure-free productive time (or
    # from a neighbouring grid point's converged wall-clock when warm).
    n_init = fixed_scale if fixed_scale is not None else params.scale_upper_bound
    if warm_wallclock is not None:
        wallclock_estimate = float(warm_wallclock)
    else:
        wallclock_estimate = params.productive_time(n_init)
    mu = params.rates.expected_failures(n_init, wallclock_estimate)
    mu_history: list[tuple[float, ...]] = [tuple(float(m) for m in mu)]

    inner_total = 0
    inner: MultilevelInnerSolution | None = None
    x_warm = None
    trace: list[OuterIterationRecord] = []
    with span(
        "solver.optimize", attributes={"strategy": strategy_name}
    ) as optimize_span:
        for outer in range(1, max_outer + 1):
            with span(
                "solver.outer", attributes={"iteration": outer}
            ) as outer_span:
                b = params.failure_slope(wallclock_estimate)
                # Line 5: inner convex solve under the frozen-mu condition.
                inner = solve_inner(
                    params,
                    b,
                    fixed_scale=fixed_scale,
                    x0=x_warm,
                    **inner_kwargs,
                )
                inner_total += inner.iterations
                x_warm = np.asarray(inner.intervals)
                # Line 6: wall-clock at the solution (with the frozen mu).
                wallclock_estimate = inner.expected_wallclock
                # Lines 7-10: refresh mu from the new wall-clock estimate.
                mu_new = params.rates.expected_failures(
                    inner.scale, wallclock_estimate
                )
                residual = float(
                    np.max(np.abs(mu_new - mu) / np.maximum(np.abs(mu), 1.0))
                )
                mu = mu_new
                mu_history.append(tuple(float(m) for m in mu))
                trace.append(
                    OuterIterationRecord(
                        index=outer,
                        mu=tuple(float(m) for m in mu),
                        expected_wallclock=float(wallclock_estimate),
                        residual=residual,
                        inner_iterations=inner.iterations,
                        scale=float(inner.scale),
                    )
                )
                if outer_span is not None:
                    outer_span.set_attribute("residual", residual)
                    outer_span.set_attribute(
                        "inner_iterations", inner.iterations
                    )
                logger.debug(
                    "%s outer %d: E(T_w)=%.8g residual=%.3e inner=%d scale=%.6g",
                    strategy_name, outer, wallclock_estimate, residual,
                    inner.iterations, inner.scale,
                )
            if residual <= delta:
                break
        else:
            raise FixedPointDiverged(
                f"Algorithm 1 did not converge within {max_outer} outer "
                f"iterations (failure rates may be unrealistically high); "
                f"last residual {residual:.3e}",
                last_value=mu,
                history=mu_history,
                trace=trace,
            )
        if optimize_span is not None:
            optimize_span.set_attribute("outer_iterations", outer)
            optimize_span.set_attribute("inner_iterations", inner_total)

    solution = Solution(
        intervals=inner.intervals,
        scale=inner.scale,
        expected_wallclock=inner.expected_wallclock,
        mu=tuple(float(m) for m in mu),
        strategy=strategy_name,
        outer_iterations=outer,
        inner_iterations=inner_total,
    )
    logger.info(
        "%s converged in %d outer iterations (%d inner total): "
        "E(T_w)=%.8g at N=%.6g",
        strategy_name, outer, inner_total, inner.expected_wallclock,
        inner.scale,
    )
    return Algorithm1Result(
        solution=solution,
        outer_iterations=outer,
        inner_iterations_total=inner_total,
        mu_history=tuple(mu_history),
        trace=tuple(trace),
    )
