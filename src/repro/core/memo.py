"""Solver-result memoization keyed by canonical parameter hashes.

The experiment drivers re-solve identical configurations constantly: the
fig7 registry entry re-runs the fig5 solves, Table IV shares strategy
solves across its two allocation blocks' probe/main splits, and the
sweeps touch the same ``ModelParameters`` with different decision
variables.  Every solver output is a frozen dataclass, so identical
inputs can safely share one result object — this module provides the
process-wide cache that makes that sharing automatic.

Key construction (:func:`canonical_key`) walks the parameter object
graph structurally: dataclasses and plain objects become
``(qualified-name, sorted field tokens)`` tuples, floats are tokenized
via ``float.hex`` (bit-exact — no repr rounding), and
:class:`~repro.costs.scaling.ScalingBaseline` collapses to its
registered name (its lambdas carry no state).  Two parameter objects
hash equal iff they are field-for-field bit-identical, so *any* field
change — rates, costs, allocation period, scale bounds — is a miss.

Usage::

    from repro.core.memo import SOLVER_CACHE, memoized_solver

    @memoized_solver
    def optimize(params, **kwargs): ...

    SOLVER_CACHE.stats()    # CacheStats(hits=.., misses=.., size=..)
    SOLVER_CACHE.clear()    # drop everything, reset counters
    with SOLVER_CACHE.bypass():   # e.g. sensitivity sweeps
        optimize(params)    # always recomputed, never stored

Two service-grade extensions (both off by default, so one-shot CLI runs
behave exactly as before):

* ``SOLVER_CACHE.set_max_entries(n)`` bounds the memory store with LRU
  eviction (counter ``memo.evictions``) — a long-lived service would
  otherwise grow without bound;
* ``SOLVER_CACHE.attach_store(store)`` layers a persistent store (see
  :mod:`repro.service.store`) underneath: memory misses consult the
  store (counter ``memo.persist_hits``) before computing, and computed
  results are written through, so a restarted process answers repeated
  configurations from disk without re-solving.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator

import numpy as np

from repro.costs.scaling import ScalingBaseline
from repro.obs.metrics import METRICS


def _token(obj: Any) -> Hashable:
    """A hashable, structure-preserving token for one value."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # hex() is bit-exact and distinguishes -0.0/0.0; inf/nan included.
        return ("f", float(obj).hex())
    if isinstance(obj, (np.floating, np.integer)):
        return _token(obj.item())
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(_token(v) for v in obj))
    if isinstance(obj, dict):
        return (
            "map",
            tuple(sorted((str(k), _token(v)) for k, v in obj.items())),
        )
    if isinstance(obj, np.ndarray):
        return ("nd", obj.shape, str(obj.dtype), _token(obj.ravel().tolist()))
    if isinstance(obj, ScalingBaseline):
        return ("baseline", obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            _qualname(obj),
            tuple(
                (f.name, _token(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if callable(obj):
        # Stateless strategy callables (e.g. ArrivalProcess subclasses
        # without attributes) reduce to their identity.
        return ("fn", getattr(obj, "__module__", ""), getattr(obj, "__qualname__", repr(obj)))
    if hasattr(obj, "__dict__"):
        # Plain parameter objects (QuadraticSpeedup & friends): class +
        # sorted instance attributes.
        return (
            _qualname(obj),
            tuple(sorted((k, _token(v)) for k, v in vars(obj).items())),
        )
    return ("repr", repr(obj))


def _qualname(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_key(*parts: Any) -> Hashable:
    """Canonical hashable key for a solver invocation.

    Pass the model parameters plus anything else that selects the result
    (strategy name, solver kwargs).  Bit-identical inputs produce equal
    keys; any field change produces a different key.
    """
    return tuple(_token(p) for p in parts)


#: Sentinel a persistent store returns for "no entry" (see
#: :meth:`SolverCache.attach_store`); re-exported by
#: :mod:`repro.service.store`.
PERSIST_MISS = object()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters and current entry count.

    ``evictions`` counts LRU drops (only under ``set_max_entries``);
    ``persist_hits`` counts memory misses answered by an attached
    persistent store instead of a recompute.
    """

    hits: int
    misses: int
    size: int
    evictions: int = 0
    persist_hits: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses; bypassed calls are not counted)."""
        return self.hits + self.misses


class SolverCache:
    """Thread-safe keyed memo store with hit/miss counters and a bypass.

    One compute may run per key at a time per process; results are frozen
    dataclasses, so sharing the cached object between callers is safe.
    The cache is process-local — executor workers each hold their own —
    which is exactly the right scope: solver results feed the *dispatch*
    side (the parent process), while workers only replay simulator
    configs.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._store: dict[Hashable, Any] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._persist_hits = 0
        self._bypass_depth = 0
        self._max_entries = max_entries
        self._persistent: Any = None

    def set_max_entries(self, max_entries: int | None) -> None:
        """Bound the store with LRU eviction (``None`` removes the bound).

        A long-lived service accumulates one entry per distinct
        configuration forever without this; evictions are counted on
        ``memo.evictions`` and in :meth:`stats`.
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        with self._lock:
            self._max_entries = max_entries
            self._evict_over_bound()

    def attach_store(self, store: Any) -> None:
        """Layer a persistent store underneath the in-memory dict.

        ``store`` must provide ``get(key)`` returning the value or
        :data:`PERSIST_MISS`, and ``put(key, value)``
        (:class:`repro.service.store.ResultStore` is the shipped
        implementation).  Memory misses consult it before computing;
        computed values are written through.
        """
        with self._lock:
            self._persistent = store

    def detach_store(self, store: Any | None = None) -> None:
        """Remove the persistent layer (a no-op if ``store`` is not the
        one currently attached)."""
        with self._lock:
            if store is None or self._persistent is store:
                self._persistent = None

    def _evict_over_bound(self) -> None:
        # Caller holds the lock.  Plain-dict insertion order is the LRU
        # order because hits reinsert their key (pop + assign).
        while (
            self._max_entries is not None
            and len(self._store) > self._max_entries
        ):
            oldest = next(iter(self._store))
            del self._store[oldest]
            self._evictions += 1
            METRICS.counter("memo.evictions").inc()
        METRICS.gauge("memo.size").set(len(self._store))

    def _insert(self, key: Hashable, value: Any) -> None:
        # Caller holds the lock.
        self._store.pop(key, None)
        self._store[key] = value
        self._evict_over_bound()

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing (and storing) on miss.

        Lookup order: in-memory dict, then the attached persistent store
        (if any), then ``compute()`` with write-through to both layers.
        Hit/miss counts are mirrored into the process-wide metrics
        registry (``memo.hits`` / ``memo.misses`` / ``memo.persist_hits``,
        gauge ``memo.size``) so cache behaviour shows up in run summaries
        and ``BENCH_*`` exports.
        """
        if self._bypass_depth > 0:
            METRICS.counter("memo.bypassed").inc()
            return compute()
        with self._lock:
            if key in self._store:
                self._hits += 1
                METRICS.counter("memo.hits").inc()
                value = self._store.pop(key)
                self._store[key] = value  # refresh LRU recency
                return value
            self._misses += 1
            METRICS.counter("memo.misses").inc()
            persistent = self._persistent
        if persistent is not None:
            stored = persistent.get(key)
            if stored is not PERSIST_MISS:
                with self._lock:
                    self._persist_hits += 1
                    METRICS.counter("memo.persist_hits").inc()
                    self._insert(key, stored)
                return stored
        # Compute outside the lock: solves can be slow and re-entrant
        # (Algorithm 1 never calls back into the cache, but strategy
        # wrappers may nest).  A racing duplicate compute is benign — the
        # results are identical and frozen.
        value = compute()
        with self._lock:
            self._insert(key, value)
        if persistent is not None:
            persistent.put(key, value)
        return value

    @property
    def bypassing(self) -> bool:
        """Whether a :meth:`bypass` context is currently active."""
        return self._bypass_depth > 0

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """One counted lookup without a compute: ``(found, value)``.

        Behaves exactly like the lookup half of :meth:`get_or_compute` —
        memory hit (LRU refresh + ``memo.hits``), then the attached
        persistent store (``memo.persist_hits`` + promotion into memory),
        else a counted miss.  Under :meth:`bypass` it counts
        ``memo.bypassed`` and reports a miss, mirroring the compute-always
        semantics.  The batch solver uses this with :meth:`insert` to
        reproduce the scalar path's cache protocol lane by lane.
        """
        if self._bypass_depth > 0:
            METRICS.counter("memo.bypassed").inc()
            return False, None
        with self._lock:
            if key in self._store:
                self._hits += 1
                METRICS.counter("memo.hits").inc()
                value = self._store.pop(key)
                self._store[key] = value  # refresh LRU recency
                return True, value
            self._misses += 1
            METRICS.counter("memo.misses").inc()
            persistent = self._persistent
        if persistent is not None:
            stored = persistent.get(key)
            if stored is not PERSIST_MISS:
                with self._lock:
                    self._persist_hits += 1
                    METRICS.counter("memo.persist_hits").inc()
                    self._insert(key, stored)
                return True, stored
        return False, None

    def insert(self, key: Hashable, value: Any) -> None:
        """Store a computed value exactly like :meth:`get_or_compute` does.

        Write-through to the attached persistent store included; a no-op
        under :meth:`bypass` (bypassed computes are never stored).
        """
        if self._bypass_depth > 0:
            return
        with self._lock:
            self._insert(key, value)
            persistent = self._persistent
        if persistent is not None:
            persistent.put(key, value)

    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters.

        An attached persistent store is *not* cleared (that is its whole
        point: surviving restarts); detach or ``store.clear()`` it
        explicitly."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._persist_hits = 0

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._store),
                evictions=self._evictions,
                persist_hits=self._persist_hits,
            )

    @contextmanager
    def bypass(self) -> Iterator[None]:
        """Compute-always context: no lookups, no stores, no counter drift.

        The sensitivity sweeps use this so that a dense grid of perturbed
        parameters neither pollutes the cache nor reuses a stale entry
        when a perturbation happens to cancel out.
        """
        with self._lock:
            self._bypass_depth += 1
        try:
            yield
        finally:
            with self._lock:
                self._bypass_depth -= 1


#: The process-wide solver cache all strategy solves funnel through.
SOLVER_CACHE = SolverCache()


def publish_cache_metrics(cache: SolverCache | None = None) -> CacheStats:
    """Materialize the cache's stats into the process metrics registry.

    The ``memo.*`` counters are incremented live as the cache runs, but a
    counter that never fired (``memo.evictions`` on an unbounded cache,
    ``memo.persist_hits`` without a store) would be absent from exports.
    This registers every ``memo.*`` series — zero-valued when idle — and
    refreshes the ``memo.size`` gauge, so ``GET /metrics`` and
    ``repro obs --last`` always expose the full cache picture.  Returns
    the stats snapshot for convenience.
    """
    cache = cache if cache is not None else SOLVER_CACHE
    stats = cache.stats()
    for name in (
        "memo.hits",
        "memo.misses",
        "memo.evictions",
        "memo.persist_hits",
        "memo.bypassed",
    ):
        METRICS.counter(name)  # get-or-create: present even at zero
    METRICS.gauge("memo.size").set(stats.size)
    return stats


def memoized_solver(fn: Callable) -> Callable:
    """Memoize ``fn(params, **kwargs)`` in :data:`SOLVER_CACHE`.

    The key is ``(module.qualname, canonical(params), canonical(kwargs))``;
    positional arguments beyond ``params`` are deliberately unsupported so
    keys stay unambiguous.
    """

    @functools.wraps(fn)
    def wrapper(params, **kwargs):
        key = canonical_key(
            f"{fn.__module__}.{fn.__qualname__}", params, kwargs
        )
        return SOLVER_CACHE.get_or_compute(
            key, lambda: fn(params, **kwargs)
        )

    wrapper.__wrapped__ = fn
    return wrapper
