"""The paper's core contribution: multilevel checkpoint-model optimization.

Modules
-------
``notation``
    Parameter and solution dataclasses mirroring Table I.
``wallclock``
    The expected-wall-clock model: rollback loss (Formula 18), the
    multilevel objective (Formula 21), the self-consistent single-level
    closed form (Formula 6).
``convexity``
    Numerical convexity probes behind the Section III-A difficulty analysis.
``single_level``
    Single-level optimizers: closed form for linear speedup (Formulas
    10/11) and the fixed-point/bisection method for nonlinear speedup
    (Formulas 16/17).
``multilevel``
    The inner convex solver for all levels + scale (Formulas 23/24 with
    Young-formula initialization, Formula 25).
``algorithm1``
    The outer mu-iteration (Algorithm 1) that removes the
    fixed-failure-count condition.
``young`` / ``daly``
    Classic checkpoint-interval baselines.
``jin``
    The Jin et al. single-level interval+scale baseline (SL(opt-scale)).
``solutions``
    The four named strategies of the evaluation behind one interface.
``batch_solve``
    The vectorized sweep solver: Algorithm 1 for a whole (N-grid x
    strategy) sweep as one struct-of-arrays kernel pass, bit-identical
    per configuration to ``algorithm1.optimize``.
"""

from repro.core.memo import (
    SOLVER_CACHE,
    CacheStats,
    SolverCache,
    canonical_key,
    memoized_solver,
)
from repro.core.notation import ModelParameters, Solution
from repro.core.wallclock import (
    expected_rollback_loss,
    expected_wallclock,
    self_consistent_wallclock,
    single_level_wallclock,
    time_portions,
)
from repro.core.convexity import (
    hessian_2d,
    is_locally_convex,
    nonconvexity_witness,
)
from repro.core.single_level import (
    SingleLevelSolution,
    solve_single_level_linear,
    solve_single_level_nonlinear,
)
from repro.core.multilevel import (
    MultilevelInnerSolution,
    optimize_intervals_fixed_scale,
    solve_inner,
)
from repro.core.algorithm1 import Algorithm1Result, optimize as algorithm1_optimize
from repro.core.young import (
    young_interval,
    young_num_intervals,
    young_initial_intervals,
)
from repro.core.daly import daly_interval
from repro.core.corrections import (
    RetryAwareCost,
    corrected_parameters,
    corrected_wallclock,
    effective_cost,
)
from repro.core.jin import solve_jin_single_level
from repro.core.selection import (
    LevelSelectionResult,
    optimize_level_selection,
    reduce_parameters,
)
from repro.core.sensitivity import SensitivityEntry, sensitivity_report
from repro.core.solutions import (
    STRATEGY_NAMES,
    compare_all_strategies,
    ml_opt_scale,
    ml_ori_scale,
    sl_opt_scale,
    sl_ori_scale,
)
from repro.core.batch_solve import (
    BatchSolver,
    batch_compare_all_strategies,
    batch_optimize,
    resolve_batch_solve,
    sweep_scales,
)

__all__ = [
    "ModelParameters",
    "Solution",
    "expected_rollback_loss",
    "expected_wallclock",
    "self_consistent_wallclock",
    "single_level_wallclock",
    "time_portions",
    "hessian_2d",
    "is_locally_convex",
    "nonconvexity_witness",
    "SingleLevelSolution",
    "solve_single_level_linear",
    "solve_single_level_nonlinear",
    "MultilevelInnerSolution",
    "optimize_intervals_fixed_scale",
    "solve_inner",
    "Algorithm1Result",
    "algorithm1_optimize",
    "young_interval",
    "young_num_intervals",
    "young_initial_intervals",
    "daly_interval",
    "solve_jin_single_level",
    "RetryAwareCost",
    "corrected_parameters",
    "corrected_wallclock",
    "effective_cost",
    "LevelSelectionResult",
    "optimize_level_selection",
    "reduce_parameters",
    "SensitivityEntry",
    "sensitivity_report",
    "STRATEGY_NAMES",
    "compare_all_strategies",
    "ml_opt_scale",
    "ml_ori_scale",
    "sl_opt_scale",
    "sl_ori_scale",
    "BatchSolver",
    "batch_compare_all_strategies",
    "batch_optimize",
    "resolve_batch_solve",
    "sweep_scales",
]
