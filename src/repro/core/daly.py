"""Daly's higher-order optimum checkpoint interval (2006).

Daly refines Young's first-order estimate with a perturbation solution of
the full exponential-failure model:

``tau = sqrt(2 C M) [1 + (1/3) sqrt(C / (2M)) + (1/9) (C / (2M))] - C``
for ``C < 2M``, and ``tau = M`` otherwise.

Included as an additional baseline/reference (the paper discusses Daly [4]
alongside Young [3] as the classic single-level fixed-scale treatments) and
used by the ablation benches to show the multilevel solvers subsume the
classic formulas when collapsed to one level.
"""

from __future__ import annotations

import math


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimal checkpoint interval (seconds)."""
    if checkpoint_cost <= 0:
        raise ValueError(f"checkpoint_cost must be positive, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ValueError(f"mtbf must be positive, got {mtbf}")
    c, m = checkpoint_cost, mtbf
    if c >= 2.0 * m:
        return m
    ratio = c / (2.0 * m)
    return math.sqrt(2.0 * c * m) * (
        1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    ) - c
