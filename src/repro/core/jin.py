"""The Jin et al. baseline: single-level interval + scale co-optimization.

Jin, Chen and Sun (ICPP'10) optimize the checkpoint interval and the number
of processes simultaneously, but for a *single-level* (PFS-only)
checkpoint model.  The paper evaluates it as **SL(opt-scale)** ("improved
Young's formula based on [23]").

Mapped onto this library: collapse the model to its top level with the
*total* failure rate (in a single-level model every failure — transient or
hardware — forces a rollback to the PFS checkpoint), then co-optimize
``(x, N)`` with the single-level machinery plus the outer mu-iteration.
The paper criticizes [23] for using Newton's method without a convexity
proof; our realization inherits the Algorithm-1 convergence structure
instead, which only makes the baseline *stronger*.
"""

from __future__ import annotations

from repro.core.algorithm1 import Algorithm1Result, optimize
from repro.core.memo import memoized_solver
from repro.core.notation import ModelParameters


@memoized_solver
def solve_jin_single_level(
    params: ModelParameters,
    *,
    delta: float = 1e-12,
    max_outer: int = 200,
) -> Algorithm1Result:
    """SL(opt-scale): single-level interval+scale co-optimization.

    ``params`` may be multilevel; it is collapsed via
    :meth:`ModelParameters.single_level` (top-level costs, summed failure
    rates).

    The returned :class:`Algorithm1Result` carries the full
    per-outer-iteration convergence ``trace`` (the baseline inherits
    Algorithm 1's telemetry), so SL(opt-scale) convergence is inspectable
    with the same tooling as the paper's own strategy.
    """
    collapsed = params.single_level() if params.num_levels > 1 else params
    return optimize(
        collapsed,
        delta=delta,
        max_outer=max_outer,
        strategy_name="sl-opt-scale",
    )
