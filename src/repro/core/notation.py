"""Parameter and solution objects mirroring the paper's Table I.

:class:`ModelParameters` bundles everything the optimization consumes —
``T_e``, ``g(N)``, ``C_i(N)``/``R_i(N)``, the per-level failure rates, and
the allocation period ``A`` — with consistency checks (equal level counts
everywhere).  :class:`Solution` is the common result type all solvers and
baselines return.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.costs.model import LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.base import SpeedupModel
from repro.util.units import core_days_to_core_seconds


@dataclass(frozen=True)
class ModelParameters:
    """Inputs to the multilevel checkpoint optimization (Table I).

    Parameters
    ----------
    te_core_seconds:
        Single-core productive time ``T_e`` (core-seconds).
    speedup:
        Speedup model ``g(N)``.
    costs:
        Per-level checkpoint/recovery cost models (Formulas 19/20).
    rates:
        Per-level failure rates scaled to the baseline ``N_b``.
    allocation_period:
        The constant resource-allocation period ``A`` (seconds).
    min_scale:
        Lower bound for the scale search (cores).
    max_scale:
        Upper bound; defaults to the speedup model's ideal scale
        ``N^(*)`` (the checkpointed optimum can never exceed it).
    """

    te_core_seconds: float
    speedup: SpeedupModel
    costs: LevelCostModel
    rates: FailureRates
    allocation_period: float = 60.0
    min_scale: float = 1.0
    max_scale: Optional[float] = None

    def __post_init__(self):
        if not self.te_core_seconds > 0:
            raise ValueError(
                f"te_core_seconds must be positive, got {self.te_core_seconds}"
            )
        if self.costs.num_levels != self.rates.num_levels:
            raise ValueError(
                f"cost model has {self.costs.num_levels} levels but failure "
                f"rates have {self.rates.num_levels}"
            )
        if self.allocation_period < 0:
            raise ValueError(
                f"allocation_period must be >= 0, got {self.allocation_period}"
            )
        if not self.min_scale > 0:
            raise ValueError(f"min_scale must be positive, got {self.min_scale}")
        bound = self.scale_upper_bound
        if not math.isfinite(bound):
            raise ValueError(
                "an explicit max_scale is required when the speedup model has "
                "no finite ideal scale (e.g. LinearSpeedup without max_scale)"
            )
        if self.min_scale >= bound:
            raise ValueError(
                f"min_scale {self.min_scale} must be < the scale upper bound {bound}"
            )

    @property
    def num_levels(self) -> int:
        """``L`` — number of checkpoint levels."""
        return self.costs.num_levels

    @property
    def scale_upper_bound(self) -> float:
        """``N^(*)`` or the explicit cap, whichever binds."""
        ideal = self.speedup.ideal_scale
        if self.max_scale is None:
            return ideal
        return min(self.max_scale, ideal)

    def productive_time(self, n: float) -> float:
        """``f(T_e, N) = T_e / g(N)`` in seconds."""
        return float(self.speedup.productive_time(self.te_core_seconds, n))

    def failure_slope(self, wallclock_fixed: float) -> np.ndarray:
        """Per-core expected failures ``b_i`` under the Algorithm-1 condition.

        With the wall-clock length held at ``wallclock_fixed``, the level-i
        expected failure count becomes ``mu_i(N) = b_i * N`` where
        ``b_i = (lambda_i at one core) * wallclock_fixed``.
        """
        if wallclock_fixed < 0:
            raise ValueError(
                f"wallclock_fixed must be >= 0, got {wallclock_fixed}"
            )
        return self.rates.rate_derivatives_per_second(1.0) * wallclock_fixed

    def single_level(self) -> "ModelParameters":
        """Collapse to the single-level (PFS-only) variant.

        Keeps only the top level's costs and routes the *total* failure rate
        to it — in a single-level model every failure forces a rollback to
        the PFS checkpoint.  Used by the SL baselines.
        """
        return replace(
            self,
            costs=self.costs.single_level(self.num_levels),
            rates=self.rates.single_level(),
        )

    @classmethod
    def from_core_days(
        cls, te_core_days: float, **kwargs
    ) -> "ModelParameters":
        """Construct with ``T_e`` given in core-days (the paper's unit)."""
        return cls(
            te_core_seconds=core_days_to_core_seconds(te_core_days), **kwargs
        )


@dataclass(frozen=True)
class Solution:
    """A solved checkpoint configuration.

    Attributes
    ----------
    intervals:
        ``(x_1, ..., x_L)`` — checkpoint interval counts per level.
    scale:
        ``N`` — number of processes/cores.
    expected_wallclock:
        Predicted ``E(T_w)`` in seconds (self-consistent in mu).
        ``math.inf`` marks an analytically infeasible configuration —
        expected loss per wall-clock second >= 1, so the linearized model
        predicts the run never completes (the classic-Young baseline lands
        here under the paper's harsher settings; the simulator still
        produces finite, astronomically long runs for it).
    mu:
        Per-level expected failure counts at the solution.
    strategy:
        Name of the producing strategy (``ml-opt-scale`` etc.).
    outer_iterations / inner_iterations:
        Convergence diagnostics (0 when not applicable).
    """

    intervals: tuple[float, ...]
    scale: float
    expected_wallclock: float
    mu: tuple[float, ...]
    strategy: str = ""
    outer_iterations: int = 0
    inner_iterations: int = 0

    def __post_init__(self):
        if len(self.intervals) == 0:
            raise ValueError("at least one interval count is required")
        if any(x <= 0 for x in self.intervals):
            raise ValueError(f"interval counts must be positive, got {self.intervals}")
        if not self.scale > 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if len(self.mu) != len(self.intervals):
            raise ValueError(
                f"{len(self.mu)} mu values for {len(self.intervals)} levels"
            )

    @property
    def num_levels(self) -> int:
        """``L`` of this solution."""
        return len(self.intervals)

    def intervals_rounded(self) -> tuple[int, ...]:
        """Integer interval counts (at least 1 each) for the simulator."""
        return tuple(max(1, round(x)) for x in self.intervals)

    def scale_rounded(self) -> int:
        """Integer core count for the simulator."""
        return max(1, round(self.scale))

    @property
    def feasible(self) -> bool:
        """Whether the model predicts the run completes (finite E(T_w))."""
        return math.isfinite(self.expected_wallclock)

    def efficiency(self, te_core_seconds: float) -> float:
        """Processor utilization: wall-clock speedup over cores used.

        ``(T_e / E(T_w)) / N`` — the paper's efficiency indicator (the
        speedup here counts all overheads, unlike ``g(N)``).  Returns 0 for
        infeasible (infinite wall-clock) solutions.
        """
        if self.expected_wallclock <= 0:
            raise ValueError("expected_wallclock must be positive")
        if not self.feasible:
            return 0.0
        return (te_core_seconds / self.expected_wallclock) / self.scale
