"""Sensitivity of the optimized configuration to parameter misestimation.

In practice every model input is estimated: ``kappa`` from a small pilot
run (the paper's 77-at-160-cores example misestimates it by ~5 %), failure
rates from historical logs, costs from a characterization that jitters by
30 %.  This module answers two operational questions:

* **elasticity** — if input ``p`` is off by 1 %, how much does the
  *achieved* wall-clock move?  (Evaluate the configuration optimized under
  the wrong parameter against the true model.)
* **regret** — how much worse is the wall-clock from optimizing with the
  misestimated input than from optimizing with the truth?

Both are computed by re-solving under perturbed inputs, so they account
for the optimizer's response, not just the objective's local gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

import numpy as np

from repro.core.algorithm1 import optimize
from repro.core.memo import SOLVER_CACHE
from repro.core.notation import ModelParameters
from repro.core.wallclock import self_consistent_wallclock
from repro.costs.model import CostModel, LevelCostModel
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup


@dataclass(frozen=True)
class SensitivityEntry:
    """One parameter's sensitivity numbers.

    Attributes
    ----------
    parameter:
        Name of the perturbed input.
    relative_perturbation:
        The applied relative change (e.g. 0.1 = +10 %).
    regret:
        ``E_true(config_perturbed) / E_true(config_true) - 1`` — the
        fractional wall-clock paid for optimizing with the wrong input.
    elasticity:
        ``regret / |relative_perturbation|`` — regret per unit of
        misestimation.
    """

    parameter: str
    relative_perturbation: float
    regret: float
    elasticity: float


def _perturb_kappa(params: ModelParameters, factor: float) -> ModelParameters:
    speedup = params.speedup
    if not isinstance(speedup, QuadraticSpeedup):
        raise TypeError(
            "kappa perturbation requires a QuadraticSpeedup model, got "
            f"{type(speedup).__name__}"
        )
    return replace(
        params,
        speedup=QuadraticSpeedup(
            kappa=speedup.kappa * factor, ideal_scale=speedup.ideal_scale
        ),
    )


def _perturb_rates(params: ModelParameters, factor: float) -> ModelParameters:
    return replace(
        params,
        rates=FailureRates(
            per_day_at_baseline=tuple(
                r * factor for r in params.rates.per_day_at_baseline
            ),
            baseline_scale=params.rates.baseline_scale,
        ),
    )


def _perturb_costs(params: ModelParameters, factor: float) -> ModelParameters:
    def scale(model: CostModel) -> CostModel:
        return CostModel(
            constant=model.constant * factor,
            coefficient=model.coefficient * factor,
            baseline=model.baseline,
        )

    return replace(
        params,
        costs=LevelCostModel(
            checkpoint=tuple(scale(c) for c in params.costs.checkpoint),
            recovery=tuple(scale(r) for r in params.costs.recovery),
        ),
    )


#: Perturbable inputs: name -> (params, factor) -> perturbed params.
PERTURBATIONS: Mapping[str, Callable[[ModelParameters, float], ModelParameters]] = {
    "kappa": _perturb_kappa,
    "failure_rates": _perturb_rates,
    "checkpoint_costs": _perturb_costs,
}


def sensitivity_report(
    params: ModelParameters,
    *,
    relative_perturbation: float = 0.1,
    parameters: tuple[str, ...] = ("kappa", "failure_rates", "checkpoint_costs"),
    optimize_kwargs: dict | None = None,
) -> list[SensitivityEntry]:
    """Regret/elasticity of Algorithm 1's output per misestimated input.

    For each named parameter, optimizes under the input scaled by
    ``(1 + relative_perturbation)``, then evaluates that configuration
    under the *true* model (self-consistent Formula 21) and compares with
    the truly optimal configuration.
    """
    if not -0.9 < relative_perturbation < 10.0:
        raise ValueError(
            f"relative_perturbation out of range: {relative_perturbation}"
        )
    if relative_perturbation == 0.0:
        raise ValueError("relative_perturbation must be nonzero")
    optimize_kwargs = dict(optimize_kwargs or {})
    # The perturbation sweep deliberately bypasses the solver memo cache:
    # a dense grid of near-identical parameter objects would bloat it, and
    # the measurement must reflect fresh solves, not shared entries.
    with SOLVER_CACHE.bypass():
        true_solution = optimize(params, **optimize_kwargs).solution
    e_true, _ = self_consistent_wallclock(
        params, np.asarray(true_solution.intervals), true_solution.scale
    )
    entries: list[SensitivityEntry] = []
    for name in parameters:
        try:
            perturb = PERTURBATIONS[name]
        except KeyError:
            raise ValueError(
                f"unknown parameter {name!r}; choose from {sorted(PERTURBATIONS)}"
            ) from None
        wrong = perturb(params, 1.0 + relative_perturbation)
        with SOLVER_CACHE.bypass():
            wrong_solution = optimize(wrong, **optimize_kwargs).solution
        # Clamp the misoptimized scale into the true model's valid range.
        scale = min(
            max(wrong_solution.scale, params.min_scale), params.scale_upper_bound
        )
        e_achieved, _ = self_consistent_wallclock(
            params, np.asarray(wrong_solution.intervals), scale
        )
        regret = e_achieved / e_true - 1.0
        entries.append(
            SensitivityEntry(
                parameter=name,
                relative_perturbation=relative_perturbation,
                regret=regret,
                elasticity=regret / abs(relative_perturbation),
            )
        )
    return entries
