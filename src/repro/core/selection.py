"""Checkpoint-level selection (the [22] lineage feature).

The paper's introduction notes its predecessor optimized both "the optimal
checkpoint intervals for different levels and ... the selection of levels
for each HPC application".  This module adds that capability on top of
Algorithm 1: choose the *subset* of checkpoint levels worth enabling.

Semantics of disabling level ``i``: failures classified at level ``i``
still occur — they simply roll back to the next enabled level above, so the
disabled level's failure rate is *merged upward*.  The top level (PFS, the
catch-all) can never be disabled.  With ``L`` levels there are ``2^(L-1)``
admissible subsets; each is solved with Algorithm 1 and the best expected
wall-clock wins.  For FTI's ``L = 4`` this is 8 solves — cheap, and the
exhaustive search is exact.

A level earns its place when its checkpoint cost is low relative to the
rollback it saves; e.g. with a very cheap level 2 and a barely-cheaper
level 3, disabling level 3 often wins — the ablation bench quantifies this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.core.algorithm1 import optimize
from repro.core.notation import ModelParameters, Solution
from repro.costs.model import LevelCostModel
from repro.failures.rates import FailureRates
from repro.util.iteration import FixedPointDiverged


@dataclass(frozen=True)
class LevelSelectionResult:
    """Outcome of the exhaustive level-subset search.

    Attributes
    ----------
    best_subset:
        The winning enabled levels (1-based, ascending, always ends at L).
    solution:
        The Algorithm 1 solution on the reduced model.  Its ``intervals``
        align with ``best_subset`` (entry ``k`` is the interval count of
        level ``best_subset[k]``).
    per_subset:
        Expected wall-clock per evaluated subset (``inf`` where the solve
        was infeasible/diverged).
    """

    best_subset: tuple[int, ...]
    solution: Solution
    per_subset: Mapping[tuple[int, ...], float]


def reduce_parameters(
    params: ModelParameters, subset: Sequence[int]
) -> ModelParameters:
    """Project a model onto an enabled-level subset.

    ``subset`` must be ascending 1-based levels including the top level.
    Disabled levels' failure rates merge into the next enabled level above
    (their failures roll back there); costs of disabled levels vanish.
    """
    levels = list(subset)
    top = params.num_levels
    if not levels or levels != sorted(set(levels)):
        raise ValueError(f"subset must be ascending unique levels, got {subset}")
    if levels[-1] != top or any(not 1 <= l <= top for l in levels):
        raise ValueError(
            f"subset {subset} must be within 1..{top} and include the top "
            f"level {top} (the catch-all)"
        )
    merged_rates = []
    base = params.rates.per_day_at_baseline
    for position, level in enumerate(levels):
        lower_bound = levels[position - 1] if position > 0 else 0
        merged = sum(base[i] for i in range(lower_bound, level))
        merged_rates.append(merged)
    costs = LevelCostModel(
        checkpoint=tuple(params.costs.checkpoint[l - 1] for l in levels),
        recovery=tuple(params.costs.recovery[l - 1] for l in levels),
    )
    rates = FailureRates(
        per_day_at_baseline=tuple(merged_rates),
        baseline_scale=params.rates.baseline_scale,
    )
    return replace(params, costs=costs, rates=rates)


def optimize_level_selection(
    params: ModelParameters,
    *,
    fixed_scale: float | None = None,
    **optimize_kwargs,
) -> LevelSelectionResult:
    """Exhaustively search level subsets; Algorithm 1 solves each.

    Returns the best subset and its solution.  Subsets whose solve is
    infeasible (or fails to converge) score ``inf``.
    """
    top = params.num_levels
    per_subset: dict[tuple[int, ...], float] = {}
    best_subset: tuple[int, ...] | None = None
    best_solution: Solution | None = None
    optional = list(range(1, top))
    for mask in itertools.chain.from_iterable(
        itertools.combinations(optional, r) for r in range(len(optional) + 1)
    ):
        subset = tuple(sorted(mask)) + (top,)
        reduced = reduce_parameters(params, subset)
        try:
            result = optimize(
                reduced,
                fixed_scale=fixed_scale,
                strategy_name=f"ml-opt-scale[levels={subset}]",
                **optimize_kwargs,
            )
        except (FixedPointDiverged, ValueError):
            per_subset[subset] = float("inf")
            continue
        value = result.solution.expected_wallclock
        per_subset[subset] = value
        if best_solution is None or value < best_solution.expected_wallclock:
            best_subset = subset
            best_solution = result.solution
    if best_solution is None or best_subset is None:
        raise FixedPointDiverged(
            "no level subset produced a feasible solution "
            "(failure rates are beyond the model's completion regime)"
        )
    return LevelSelectionResult(
        best_subset=best_subset,
        solution=best_solution,
        per_subset=per_subset,
    )
