"""Functional end-to-end simulation (the paper's cluster-experiment analogue).

The abstract simulator (:mod:`repro.sim`) replays checkpoint *costs* and
failure *levels*; this package runs the whole stack for real, in simulated
time:

* the actual Heat Distribution kernel computes on the grid
  (:mod:`repro.apps.heat` under :mod:`repro.apps.simmpi`);
* checkpoints go through the functional FTI implementation — partner
  copies, real Reed-Solomon encoding, PFS blobs — with their durations
  charged from the storage hierarchy (:mod:`repro.cluster.storage`);
* failures strike *nodes* (drawn to match per-level rates), erase exactly
  the data those nodes held, trigger the allocator, and recovery restores
  application state bit-exactly from the cheapest surviving level;
* the run's wall-clock decomposes into the same four portions the abstract
  simulator reports.

Because both simulators can be configured from the *same* storage
hierarchy and failure rates, the functional run is the ground truth the
abstract one is validated against (:mod:`repro.experiments.fig4b`) — the
role the real 1,024-core Fusion runs play for the paper's Fig. 4.
"""

from repro.funcsim.config import FunctionalConfig
from repro.funcsim.run import FunctionalResult, run_functional

__all__ = ["FunctionalConfig", "FunctionalResult", "run_functional"]
