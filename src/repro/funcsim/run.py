"""The functional end-to-end execution loop.

Runs the real Heat kernel under the functional FTI stack in simulated
time.  Structure mirrors the abstract engine (work / checkpoint / recovery
operations, failures interrupting any of them) but every state transition
is *performed*, not priced: checkpoints serialize the actual grid through
partner copies / Reed-Solomon / PFS blobs, failures erase exactly what the
crashed nodes stored, and recovery restores the application bit-exactly —
or, when no sufficient checkpoint exists, restarts it from the initial
condition (the real cost of under-protecting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.heat import HeatDistribution2D
from repro.apps.simmpi import SimComm
from repro.cluster.allocation import ResourceAllocator
from repro.fti.api import FTIContext
from repro.fti.levels import CheckpointLevel
from repro.funcsim.config import FunctionalConfig
from repro.sim.failure_injection import FailureInjector
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class FunctionalResult:
    """Outcome of one functional run.

    Attributes mirror :class:`repro.sim.metrics.SimResult` (wallclock,
    portions, counts, completion) plus the final grid for bit-exactness
    checks and the count of from-scratch restarts.
    """

    wallclock: float
    portions: dict[str, float]
    failures_per_level: tuple[int, int, int, int]
    checkpoints_per_level: tuple[int, int, int, int]
    scratch_restarts: int
    completed: bool
    grid: np.ndarray


def _pick_failed_nodes(
    level: int, topology, rng: np.random.Generator
) -> tuple[int, ...]:
    """Choose a node set whose loss classifies at exactly ``level``.

    Level 1 is a software error (no hardware loss); level 2 an isolated
    node; level 3 an adjacent pair inside one RS group (defeats partner
    copy, within RS parity); level 4 ``parity + 1`` nodes of one group.
    """
    m = topology.num_nodes
    if level == 1:
        return ()
    if level == 2:
        return (int(rng.integers(0, m)),)
    if level == 3:
        group_size = topology.rs_group_size
        while True:
            first = int(rng.integers(0, m - 1))
            if first % group_size != group_size - 1:
                return (first, first + 1)
    group = int(rng.integers(0, max(1, m // topology.rs_group_size)))
    members = topology.rs_group_members(group)
    count = min(topology.rs_parity + 1, len(members))
    return tuple(members[:count])


def run_functional(
    config: FunctionalConfig, seed: SeedLike = None, *, injector=None
) -> FunctionalResult:
    """Execute one functional run; returns the :class:`FunctionalResult`.

    ``injector`` overrides the failure source (e.g. a
    :class:`~repro.sim.failure_injection.ScriptedFailures` trace shared
    with the abstract simulator for paired validation).
    """
    rng = as_generator(seed)
    node_rng = as_generator(int(rng.integers(0, 2**63 - 1)))
    if injector is None:
        injector = FailureInjector(
            config.rates.rates_per_second(config.num_ranks),
            seed=int(rng.integers(0, 2**63 - 1)),
        )
    comm = SimComm(n_ranks=config.num_ranks)
    solver = HeatDistribution2D(grid_size=config.grid_size, comm=comm)
    ctx = FTIContext(config.topology, ranks_per_node=config.ranks_per_node)
    allocator = ResourceAllocator(
        config.topology, allocation_period=config.allocation_period
    )

    # Protect each rank's row block plus the sweep counter (restored on
    # recovery along with the physics, so the run resumes at the right step).
    blocks = np.array_split(np.arange(config.grid_size), config.num_ranks)
    for rank, rows in enumerate(blocks):
        ctx.protect(rank, "block", solver.grid[rows[0] + 1 : rows[-1] + 2])
    meta = np.zeros(1)
    ctx.protect(0, "meta", meta)

    sweep_duration = float(
        HeatDistribution2D.iteration_time(
            config.num_ranks, grid_size=config.grid_size
        )
    )
    procs_per_node = config.ranks_per_node

    T = 0.0
    sweeps = 0
    high_water = 0
    portions = {"productive": 0.0, "checkpoint": 0.0, "restart": 0.0, "rollback": 0.0}
    failures = [0, 0, 0, 0]
    checkpoints = [0, 0, 0, 0]
    scratch_restarts = 0

    def next_checkpoint_level() -> int | None:
        """Lowest level due at the current sweep count (ascending order)."""
        if sweeps == 0:
            return None
        for level, interval in enumerate(config.checkpoint_interval_sweeps, 1):
            if interval > 0 and sweeps % interval == 0:
                if taken_at[level - 1] != sweeps:
                    return level
        return None

    taken_at = [-1, -1, -1, -1]  # sweep at which each level last checkpointed

    def handle_failure(level: int) -> None:
        """Fail nodes, recover (or restart from scratch), charge the time.

        Iterative (not recursive): a further failure landing during the
        recovery period aborts it and the loop re-plans at the new
        failure's level — failure storms chain arbitrarily deep.
        """
        nonlocal T, sweeps, scratch_restarts
        while True:
            failures[level - 1] += 1
            failed = _pick_failed_nodes(level, config.topology, node_rng)
            if failed:
                ctx.fail_nodes(failed)
                allocator.allocate_replacements(T, failed)
            recovery_level = None
            try:
                decision = ctx.recover()
                recovery_level = int(decision.recovery_level)
            except ValueError:
                # Nothing protective enough exists: restart from scratch.
                scratch_restarts += 1
                solver.grid[...] = 0.0
                solver.grid[0, :] = solver.boundary_temperature
                meta[0] = 0.0
                ctx._failed.clear()
            if recovery_level is not None:
                read_time = config.storage.recovery_time(
                    recovery_level,
                    config.bytes_per_process,
                    config.num_ranks,
                    procs_per_node,
                )
            else:
                read_time = 0.0
            duration = config.allocation_period + read_time
            t_next, next_level = injector.peek()
            if T + duration <= t_next:
                portions["restart"] += duration
                T += duration
                break
            # a further failure interrupts this recovery
            portions["restart"] += max(t_next - T, 0.0)
            T = t_next
            injector.pop()
            level = next_level
        sweeps = int(meta[0])
        for level_idx in range(4):
            taken_at[level_idx] = min(taken_at[level_idx], sweeps)

    while sweeps < config.total_sweeps:
        if T >= config.max_wallclock:
            return FunctionalResult(
                wallclock=T,
                portions=portions,
                failures_per_level=tuple(failures),
                checkpoints_per_level=tuple(checkpoints),
                scratch_restarts=scratch_restarts,
                completed=False,
                grid=solver.grid.copy(),
            )
        t_next, failure_level = injector.peek()
        due_level = next_checkpoint_level()
        if due_level is not None:
            duration = config.storage.checkpoint_time(
                due_level,
                config.bytes_per_process,
                config.num_ranks,
                procs_per_node,
            )
            if T + duration > t_next:
                # failure aborts the checkpoint attempt
                portions["checkpoint"] += max(t_next - T, 0.0)
                T = t_next
                injector.pop()
                handle_failure(failure_level)
                continue
            meta[0] = float(sweeps)
            ctx.checkpoint(CheckpointLevel(due_level))
            checkpoints[due_level - 1] += 1
            taken_at[due_level - 1] = sweeps
            portions["checkpoint"] += duration
            T += duration
            continue
        # one Jacobi sweep
        if T + sweep_duration > t_next:
            # partial sweep wasted: its progress is lost with the failure
            portions["rollback"] += max(t_next - T, 0.0)
            T = t_next
            injector.pop()
            handle_failure(failure_level)
            continue
        solver.jacobi_sweep()
        if sweeps < high_water:
            portions["rollback"] += sweep_duration
        else:
            portions["productive"] += sweep_duration
        T += sweep_duration
        sweeps += 1
        high_water = max(high_water, sweeps)

    return FunctionalResult(
        wallclock=T,
        portions=portions,
        failures_per_level=tuple(failures),
        checkpoints_per_level=tuple(checkpoints),
        scratch_restarts=scratch_restarts,
        completed=True,
        grid=solver.grid.copy(),
    )
