"""Configuration of a functional end-to-end run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.storage import StorageHierarchy
from repro.cluster.topology import ClusterTopology
from repro.failures.rates import FailureRates


@dataclass(frozen=True)
class FunctionalConfig:
    """One functional execution of the Heat app under FTI.

    Parameters
    ----------
    topology:
        The simulated cluster (node count, partners, RS groups).
    storage:
        Storage hierarchy supplying per-level checkpoint/recovery durations.
    rates:
        Per-level failure rates (baseline = the topology's core count is
        typical but not required).
    grid_size:
        Heat grid dimension; also sets the checkpoint payload.
    total_sweeps:
        Productive Jacobi sweeps the run must complete.
    checkpoint_interval_sweeps:
        Per-level checkpoint cadence in sweeps (level ``i`` checkpoints
        every ``interval[i-1]`` completed first-time sweeps; 0 disables a
        level).
    ranks_per_node:
        MPI ranks per node.
    bytes_per_process:
        Checkpoint payload per rank charged to the storage model (the
        in-memory functional payload is the actual grid, but its Python
        object size is not the modelled application footprint).
    allocation_period:
        Constant reallocation delay per hardware failure (seconds).
    max_wallclock:
        Censoring cap (seconds of simulated time).
    """

    topology: ClusterTopology
    storage: StorageHierarchy
    rates: FailureRates
    grid_size: int = 64
    total_sweeps: int = 400
    checkpoint_interval_sweeps: tuple[int, int, int, int] = (10, 25, 50, 100)
    ranks_per_node: int = 1
    bytes_per_process: float = 50e6
    allocation_period: float = 20.0
    max_wallclock: float = 10e6

    def __post_init__(self):
        if self.grid_size < self.num_ranks:
            raise ValueError(
                f"grid_size {self.grid_size} cannot be decomposed over "
                f"{self.num_ranks} ranks"
            )
        if self.total_sweeps < 1:
            raise ValueError(f"total_sweeps must be >= 1, got {self.total_sweeps}")
        if len(self.checkpoint_interval_sweeps) != 4:
            raise ValueError(
                "checkpoint_interval_sweeps needs 4 entries, got "
                f"{len(self.checkpoint_interval_sweeps)}"
            )
        if any(i < 0 for i in self.checkpoint_interval_sweeps):
            raise ValueError(
                f"intervals must be >= 0, got {self.checkpoint_interval_sweeps}"
            )
        if self.rates.num_levels != 4:
            raise ValueError("rates must cover the 4 FTI levels")
        if self.allocation_period < 0:
            raise ValueError(
                f"allocation_period must be >= 0, got {self.allocation_period}"
            )
        if self.max_wallclock <= 0:
            raise ValueError(
                f"max_wallclock must be positive, got {self.max_wallclock}"
            )

    @property
    def num_ranks(self) -> int:
        """Total MPI ranks."""
        return self.topology.num_nodes * self.ranks_per_node
