"""Correlated failure windows.

The paper (footnote 1) defines *simultaneous failures* as multiple nodes
failing within a short correlated-failure window — 1 to 2 minutes in the
cited studies — e.g. due to a shared switch or power board.  Multilevel
checkpointing cares about this because a burst of node failures inside one
window may defeat partner-copy (adjacent partners lost) and force recovery
from RS encoding or the PFS.

:func:`cluster_into_windows` groups a chronological node-failure sequence
into such windows; :mod:`repro.fti.recovery` uses the grouped node sets to
decide the lowest level that can still recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class CorrelatedWindow:
    """A burst of node failures treated as one simultaneous event.

    Attributes
    ----------
    start:
        Wall-clock instant (s) of the first failure in the window.
    node_ids:
        The distinct nodes lost within the window, in failure order.
    """

    start: float
    node_ids: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError(f"duplicate node ids in window: {self.node_ids}")

    @property
    def size(self) -> int:
        """Number of nodes lost in this window."""
        return len(self.node_ids)


def cluster_into_windows(
    failure_times: Sequence[float],
    node_ids: Sequence[int],
    *,
    window_seconds: float = 60.0,
) -> list[CorrelatedWindow]:
    """Group node failures into correlated windows.

    A failure starts a new window when it arrives more than
    ``window_seconds`` after the *start* of the current window (fixed-width
    windows anchored at the first event, matching the resource-allocation
    period interpretation in the paper's footnote).  Repeat failures of a
    node already in the current window are ignored.

    Inputs must be chronological; raises ``ValueError`` otherwise.
    """
    if len(failure_times) != len(node_ids):
        raise ValueError(
            f"{len(failure_times)} times but {len(node_ids)} node ids"
        )
    if window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    windows: list[CorrelatedWindow] = []
    current_start: float | None = None
    current_nodes: list[int] = []
    previous_time = float("-inf")
    for time, node in zip(failure_times, node_ids):
        if time < previous_time:
            raise ValueError("failure_times must be chronological")
        previous_time = time
        if current_start is None or time - current_start > window_seconds:
            if current_start is not None:
                windows.append(
                    CorrelatedWindow(start=current_start, node_ids=tuple(current_nodes))
                )
            current_start = time
            current_nodes = [node]
        elif node not in current_nodes:
            current_nodes.append(node)
    if current_start is not None:
        windows.append(
            CorrelatedWindow(start=current_start, node_ids=tuple(current_nodes))
        )
    return windows
