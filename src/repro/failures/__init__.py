"""Failure models: per-level scale-proportional rates, arrival processes, traces."""

from repro.failures.rates import FailureRates
from repro.failures.distributions import (
    ArrivalProcess,
    ExponentialArrivals,
    LognormalArrivals,
    WeibullArrivals,
)
from repro.failures.logparse import (
    classify_node_failures,
    parse_failure_log,
    parse_node_failures,
)
from repro.failures.mtbf import (
    rates_from_node_mtbf,
    system_mtbf_days,
    system_rate_per_day,
)
from repro.failures.traces import FailureEventRecord, generate_trace, merge_traces
from repro.failures.window import CorrelatedWindow, cluster_into_windows

__all__ = [
    "FailureRates",
    "ArrivalProcess",
    "ExponentialArrivals",
    "WeibullArrivals",
    "LognormalArrivals",
    "FailureEventRecord",
    "generate_trace",
    "merge_traces",
    "CorrelatedWindow",
    "cluster_into_windows",
    "rates_from_node_mtbf",
    "system_mtbf_days",
    "system_rate_per_day",
    "classify_node_failures",
    "parse_failure_log",
    "parse_node_failures",
]
