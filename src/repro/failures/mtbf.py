"""MTBF bridging utilities.

Operators reason in node-level MTBFs ("our nodes last 5 years") and failure
taxonomies ("60 % of our events are transient"); the model wants per-level
rates at a baseline scale.  These helpers convert between the two, using
the standard exponential-composition identity: ``M`` independent components
with MTBF ``m`` fail collectively at rate ``M / m``.
"""

from __future__ import annotations

import numpy as np

from repro.failures.rates import FailureRates
from repro.util.units import SECONDS_PER_DAY


def system_rate_per_day(component_mtbf_days: float, num_components: int) -> float:
    """Aggregate failure rate (events/day) of ``num_components`` independent
    components each with MTBF ``component_mtbf_days``."""
    if component_mtbf_days <= 0:
        raise ValueError(f"MTBF must be positive, got {component_mtbf_days}")
    if num_components < 1:
        raise ValueError(f"need >= 1 component, got {num_components}")
    return num_components / component_mtbf_days


def system_mtbf_days(component_mtbf_days: float, num_components: int) -> float:
    """System MTBF (days): component MTBF divided by the component count."""
    return 1.0 / system_rate_per_day(component_mtbf_days, num_components)


def rates_from_node_mtbf(
    node_mtbf_days: float,
    num_nodes: int,
    cores_per_node: int,
    level_fractions,
    *,
    transient_rate_per_core_day: float = 0.0,
) -> FailureRates:
    """Build per-level :class:`FailureRates` from operator-level inputs.

    Parameters
    ----------
    node_mtbf_days:
        MTBF of a single node (hardware failures).
    num_nodes, cores_per_node:
        Machine shape; the baseline scale becomes the total core count.
    level_fractions:
        How observed *hardware* failures split across levels 2..L (must sum
        to 1) — e.g. ``(0.7, 0.2, 0.1)``: 70 % isolated node losses
        (partner-copy recoverable), 20 % adjacent/multi losses (RS), 10 %
        bigger events (PFS).
    transient_rate_per_core_day:
        Level-1 (software/memory) event rate per core-day, added on top of
        the hardware taxonomy.
    """
    fractions = np.asarray(level_fractions, dtype=float)
    if fractions.ndim != 1 or fractions.size < 1:
        raise ValueError("level_fractions must be a non-empty 1-D sequence")
    if np.any(fractions < 0) or not np.isclose(fractions.sum(), 1.0):
        raise ValueError(
            f"level_fractions must be non-negative and sum to 1, got {fractions}"
        )
    if transient_rate_per_core_day < 0:
        raise ValueError(
            "transient_rate_per_core_day must be >= 0, got "
            f"{transient_rate_per_core_day}"
        )
    baseline_cores = num_nodes * cores_per_node
    hardware_per_day = system_rate_per_day(node_mtbf_days, num_nodes)
    level1 = transient_rate_per_core_day * baseline_cores
    rates = (level1, *(float(hardware_per_day * f) for f in fractions))
    return FailureRates(
        per_day_at_baseline=rates, baseline_scale=float(baseline_cores)
    )
