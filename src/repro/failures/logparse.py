"""Failure-log ingestion.

Production systems keep failure logs as flat records (timestamp, node,
optional category).  This module parses the common CSV shape into the
library's types and classifies raw node-failure streams into per-level
events by grouping them into correlated windows and asking the cluster
topology which checkpoint level each window requires — the pipeline the
paper's footnote 1 describes (1-2 minute correlated windows).

Expected line format (header optional, ``#`` comments ignored)::

    time_seconds,node_id[,level]

When the ``level`` column is present the records are taken as pre-classified
(:func:`parse_failure_log`); otherwise
:func:`classify_node_failures` derives levels from the topology.
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.cluster.topology import ClusterTopology
from repro.failures.traces import FailureEventRecord
from repro.failures.window import cluster_into_windows
from repro.fti.recovery import RecoveryPlanner


def _rows(text: str) -> Iterable[list[str]]:
    for line_number, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        cells = [c.strip() for c in line.split(",")]
        if cells and cells[0].lower() in ("time", "time_seconds", "timestamp"):
            continue  # header
        yield line_number, cells


def parse_failure_log(text: str) -> list[FailureEventRecord]:
    """Parse a pre-classified log (``time,node,level``) into events.

    The node column is accepted (for provenance) but only time and level
    enter the records; lines must be chronological.
    """
    events: list[FailureEventRecord] = []
    for line_number, cells in _rows(text):
        if len(cells) != 3:
            raise ValueError(
                f"line {line_number}: expected 'time,node,level', got {cells}"
            )
        try:
            time = float(cells[0])
            level = int(cells[2])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: {exc}") from None
        events.append(FailureEventRecord(time=time, level=level))
    for prev, nxt in zip(events, events[1:]):
        if nxt.time < prev.time:
            raise ValueError("failure log must be chronological")
    return events


def parse_node_failures(text: str) -> tuple[list[float], list[int]]:
    """Parse a raw log (``time,node``) into parallel time/node lists."""
    times: list[float] = []
    nodes: list[int] = []
    for line_number, cells in _rows(text):
        if len(cells) < 2:
            raise ValueError(
                f"line {line_number}: expected 'time,node', got {cells}"
            )
        try:
            times.append(float(cells[0]))
            nodes.append(int(cells[1]))
        except ValueError as exc:
            raise ValueError(f"line {line_number}: {exc}") from None
    return times, nodes


def classify_node_failures(
    text: str,
    topology: ClusterTopology,
    *,
    window_seconds: float = 60.0,
) -> list[FailureEventRecord]:
    """Raw node-failure log -> per-level failure events.

    Node failures are grouped into correlated windows
    (:func:`~repro.failures.window.cluster_into_windows`) and each window
    classified by the topology's recovery rule: the event's level is the
    cheapest checkpoint level whose mechanism survives the window's node
    set.  One :class:`FailureEventRecord` per window, stamped at the
    window start.
    """
    times, nodes = parse_node_failures(text)
    planner = RecoveryPlanner(topology)
    windows = cluster_into_windows(times, nodes, window_seconds=window_seconds)
    return [
        FailureEventRecord(
            time=w.start, level=int(planner.classify_failure(w.node_ids))
        )
        for w in windows
    ]
