"""Per-level, scale-proportional failure rates.

The paper's evaluation names each case ``r1-r2-r3-r4``: ``r_i`` failure
events per day at checkpoint level ``i`` when the application runs on the
*baseline* number of cores ``N_b`` (always set to ``N^(*) = 10^6`` in the
paper).  "The real failure rates experienced actually increase with the
number of cores proportionally" — so at scale ``N`` the level-``i`` rate is

``lambda_i(N) = (r_i / 86400) * N / N_b``   [events per second].

The expected number of level-``i`` failures during a wall-clock period
``T`` is then ``mu_i = lambda_i(N) * T`` (Formula 22 with exponential
arrivals), which is the quantity Algorithm 1's outer loop iterates on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import per_day_to_per_second


@dataclass(frozen=True)
class FailureRates:
    """Per-level failure rates tied to a baseline scale.

    Parameters
    ----------
    per_day_at_baseline:
        ``(r_1, ..., r_L)`` — events/day for each level at scale ``N_b``.
    baseline_scale:
        ``N_b`` in cores (the paper uses 10^6 throughout).
    """

    per_day_at_baseline: tuple[float, ...]
    baseline_scale: float

    def __post_init__(self):
        if len(self.per_day_at_baseline) == 0:
            raise ValueError("at least one level rate is required")
        if any(r < 0 for r in self.per_day_at_baseline):
            raise ValueError(
                f"rates must be non-negative, got {self.per_day_at_baseline}"
            )
        if not self.baseline_scale > 0:
            raise ValueError(
                f"baseline_scale must be positive, got {self.baseline_scale}"
            )

    @property
    def num_levels(self) -> int:
        """``L`` — number of checkpoint levels covered."""
        return len(self.per_day_at_baseline)

    def rates_per_second(self, n: float) -> np.ndarray:
        """``[lambda_1(N), ..., lambda_L(N)]`` in events/second at scale ``n``."""
        base = np.array(
            [per_day_to_per_second(r) for r in self.per_day_at_baseline]
        )
        return base * (n / self.baseline_scale)

    def rate_derivatives_per_second(self, n: float) -> np.ndarray:
        """``d lambda_i / dN`` — constant since rates scale linearly with N."""
        del n  # linear in N, derivative is scale-independent
        base = np.array(
            [per_day_to_per_second(r) for r in self.per_day_at_baseline]
        )
        return base / self.baseline_scale

    def total_rate_per_second(self, n: float) -> float:
        """Aggregate failure rate over all levels (used by single-level baselines,
        where every failure forces a PFS-checkpoint rollback)."""
        return float(np.sum(self.rates_per_second(n)))

    def expected_failures(self, n: float, wallclock_seconds: float) -> np.ndarray:
        """``mu_i = lambda_i(N) * T_w`` — Formula (22) expectation per level."""
        if wallclock_seconds < 0:
            raise ValueError(
                f"wallclock must be non-negative, got {wallclock_seconds}"
            )
        return self.rates_per_second(n) * wallclock_seconds

    def single_level(self) -> "FailureRates":
        """Collapse all levels into one (for single-level baselines)."""
        return FailureRates(
            per_day_at_baseline=(float(sum(self.per_day_at_baseline)),),
            baseline_scale=self.baseline_scale,
        )

    @classmethod
    def from_case_name(
        cls, case: str, baseline_scale: float = 1_000_000.0
    ) -> "FailureRates":
        """Parse the paper's ``"16-12-8-4"``-style case labels.

        Each dash-separated token is events/day at one level; ``0.5``-style
        fractional tokens are accepted (case ``4-2-1-0.5``).
        """
        try:
            rates = tuple(float(tok) for tok in case.split("-"))
        except ValueError:
            raise ValueError(f"cannot parse failure-rate case name {case!r}") from None
        if not rates:
            raise ValueError(f"empty failure-rate case name {case!r}")
        return cls(per_day_at_baseline=rates, baseline_scale=baseline_scale)

    def case_name(self) -> str:
        """Inverse of :meth:`from_case_name` (``16-12-8-4`` style)."""
        parts = []
        for r in self.per_day_at_baseline:
            parts.append(f"{r:g}")
        return "-".join(parts)
