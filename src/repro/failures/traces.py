"""Failure trace generation.

A *trace* is the time-ordered list of failure events (arrival instant +
checkpoint level) the simulator injects into a run.  Traces are generated
per level from an :class:`~repro.failures.distributions.ArrivalProcess`
and merged; each level's stream uses an independent child generator so
replicated runs are reproducible from one root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.failures.distributions import ArrivalProcess, ExponentialArrivals
from repro.failures.rates import FailureRates
from repro.util.rng import SeedLike, spawn_generators


@dataclass(frozen=True, order=True)
class FailureEventRecord:
    """One failure occurrence: wall-clock instant (s) and level (1-based).

    Ordering is by time (then level) so sorted traces are chronological.
    """

    time: float
    level: int

    def __post_init__(self):
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")
        if self.level < 1:
            raise ValueError(f"level must be >= 1, got {self.level}")


def generate_trace(
    rates: FailureRates,
    n: float,
    horizon_seconds: float,
    *,
    process: ArrivalProcess | None = None,
    seed: SeedLike = None,
) -> list[FailureEventRecord]:
    """Generate a chronological failure trace over ``[0, horizon)``.

    Parameters
    ----------
    rates:
        Per-level failure rates (scaled to ``n`` internally).
    n:
        Execution scale in cores.
    horizon_seconds:
        Trace length.  The simulator extends traces lazily when a run
        overshoots; see :class:`repro.sim.failure_injection.FailureInjector`.
    process:
        Inter-arrival process (default exponential, as in the paper).
    seed:
        Root seed; each level gets an independent child stream.
    """
    if process is None:
        process = ExponentialArrivals()
    level_rates = rates.rates_per_second(n)
    rngs = spawn_generators(seed, len(level_rates))
    events: list[FailureEventRecord] = []
    for level_idx, (rate, rng) in enumerate(zip(level_rates, rngs)):
        if rate <= 0:
            continue
        arrivals = process.sample_arrivals(rate, horizon_seconds, seed=rng)
        events.extend(
            FailureEventRecord(time=float(t), level=level_idx + 1) for t in arrivals
        )
    events.sort()
    return events


def merge_traces(
    *traces: Sequence[FailureEventRecord],
) -> list[FailureEventRecord]:
    """Merge chronological traces into one chronological trace."""
    merged: list[FailureEventRecord] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort()
    return merged


def empirical_rates_per_day(
    trace: Sequence[FailureEventRecord],
    horizon_seconds: float,
    num_levels: int,
) -> np.ndarray:
    """Observed events/day per level in a trace (for calibration tests)."""
    if horizon_seconds <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_seconds}")
    counts = np.zeros(num_levels)
    for event in trace:
        if event.level > num_levels:
            raise ValueError(
                f"trace contains level {event.level} but num_levels={num_levels}"
            )
        counts[event.level - 1] += 1
    return counts / (horizon_seconds / 86_400.0)
