"""Failure inter-arrival time distributions.

The paper's evaluation uses exponential inter-arrival times ("the behavior
of the system for most of its lifetime", citing Snyder & Miller).  Weibull
and lognormal processes are provided for the robustness ablation: the
optimizer assumes only the *expected number* of failures per level
(Formula 22), so its solutions should degrade gracefully under
non-exponential arrivals — the ablation bench checks exactly that.

Every process yields inter-arrival times with a prescribed *mean rate*
(events/second) so that swapping distributions holds ``mu_i`` fixed.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.util.rng import SeedLike, as_generator


class ArrivalProcess(abc.ABC):
    """A renewal process generating failure arrival times."""

    @abc.abstractmethod
    def sample_interarrivals(
        self, rate_per_second: float, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``size`` inter-arrival times (seconds) with mean ``1/rate``."""

    def sample_arrivals(
        self,
        rate_per_second: float,
        horizon_seconds: float,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Arrival instants in ``[0, horizon)`` for the given mean rate.

        Draws inter-arrival batches and accumulates until the horizon is
        exceeded; returns a sorted 1-D array (empty when the rate is zero).
        """
        if rate_per_second < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_second}")
        if horizon_seconds < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon_seconds}")
        if rate_per_second == 0.0 or horizon_seconds == 0.0:
            return np.empty(0)
        rng = as_generator(seed)
        expected = rate_per_second * horizon_seconds
        batch = max(16, int(expected * 1.5) + 8)
        times: list[np.ndarray] = []
        total = 0.0
        while True:
            gaps = self.sample_interarrivals(rate_per_second, batch, rng)
            arrivals = total + np.cumsum(gaps)
            times.append(arrivals)
            total = float(arrivals[-1])
            if total >= horizon_seconds:
                break
        all_arrivals = np.concatenate(times)
        return all_arrivals[all_arrivals < horizon_seconds]


class ExponentialArrivals(ArrivalProcess):
    """Poisson process — exponential inter-arrival times (the paper's choice)."""

    def sample_interarrivals(self, rate_per_second, size, rng):
        if rate_per_second <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_second}")
        return rng.exponential(1.0 / rate_per_second, size=size)

    def __repr__(self) -> str:
        return "ExponentialArrivals()"


class WeibullArrivals(ArrivalProcess):
    """Weibull renewal process with shape ``k`` and mean ``1/rate``.

    ``k < 1`` models infant-mortality-dominated systems (bursty failures),
    ``k = 1`` degenerates to exponential, ``k > 1`` to wear-out behaviour.
    The scale parameter is chosen so the mean inter-arrival equals
    ``1/rate``: ``scale = 1 / (rate * Gamma(1 + 1/k))``.
    """

    def __init__(self, shape: float = 0.7):
        if not shape > 0:
            raise ValueError(f"Weibull shape must be positive, got {shape}")
        self.shape = float(shape)

    def sample_interarrivals(self, rate_per_second, size, rng):
        if rate_per_second <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_second}")
        scale = 1.0 / (rate_per_second * math.gamma(1.0 + 1.0 / self.shape))
        return scale * rng.weibull(self.shape, size=size)

    def __repr__(self) -> str:
        return f"WeibullArrivals(shape={self.shape})"


class LognormalArrivals(ArrivalProcess):
    """Lognormal renewal process with log-space sigma and mean ``1/rate``.

    ``mu`` in log space is chosen so the arithmetic mean equals ``1/rate``:
    ``mu = -ln(rate) - sigma^2 / 2``.
    """

    def __init__(self, sigma: float = 1.0):
        if not sigma > 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def sample_interarrivals(self, rate_per_second, size, rng):
        if rate_per_second <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_second}")
        mu = -math.log(rate_per_second) - self.sigma**2 / 2.0
        return rng.lognormal(mean=mu, sigma=self.sigma, size=size)

    def __repr__(self) -> str:
        return f"LognormalArrivals(sigma={self.sigma})"
