"""repro — reproduction of *Optimization of a Multilevel Checkpoint Model
with Uncertain Execution Scales* (Di, Bautista-Gomez, Cappello; SC 2014).

The library co-optimizes per-level checkpoint interval counts and the
execution scale of a parallel application protected by an FTI-style
multilevel checkpoint toolkit, and ships the full evaluation stack: cost /
speedup / failure models, a functional FTI reimplementation (real
Reed-Solomon erasure coding), a simulated cluster, an exascale simulator,
and drivers for every table and figure in the paper.

Quickstart
----------
>>> import repro
>>> params = repro.ModelParameters.from_core_days(
...     3e6,
...     speedup=repro.QuadraticSpeedup(kappa=0.46, ideal_scale=1e6),
...     costs=repro.fusion_cost_models(),
...     rates=repro.FailureRates.from_case_name("8-4-2-1", baseline_scale=1e6),
...     allocation_period=60.0,
... )
>>> solution = repro.ml_opt_scale(params)   # this paper's strategy
>>> ensemble = repro.simulate_solution(params, solution, n_runs=10, seed=0)

See README.md for the architecture overview and DESIGN.md for the
module-by-module inventory.
"""

from repro.analysis import pareto_sweep
from repro.core import (
    Algorithm1Result,
    ModelParameters,
    Solution,
    algorithm1_optimize,
    compare_all_strategies,
    corrected_parameters,
    corrected_wallclock,
    daly_interval,
    effective_cost,
    expected_rollback_loss,
    expected_wallclock,
    ml_opt_scale,
    ml_ori_scale,
    optimize_level_selection,
    self_consistent_wallclock,
    sensitivity_report,
    single_level_wallclock,
    sl_opt_scale,
    sl_ori_scale,
    solve_single_level_linear,
    solve_single_level_nonlinear,
    time_portions,
    young_interval,
    young_num_intervals,
)
from repro.costs import CostModel, LevelCostModel, fit_cost_model
from repro.experiments.config import (
    fusion_cost_models,
    make_params,
    paper_speedup,
    table4_cost_models,
)
from repro.failures import (
    ExponentialArrivals,
    FailureRates,
    LognormalArrivals,
    WeibullArrivals,
    rates_from_node_mtbf,
)
from repro.sim import (
    EnsembleResult,
    SimResult,
    SimulationConfig,
    run_ensemble,
    simulate,
    simulate_solution,
)
from repro.speedup import (
    AmdahlSpeedup,
    GustafsonSpeedup,
    InterpolatedSpeedup,
    LinearSpeedup,
    QuadraticSpeedup,
    fit_quadratic_speedup,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model & solvers
    "ModelParameters",
    "Solution",
    "Algorithm1Result",
    "algorithm1_optimize",
    "expected_wallclock",
    "expected_rollback_loss",
    "self_consistent_wallclock",
    "single_level_wallclock",
    "time_portions",
    "solve_single_level_linear",
    "solve_single_level_nonlinear",
    "young_interval",
    "young_num_intervals",
    "daly_interval",
    # strategies
    "ml_opt_scale",
    "sl_opt_scale",
    "ml_ori_scale",
    "sl_ori_scale",
    "compare_all_strategies",
    # extensions
    "optimize_level_selection",
    "sensitivity_report",
    "corrected_parameters",
    "corrected_wallclock",
    "effective_cost",
    "pareto_sweep",
    "rates_from_node_mtbf",
    # models
    "CostModel",
    "LevelCostModel",
    "fit_cost_model",
    "FailureRates",
    "ExponentialArrivals",
    "WeibullArrivals",
    "LognormalArrivals",
    "LinearSpeedup",
    "QuadraticSpeedup",
    "AmdahlSpeedup",
    "GustafsonSpeedup",
    "InterpolatedSpeedup",
    "fit_quadratic_speedup",
    # simulator
    "SimulationConfig",
    "SimResult",
    "EnsembleResult",
    "simulate",
    "run_ensemble",
    "simulate_solution",
    # evaluation configuration
    "fusion_cost_models",
    "table4_cost_models",
    "make_params",
    "paper_speedup",
]
