"""FTI checkpoint-overhead characterization on the Argonne Fusion cluster.

This module records the paper's Table II verbatim (measured per-level
checkpoint overheads of the Heat Distribution application under FTI, for
128-1,024 cores) together with the least-squares coefficients the paper
quotes: ``(eps_i, alpha_i) = (0.866, 0), (2.586, 0), (3.886, 0),
(5.5, 0.0212)`` for levels 1-4 (local storage, partner copy, RS encoding,
PFS).  Levels 1-3 are scale-independent; the PFS level grows linearly with
the execution scale.

Every evaluation-section experiment draws its cost models from here, exactly
as the paper's simulator does.
"""

from __future__ import annotations

import numpy as np

from repro.costs.fitting import fit_cost_model
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import CONSTANT, LINEAR

#: Execution scales (cores) of the Table II characterization runs.
FTI_FUSION_SCALES: np.ndarray = np.array([128, 256, 384, 512, 1024], dtype=float)

#: Table II — measured checkpoint overhead (seconds), rows = scales above,
#: columns = levels 1..4 (local, partner, RS, PFS).
FTI_FUSION_CHECKPOINT_TABLE: np.ndarray = np.array(
    [
        [0.90, 2.53, 3.70, 7.00],
        [0.67, 2.54, 4.10, 8.10],
        [0.67, 2.25, 3.90, 14.30],
        [0.99, 3.05, 4.12, 21.30],
        [1.10, 2.56, 3.61, 25.15],
    ]
)

#: The least-squares coefficients the paper quotes for Table II.
FTI_FUSION_PAPER_COEFFS: tuple[tuple[float, float], ...] = (
    (0.866, 0.0),
    (2.586, 0.0),
    (3.886, 0.0),
    (5.5, 0.0212),
)

#: Human-readable names of FTI's four checkpoint levels.
FTI_LEVEL_NAMES: tuple[str, ...] = (
    "local-storage",
    "partner-copy",
    "rs-encoding",
    "pfs",
)


def fti_fusion_paper_coefficients() -> LevelCostModel:
    """Cost models built from the paper's quoted ``(eps_i, alpha_i)``.

    Recovery overheads are taken equal to checkpoint overheads, the paper's
    default when no separate recovery characterization is given.
    """
    models = []
    for eps, alpha in FTI_FUSION_PAPER_COEFFS:
        if alpha == 0.0:
            models.append(CostModel(constant=eps, coefficient=0.0, baseline=CONSTANT))
        else:
            models.append(CostModel(constant=eps, coefficient=alpha, baseline=LINEAR))
    return LevelCostModel(checkpoint=tuple(models), recovery=tuple(models))


def fti_fusion_cost_models(*, snap_threshold: float = 0.3) -> LevelCostModel:
    """Re-derive the cost models from the raw Table II data by least squares.

    Reproduces the paper's fitting procedure (including the snap-to-constant
    step for levels whose scaling term is negligible).  The result should be
    close to :func:`fti_fusion_paper_coefficients`; the Table II bench
    verifies that.
    """
    models = tuple(
        fit_cost_model(
            FTI_FUSION_SCALES,
            FTI_FUSION_CHECKPOINT_TABLE[:, level],
            snap_threshold=snap_threshold,
        )
        for level in range(FTI_FUSION_CHECKPOINT_TABLE.shape[1])
    )
    return LevelCostModel(checkpoint=models, recovery=models)
