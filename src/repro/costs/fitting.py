"""Least-squares fitting of cost models to characterization data.

The paper derives the Formula (19)/(20) coefficients ``(eps_i, alpha_i)`` by
least squares on the measured per-scale checkpoint overheads (Table II) and
then zeroes coefficients that are statistically negligible (levels 1-3 "look
like constants", so ``alpha_1 = alpha_2 = alpha_3 = 0`` approximately holds).
``fit_cost_model`` reproduces that procedure, including the
negligible-coefficient snap-to-constant step.
"""

from __future__ import annotations

import numpy as np

from repro.costs.model import CostModel
from repro.costs.scaling import CONSTANT, ScalingBaseline, LINEAR


def fit_cost_model(
    scales,
    costs,
    *,
    baseline: ScalingBaseline = LINEAR,
    snap_threshold: float = 0.2,
) -> CostModel:
    """Fit ``cost(N) = eps + alpha * H(N)`` to measured points.

    Parameters
    ----------
    scales, costs:
        Measured core counts and overheads (seconds), equal-length 1-D
        array-likes with at least two points.
    baseline:
        The ``H`` function to fit against (default linear, as in Table II's
        PFS level).
    snap_threshold:
        If the fitted scaling term ``alpha * H(N)`` contributes less than
        this fraction of the mean measured cost over the observed scales,
        the model is snapped to a pure constant (the paper's
        "alpha_1 = alpha_2 = alpha_3 = 0 approximately holds" step).  Set to
        0 to disable snapping.

    Returns
    -------
    CostModel
        With non-negative ``constant`` and ``coefficient`` (negative fitted
        values are clipped to zero and the companion coefficient re-fitted,
        since Formula 19/20 coefficients are physical non-negative costs).
    """
    scales = np.asarray(scales, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if scales.shape != costs.shape or scales.ndim != 1:
        raise ValueError(
            f"scales and costs must be equal-length 1-D arrays, got shapes "
            f"{scales.shape} and {costs.shape}"
        )
    if scales.size < 2:
        raise ValueError(f"need at least 2 characterization points, got {scales.size}")
    if np.any(costs < 0):
        raise ValueError("measured costs must be non-negative")

    h = np.asarray(baseline(scales), dtype=float)
    design = np.column_stack([np.ones_like(scales), h])
    (eps, alpha), _, _, _ = np.linalg.lstsq(design, costs, rcond=None)

    if alpha < 0:
        # Decreasing cost with scale is unphysical in this model; refit as constant.
        eps, alpha = float(np.mean(costs)), 0.0
    elif eps < 0:
        # All cost attributed to scaling; refit alpha with eps pinned at 0.
        eps = 0.0
        denom = float(h @ h)
        alpha = float(h @ costs / denom) if denom > 0 else 0.0

    eps, alpha = float(eps), float(alpha)
    if snap_threshold > 0 and alpha > 0:
        scaling_part = alpha * float(np.mean(h))
        mean_cost = float(np.mean(costs))
        if mean_cost > 0 and scaling_part / mean_cost < snap_threshold:
            return CostModel(
                constant=float(np.mean(costs)), coefficient=0.0, baseline=CONSTANT
            )
    if alpha == 0.0:
        return CostModel(constant=eps, coefficient=0.0, baseline=CONSTANT)
    return CostModel(constant=eps, coefficient=alpha, baseline=baseline)
