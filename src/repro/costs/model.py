"""Per-level checkpoint/recovery cost models (Formulas 19/20).

``CostModel`` captures one overhead function ``eps + alpha * H(N)``;
``LevelCostModel`` bundles the checkpoint and recovery overheads of all
``L`` levels, which is the object every solver and the simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.costs.scaling import CONSTANT, ScalingBaseline


@dataclass(frozen=True)
class CostModel:
    """One overhead function ``cost(N) = constant + coefficient * H(N)``.

    Covers both checkpoint overhead ``C_i(N) = eps_i + alpha_i H_c(N)``
    (Formula 19) and recovery overhead ``R_i(N) = eta_i + beta_i H_r(N)``
    (Formula 20).
    """

    constant: float
    coefficient: float = 0.0
    baseline: ScalingBaseline = field(default=CONSTANT)

    def __post_init__(self):
        if self.constant < 0:
            raise ValueError(f"constant cost must be >= 0, got {self.constant}")
        if self.coefficient < 0:
            raise ValueError(f"coefficient must be >= 0, got {self.coefficient}")

    def __call__(self, n):
        """Overhead in seconds at scale(s) ``n``."""
        return self.constant + self.coefficient * self.baseline(n)

    def derivative(self, n):
        """d cost / dN at scale(s) ``n`` (needed by Formula 24)."""
        return self.coefficient * self.baseline.derivative(n)

    def is_constant(self) -> bool:
        """True when the overhead does not vary with the execution scale."""
        return self.coefficient == 0.0 or self.baseline.name == "constant"

    @classmethod
    def constant_cost(cls, seconds: float) -> "CostModel":
        """A scale-independent overhead of ``seconds``."""
        return cls(constant=seconds, coefficient=0.0, baseline=CONSTANT)


@dataclass(frozen=True)
class LevelCostModel:
    """Checkpoint + recovery overhead functions for all ``L`` levels.

    Invariants enforced: equal level counts, at least one level.  The paper
    notes ``C_1 <= C_2 <= ... <= C_L`` holds *in general*; that ordering is
    not enforced (measured data can jitter, cf. Table II level-1 column) but
    :meth:`is_monotone_at` lets callers check it at a given scale.
    """

    checkpoint: tuple[CostModel, ...]
    recovery: tuple[CostModel, ...]

    def __post_init__(self):
        if len(self.checkpoint) == 0:
            raise ValueError("at least one checkpoint level is required")
        if len(self.checkpoint) != len(self.recovery):
            raise ValueError(
                f"checkpoint has {len(self.checkpoint)} levels but recovery "
                f"has {len(self.recovery)}"
            )

    @property
    def num_levels(self) -> int:
        """``L`` — the number of checkpoint levels."""
        return len(self.checkpoint)

    def checkpoint_costs(self, n) -> np.ndarray:
        """Vector ``[C_1(N), ..., C_L(N)]`` in seconds."""
        return np.array([c(n) for c in self.checkpoint], dtype=float)

    def recovery_costs(self, n) -> np.ndarray:
        """Vector ``[R_1(N), ..., R_L(N)]`` in seconds."""
        return np.array([r(n) for r in self.recovery], dtype=float)

    def checkpoint_derivatives(self, n) -> np.ndarray:
        """Vector ``[C_1'(N), ..., C_L'(N)]``."""
        return np.array([c.derivative(n) for c in self.checkpoint], dtype=float)

    def recovery_derivatives(self, n) -> np.ndarray:
        """Vector ``[R_1'(N), ..., R_L'(N)]``."""
        return np.array([r.derivative(n) for r in self.recovery], dtype=float)

    def is_monotone_at(self, n) -> bool:
        """Whether ``C_1(N) <= ... <= C_L(N)`` holds at scale ``n``."""
        costs = self.checkpoint_costs(n)
        return bool(np.all(np.diff(costs) >= 0))

    def single_level(self, level: int) -> "LevelCostModel":
        """Collapse to a one-level model using level ``level`` (1-based).

        Used to build the single-level (PFS-only) baselines: the last level's
        costs with all failures routed to it.
        """
        if not 1 <= level <= self.num_levels:
            raise ValueError(
                f"level must be in [1, {self.num_levels}], got {level}"
            )
        idx = level - 1
        return LevelCostModel(
            checkpoint=(self.checkpoint[idx],),
            recovery=(self.recovery[idx],),
        )

    @classmethod
    def from_constants(
        cls,
        checkpoint_seconds: Sequence[float],
        recovery_seconds: Sequence[float] | None = None,
    ) -> "LevelCostModel":
        """Build a model from constant per-level costs.

        ``recovery_seconds`` defaults to the checkpoint costs (the paper's
        evaluation uses symmetric C/R unless stated otherwise).
        """
        if recovery_seconds is None:
            recovery_seconds = checkpoint_seconds
        return cls(
            checkpoint=tuple(CostModel.constant_cost(c) for c in checkpoint_seconds),
            recovery=tuple(CostModel.constant_cost(r) for r in recovery_seconds),
        )
