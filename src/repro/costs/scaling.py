"""Scaling baselines ``H_c(N)`` / ``H_r(N)`` for the cost model.

Formulas (19)/(20) express per-level overheads as
``C_i(N) = eps_i + alpha_i * H_c(N)`` where ``H`` is a baseline function
that passes through the origin.  ``H = 0`` models constant overheads
(local-storage levels, Table II rows 1-3; also the Blue Waters constant-PFS
scenario of Table IV); ``H = N`` models linearly growing overheads (the PFS
level in Table II).  Sub-linear baselines (sqrt, log) are provided for
storage systems with partial parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ScalingBaseline:
    """A named baseline function ``H(N)`` with derivative ``H'(N)``.

    Both callables accept scalars or arrays.  The function must satisfy
    ``H(0) = 0`` (checked on construction at a sample point).
    """

    name: str
    func: Callable
    deriv: Callable

    def __post_init__(self):
        at_zero = float(self.func(0.0))
        if abs(at_zero) > 1e-12:
            raise ValueError(
                f"baseline {self.name!r} must pass through the origin, "
                f"but H(0) = {at_zero}"
            )

    def __call__(self, n):
        return self.func(np.asarray(n, dtype=float))

    def derivative(self, n):
        return self.deriv(np.asarray(n, dtype=float))

    def __reduce__(self):
        # The stock baselines hold lambdas, which do not pickle; registered
        # names round-trip by reference instead so cost models (and the
        # ModelParameters built from them) can cross process-pool
        # boundaries.  Ad-hoc baselines keep the default behaviour.
        if _REGISTRY.get(self.name) is self:
            return (named_baseline, (self.name,))
        return super().__reduce__()


CONSTANT = ScalingBaseline(
    name="constant",
    func=lambda n: np.zeros_like(np.asarray(n, dtype=float)),
    deriv=lambda n: np.zeros_like(np.asarray(n, dtype=float)),
)

LINEAR = ScalingBaseline(
    name="linear",
    func=lambda n: np.asarray(n, dtype=float),
    deriv=lambda n: np.ones_like(np.asarray(n, dtype=float)),
)

SQRT = ScalingBaseline(
    name="sqrt",
    func=lambda n: np.sqrt(np.asarray(n, dtype=float)),
    deriv=lambda n: 0.5 / np.sqrt(np.maximum(np.asarray(n, dtype=float), 1e-300)),
)

LOG = ScalingBaseline(
    name="log",
    func=lambda n: np.log1p(np.asarray(n, dtype=float)),
    deriv=lambda n: 1.0 / (1.0 + np.asarray(n, dtype=float)),
)

_REGISTRY = {b.name: b for b in (CONSTANT, LINEAR, SQRT, LOG)}


def named_baseline(name: str) -> ScalingBaseline:
    """Look up a baseline by name (``constant``/``linear``/``sqrt``/``log``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
