"""Checkpoint/recovery overhead models (paper Formulas 19/20, Table II)."""

from repro.costs.scaling import (
    ScalingBaseline,
    CONSTANT,
    LINEAR,
    SQRT,
    LOG,
    named_baseline,
)
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.fitting import fit_cost_model
from repro.costs.fti_fusion import (
    FTI_FUSION_CHECKPOINT_TABLE,
    FTI_FUSION_SCALES,
    fti_fusion_cost_models,
    fti_fusion_paper_coefficients,
)

__all__ = [
    "ScalingBaseline",
    "CONSTANT",
    "LINEAR",
    "SQRT",
    "LOG",
    "named_baseline",
    "CostModel",
    "LevelCostModel",
    "fit_cost_model",
    "FTI_FUSION_CHECKPOINT_TABLE",
    "FTI_FUSION_SCALES",
    "fti_fusion_cost_models",
    "fti_fusion_paper_coefficients",
]
