"""Figure 3 — numerical confirmation of the single-level optimum.

Settings from Section III-C.2: workload 4,000 core-days, ``N^(*) =
100,000`` cores, ``b = 0.005`` expected failures per core, ``kappa = 0.46``,
``A = 0``; two cost scenarios:

* constant ``C(N) = R(N) = 5`` s — the paper's optimum: ``x* = 797``,
  ``N* = 81,746``;
* linear ``C(N) = R(N) = 5 + 0.005 N`` — the paper's optimum: ``x* = 140``,
  ``N* = 20,215``.

The driver solves both with the Formula (16)/(17) fixed point and sweeps
the objective around the solution (the Fig. 3 curves) so the bench can
assert the solved point beats every swept neighbour and matches the quoted
optima.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.single_level import SingleLevelSolution, solve_single_level_nonlinear
from repro.core.wallclock import single_level_wallclock
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import LINEAR
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup
from repro.util.units import core_days_to_core_seconds

#: The optima quoted in the paper for the two scenarios.
PAPER_OPTIMUM_CONSTANT: tuple[float, float] = (797.0, 81_746.0)
PAPER_OPTIMUM_LINEAR: tuple[float, float] = (140.0, 20_215.0)

FIG3_TE_CORE_DAYS: float = 4_000.0
FIG3_IDEAL_SCALE: float = 100_000.0
FIG3_B: float = 0.005
FIG3_KAPPA: float = 0.46


@dataclass(frozen=True)
class Fig3Scenario:
    """One cost scenario's solved optimum plus confirmation sweeps."""

    label: str
    solution: SingleLevelSolution
    sweep_x: np.ndarray
    sweep_x_objective: np.ndarray
    sweep_n: np.ndarray
    sweep_n_objective: np.ndarray
    paper_optimum: tuple[float, float]


@dataclass(frozen=True)
class Fig3Result:
    """Both Fig. 3 scenarios."""

    constant_cost: Fig3Scenario
    linear_cost: Fig3Scenario


def _params(linear_cost: bool) -> ModelParameters:
    if linear_cost:
        cost = CostModel(constant=5.0, coefficient=0.005, baseline=LINEAR)
    else:
        cost = CostModel.constant_cost(5.0)
    return ModelParameters(
        te_core_seconds=core_days_to_core_seconds(FIG3_TE_CORE_DAYS),
        speedup=QuadraticSpeedup(kappa=FIG3_KAPPA, ideal_scale=FIG3_IDEAL_SCALE),
        costs=LevelCostModel(checkpoint=(cost,), recovery=(cost,)),
        rates=FailureRates((1.0,), baseline_scale=FIG3_IDEAL_SCALE),
        allocation_period=0.0,
    )


def _scenario(label: str, linear_cost: bool, paper_optimum) -> Fig3Scenario:
    params = _params(linear_cost)
    solution = solve_single_level_nonlinear(params, b=FIG3_B)
    sweep_x = np.geomspace(solution.x / 8.0, solution.x * 8.0, 33)
    sweep_x_obj = np.array(
        [
            single_level_wallclock(params, float(x), solution.n, mu=FIG3_B * solution.n)
            for x in sweep_x
        ]
    )
    sweep_n = np.linspace(solution.n / 8.0, min(solution.n * 4.0, FIG3_IDEAL_SCALE), 33)
    sweep_n_obj = np.array(
        [
            single_level_wallclock(params, solution.x, float(n), mu=FIG3_B * float(n))
            for n in sweep_n
        ]
    )
    return Fig3Scenario(
        label=label,
        solution=solution,
        sweep_x=sweep_x,
        sweep_x_objective=sweep_x_obj,
        sweep_n=sweep_n,
        sweep_n_objective=sweep_n_obj,
        paper_optimum=paper_optimum,
    )


def run_fig3() -> Fig3Result:
    """Solve and confirm both Fig. 3 scenarios."""
    return Fig3Result(
        constant_cost=_scenario("C(N)=R(N)=5s", False, PAPER_OPTIMUM_CONSTANT),
        linear_cost=_scenario(
            "C(N)=R(N)=5+0.005N", True, PAPER_OPTIMUM_LINEAR
        ),
    )
