"""Figure 1 — tradeoff between execution speedup and checkpoint overhead.

The paper's motivating illustration: the failure-free performance curve
keeps improving toward ``N^(*)``, but once checkpoint overheads and
scale-proportional failure rates are charged, the performance optimum moves
to a *smaller* scale.  This driver generates both series (inverse wall-clock
vs scale, with and without the checkpoint model) and locates both optima;
the bench asserts the checkpointed optimum is strictly below ``N^(*)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.notation import ModelParameters
from repro.core.young import young_initial_intervals
from repro.core.wallclock import self_consistent_wallclock
from repro.experiments.config import make_params


@dataclass(frozen=True)
class Fig1Result:
    """Series for the tradeoff illustration.

    Attributes
    ----------
    scales:
        Core counts probed.
    performance_no_checkpoint:
        ``1 / f(T_e, N)`` — failure-free performance (arbitrary units).
    performance_with_checkpoint:
        ``1 / E(T_w)`` with per-scale Young intervals and self-consistent
        failure counts (``0`` where infeasible).
    optimal_scale_no_checkpoint:
        Argmax of the failure-free series (= ``N^(*)`` by construction).
    optimal_scale_with_checkpoint:
        Argmax of the checkpointed series (strictly smaller).
    """

    scales: np.ndarray
    performance_no_checkpoint: np.ndarray
    performance_with_checkpoint: np.ndarray
    optimal_scale_no_checkpoint: float
    optimal_scale_with_checkpoint: float


def run_fig1(
    *,
    te_core_days: float = 3e6,
    case: str = "16-12-8-4",
    n_points: int = 60,
    params: ModelParameters | None = None,
) -> Fig1Result:
    """Generate the Fig. 1 tradeoff series."""
    if params is None:
        params = make_params(te_core_days, case)
    upper = params.scale_upper_bound
    scales = np.linspace(upper / n_points, upper, n_points)
    perf_free = np.empty(n_points)
    perf_ckpt = np.empty(n_points)
    for i, n in enumerate(scales):
        f = params.productive_time(float(n))
        perf_free[i] = 1.0 / f
        mu0 = params.rates.expected_failures(float(n), f)
        x = young_initial_intervals(params, float(n), mu0)
        try:
            wallclock, _ = self_consistent_wallclock(params, x, float(n))
            perf_ckpt[i] = 1.0 / wallclock
        except ValueError:
            perf_ckpt[i] = 0.0
    return Fig1Result(
        scales=scales,
        performance_no_checkpoint=perf_free,
        performance_with_checkpoint=perf_ckpt,
        optimal_scale_no_checkpoint=float(scales[np.argmax(perf_free)]),
        optimal_scale_with_checkpoint=float(scales[np.argmax(perf_ckpt)]),
    )
