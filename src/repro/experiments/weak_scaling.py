"""Weak-scaling scenario (paper Section II's generality claim).

"The key difference between the strong-scaling scenario and weak-scaling
scenario is different speedup functions ... and checkpoint
overhead/recovery functions.  Our model is suitable for both cases."

This driver instantiates that claim: a Gustafson-Barsis scaled-speedup
application (the weak-scaling law) whose checkpoint footprint — and hence
cost — grows with the scale (per-process data is constant, so total data
grows linearly: linear `H_c`), solved with the same Algorithm 1, compared
against the same baselines, validated by the same simulator.  Nothing in
the solver stack changes — which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import compare_all_strategies
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import CONSTANT, LINEAR
from repro.failures.rates import FailureRates
from repro.sim.metrics import EnsembleResult
from repro.speedup.gustafson import GustafsonSpeedup
from repro.util.rng import SeedLike
from repro.util.units import core_days_to_core_seconds


@dataclass(frozen=True)
class WeakScalingResult:
    """Solutions (and optional simulations) of the weak-scaling scenario."""

    params: ModelParameters
    solutions: Mapping[str, Solution]
    ensembles: Mapping[str, EnsembleResult]


def weak_scaling_parameters(
    *,
    te_core_days: float = 50_000.0,
    serial_fraction: float = 0.02,
    machine_cores: float = 100_000.0,
    case: str = "48-24-12-6",
    recovery: str = "fast",
) -> ModelParameters:
    """A weak-scaling configuration.

    Costs: levels 1-3 constant (node-local paths don't feel the scale);
    level 4 linear in ``N`` (per-process data is constant under weak
    scaling, so total checkpoint volume grows with the job and the PFS is
    shared).

    ``recovery`` selects the regime the experiment contrasts:

    * ``"fast"`` — parallel restarts, seconds; with near-linear speedup the
      marginal core stays productive and the optimum sits at the *full
      machine* (ML(opt-scale) coincides with ML(ori-scale) — scale
      optimization is a strong-scaling phenomenon);
    * ``"slow"`` — restarts re-stage data through the PFS (minutes) and
      reallocation is slow; every failure now costs scale-proportional
      time, pulling the optimum *inside* the machine.
    """
    checkpoint = (
        CostModel.constant_cost(1.0),
        CostModel.constant_cost(2.5),
        CostModel.constant_cost(4.0),
        CostModel(constant=10.0, coefficient=2e-2, baseline=LINEAR),
    )
    if recovery == "fast":
        recovery_models = tuple(
            CostModel.constant_cost(c) for c in (1.0, 2.5, 4.0, 10.0)
        )
        allocation = 60.0
    elif recovery == "slow":
        recovery_models = tuple(
            CostModel.constant_cost(c) for c in (30.0, 60.0, 120.0, 1_200.0)
        )
        allocation = 300.0
    else:
        raise ValueError(f"recovery must be 'fast' or 'slow', got {recovery!r}")
    return ModelParameters(
        te_core_seconds=core_days_to_core_seconds(te_core_days),
        speedup=GustafsonSpeedup(serial_fraction, max_scale=machine_cores),
        costs=LevelCostModel(checkpoint=checkpoint, recovery=recovery_models),
        rates=FailureRates.from_case_name(case, baseline_scale=machine_cores),
        allocation_period=allocation,
    )


def run_weak_scaling(
    *,
    n_runs: int = 0,
    seed: SeedLike = 20140607,
    **param_kwargs,
) -> WeakScalingResult:
    """Solve (and with ``n_runs > 0`` simulate) the weak-scaling scenario."""
    from repro.experiments.fig5 import run_case

    params = weak_scaling_parameters(**param_kwargs)
    if n_runs > 0:
        case_result = run_case(params, "weak-scaling", n_runs=n_runs, seed=seed)
        return WeakScalingResult(
            params=params,
            solutions=case_result.solutions,
            ensembles=case_result.ensembles,
        )
    return WeakScalingResult(
        params=params,
        solutions=compare_all_strategies(params),
        ensembles={},
    )
