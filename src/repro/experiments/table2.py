"""Table II — FTI checkpoint-overhead characterization.

Regenerates the characterization from first principles: the Fusion-like
storage hierarchy (:func:`repro.cluster.characterize.fusion_like_cluster`)
is swept over the paper's scales (128-1,024 cores), producing a
Table II-shaped cost table; least-squares fitting then recovers the
Formula (19) coefficients, which are compared against the paper's quoted
``(0.866, 0), (2.586, 0), (3.886, 0), (5.5, 0.0212)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.characterize import (
    CharacterizationResult,
    characterize_checkpoint_costs,
)
from repro.costs.fti_fusion import (
    FTI_FUSION_CHECKPOINT_TABLE,
    FTI_FUSION_PAPER_COEFFS,
    FTI_FUSION_SCALES,
)


@dataclass(frozen=True)
class Table2Result:
    """Regenerated characterization vs the paper's Table II.

    Attributes
    ----------
    characterization:
        The sweep over the simulated storage hierarchy.
    paper_table:
        The paper's measured Table II (seconds).
    max_relative_error:
        Worst cell-wise relative deviation of the regenerated table from
        the paper's measurements.
    fitted_coefficients:
        ``(eps_i, alpha_i)`` recovered from the regenerated table.
    """

    characterization: CharacterizationResult
    paper_table: np.ndarray
    max_relative_error: float
    fitted_coefficients: tuple[tuple[float, float], ...]


def run_table2(*, noise: float = 0.0, seed: int = 11) -> Table2Result:
    """Regenerate Table II from the simulated cluster."""
    characterization = characterize_checkpoint_costs(
        scales=tuple(int(s) for s in FTI_FUSION_SCALES), noise=noise, seed=seed
    )
    rel = np.abs(characterization.table - FTI_FUSION_CHECKPOINT_TABLE) / (
        FTI_FUSION_CHECKPOINT_TABLE
    )
    fitted = tuple(
        (float(m.constant), float(m.coefficient))
        for m in characterization.cost_model.checkpoint
    )
    return Table2Result(
        characterization=characterization,
        paper_table=FTI_FUSION_CHECKPOINT_TABLE.copy(),
        max_relative_error=float(rel.max()),
        fitted_coefficients=fitted,
    )


def paper_coefficients() -> tuple[tuple[float, float], ...]:
    """The paper's quoted least-squares coefficients."""
    return FTI_FUSION_PAPER_COEFFS
