"""Figure 2 — speedup measurements and quadratic fits.

Two panels:

* (a) Heat Distribution up to 1,024 cores; the quadratic fit's origin slope
  should recover the paper's ``kappa ~ 0.46`` (the synthetic dataset is
  regenerated from the quoted curve — see
  :mod:`repro.speedup.datasets`), and the *measured* curve from the actual
  simulated-MPI Heat application should fit a quadratic with small
  residual;
* (b) Nek5000 eddy_uv: rise-then-fall data, fitted on the initial range
  only (:func:`repro.speedup.fitting.select_initial_range`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.eddy import measure_eddy_speedup
from repro.apps.heat import measure_heat_speedup
from repro.speedup.datasets import (
    HEAT_KAPPA,
    heat_distribution_speedup_points,
    nek5000_eddy_speedup_points,
)
from repro.speedup.fitting import QuadraticFit, fit_quadratic_speedup


@dataclass(frozen=True)
class Fig2Result:
    """Fits for both panels.

    Attributes
    ----------
    heat_paper_fit:
        Fit of the paper-calibrated Heat dataset (kappa should be ~0.46).
    heat_measured_fit:
        Fit of the speedup measured from the simulated-MPI Heat app.
    eddy_fit:
        Initial-range fit of the rise-then-fall eddy dataset.
    eddy_peak_scale:
        Scale of the maximum measured eddy speedup (~100 in the paper).
    """

    heat_paper_fit: QuadraticFit
    heat_measured_fit: QuadraticFit
    eddy_fit: QuadraticFit
    eddy_peak_scale: float


def run_fig2(*, seed: int = 20140101) -> Fig2Result:
    """Fit both Fig. 2 panels."""
    heat_scales, heat_speedups = heat_distribution_speedup_points(seed=seed)
    heat_paper_fit = fit_quadratic_speedup(heat_scales, heat_speedups)

    measured_scales = np.geomspace(64, 60_000, 14)
    m_scales, m_speedups = measure_heat_speedup(measured_scales)
    heat_measured_fit = fit_quadratic_speedup(m_scales, m_speedups)

    eddy_scales, eddy_speedups = nek5000_eddy_speedup_points(seed=seed + 1)
    eddy_fit = fit_quadratic_speedup(eddy_scales, eddy_speedups)
    peak = float(eddy_scales[np.argmax(eddy_speedups)])
    return Fig2Result(
        heat_paper_fit=heat_paper_fit,
        heat_measured_fit=heat_measured_fit,
        eddy_fit=eddy_fit,
        eddy_peak_scale=peak,
    )


def kappa_recovery_error(result: Fig2Result) -> float:
    """Relative error of the recovered Heat kappa vs the paper's 0.46."""
    return abs(result.heat_paper_fit.kappa - HEAT_KAPPA) / HEAT_KAPPA
