"""Experiment drivers: one module per paper table/figure.

Each driver exposes a ``run_*`` function returning a structured result plus
a ``render`` helper producing the paper-style rows; the corresponding bench
target in ``benchmarks/`` calls the driver and prints the table.  See
DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured records.
"""

from repro.experiments.config import (
    FIG5_CASES,
    TABLE4_CASES,
    fusion_cost_models,
    make_params,
    paper_speedup,
    table4_cost_models,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = [
    "FIG5_CASES",
    "TABLE4_CASES",
    "fusion_cost_models",
    "make_params",
    "paper_speedup",
    "table4_cost_models",
    "EXPERIMENTS",
    "get_experiment",
]
