"""Figure 4 — simulator validation against real cluster runs.

The paper validates its exascale simulator against real FTI runs of the
Heat Distribution application on the 1,024-core Fusion cluster, sweeping
the checkpoint interval on each of the four levels, and reports < 4 %
wall-clock difference.

Substitution (per DESIGN.md): physical Fusion runs are unavailable, so the
"real" reference here is the **literal 1 s tick engine**
(:mod:`repro.sim.tick`) — the paper's own stated execution granularity —
driven by the *identical* scripted failure trace, while the system under
test is the fast event-driven engine.  The per-level interval sweep and the
< 4 % acceptance criterion are preserved; the comparison validates that the
fast engine used for every exascale experiment reproduces the reference
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costs.fti_fusion import fti_fusion_paper_coefficients
from repro.failures.rates import FailureRates
from repro.failures.traces import generate_trace
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures
from repro.sim.tick import simulate_ticks

#: Fusion-scale validation setup: 1,024 cores, ~1.5 h productive run.
FIG4_SCALE: int = 1024
FIG4_PRODUCTIVE_SECONDS: float = 5_400.0
#: Aggressive failure rates so several failures land within the short run.
FIG4_RATES_PER_DAY: tuple[float, ...] = (64.0, 32.0, 16.0, 8.0)


@dataclass(frozen=True)
class Fig4Point:
    """One sweep point: per-level intervals, both engines' mean wall-clocks.

    Wall-clocks are averaged over several independent failure traces per
    point: a failure landing within one tick of a checkpoint-completion
    instant is a knife-edge on which the two engines may legitimately
    disagree (the tick engine commits events at tick boundaries), and the
    divergence is amplified by the rollback distance; averaging matches the
    paper's aggregate "difference less than 4 %" framing.
    """

    intervals: tuple[int, ...]
    wallclock_event: float
    wallclock_tick: float

    @property
    def relative_difference(self) -> float:
        """|event - tick| / tick — the Fig. 4 validation metric."""
        return abs(self.wallclock_event - self.wallclock_tick) / self.wallclock_tick


@dataclass(frozen=True)
class Fig4Result:
    """All sweep points plus the headline max difference."""

    points: tuple[Fig4Point, ...]

    @property
    def max_relative_difference(self) -> float:
        """Worst-case per-point engine disagreement (< 4 % in the paper)."""
        return max(p.relative_difference for p in self.points)

    @property
    def mean_relative_difference(self) -> float:
        """Average disagreement across the sweep."""
        return sum(p.relative_difference for p in self.points) / len(self.points)


def _base_intervals() -> tuple[int, ...]:
    return (36, 18, 9, 4)


def run_fig4(
    *,
    seed: int = 7,
    interval_factors=(0.5, 1.0, 2.0),
    dt: float = 1.0,
    traces_per_point: int = 5,
) -> Fig4Result:
    """Sweep per-level checkpoint intervals; compare both engines.

    For each level in turn, the interval count is scaled by each factor
    (the paper's "various checkpoint intervals on the four different
    levels"); both engines replay identical scripted failure traces with
    zero jitter so differences reflect engine numerics only, averaged over
    ``traces_per_point`` independent traces.
    """
    if traces_per_point < 1:
        raise ValueError(f"traces_per_point must be >= 1, got {traces_per_point}")
    costs = fti_fusion_paper_coefficients()
    ckpt = tuple(float(c) for c in costs.checkpoint_costs(FIG4_SCALE))
    rates = FailureRates(FIG4_RATES_PER_DAY, baseline_scale=FIG4_SCALE)
    base = _base_intervals()
    points: list[Fig4Point] = []
    trace_seed = seed
    for level in range(4):
        for factor in interval_factors:
            intervals = list(base)
            intervals[level] = max(2, int(round(base[level] * factor)))
            config = SimulationConfig(
                productive_seconds=FIG4_PRODUCTIVE_SECONDS,
                intervals=tuple(intervals),
                checkpoint_costs=ckpt,
                recovery_costs=ckpt,
                failure_rates=tuple(rates.rates_per_second(FIG4_SCALE)),
                allocation_period=20.0,
                jitter=0.0,
            )
            event_total = 0.0
            tick_total = 0.0
            for _ in range(traces_per_point):
                trace_seed += 1
                # Generous horizon: failures beyond the actual run are ignored.
                trace = generate_trace(
                    rates,
                    FIG4_SCALE,
                    horizon_seconds=FIG4_PRODUCTIVE_SECONDS * 20,
                    seed=trace_seed,
                )
                event = simulate(
                    config, seed=1, injector=ScriptedFailures(trace)
                )
                tick = simulate_ticks(
                    config, seed=1, dt=dt, injector=ScriptedFailures(trace)
                )
                event_total += event.wallclock
                tick_total += tick.wallclock
            points.append(
                Fig4Point(
                    intervals=tuple(intervals),
                    wallclock_event=event_total / traces_per_point,
                    wallclock_tick=tick_total / traces_per_point,
                )
            )
    return Fig4Result(points=tuple(points))
