"""Convergence study — the paper's iteration-count claims.

Claims checked: Algorithm 1 converges in 7-15 outer iterations at
``delta = 1e-12`` on the evaluation cases; the Fig. 3 single-level fixed
point needs 30-40 iterations from ``x0 = 100,000``; the whole pipeline
stays well clear of the divergence regime at 40 failures/day ("already
very high").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.convergence import ConvergenceReport, convergence_report
from repro.core.algorithm1 import optimize
from repro.experiments.config import TABLE4_CASES, make_params, table4_cost_models
from repro.experiments.fig3 import FIG3_B, _params as fig3_params
from repro.core.single_level import solve_single_level_nonlinear


@dataclass(frozen=True)
class ConvergenceStudy:
    """Iteration counts across the evaluation configurations.

    Attributes
    ----------
    algorithm1_reports:
        ``{case: ConvergenceReport}`` for the Table IV configurations
        (the setting in which the paper quotes 8/7/15 iterations).
    single_level_iterations:
        Fixed-point iterations of the Fig. 3 constant-cost solve.
    """

    algorithm1_reports: dict[str, ConvergenceReport]
    single_level_iterations: int


def run_convergence(*, delta: float = 1e-12, cases=TABLE4_CASES) -> ConvergenceStudy:
    """Measure convergence behaviour on the paper's configurations."""
    reports: dict[str, ConvergenceReport] = {}
    costs = table4_cost_models()
    for case in cases:
        params = make_params(2e6, case, costs=costs)
        result = optimize(params, delta=delta)
        reports[case] = convergence_report(result)
    single = solve_single_level_nonlinear(fig3_params(False), b=FIG3_B)
    return ConvergenceStudy(
        algorithm1_reports=reports,
        single_level_iterations=single.iterations,
    )
