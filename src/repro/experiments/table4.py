"""Table IV — constant PFS checkpoint cost (Blue-Waters-class file system).

Setting: per-level checkpoint costs fixed at (50, 100, 200, 2000) seconds
regardless of scale ("the problem size is huge", so even a scalable PFS
pays a large constant), workload T_e = 2 million core-days, ``N^(*) = 10^6``
cores, three failure cases.  The paper's table has two four-row blocks; it
does not state the parameter distinguishing them, so this reproduction uses
two allocation periods (A = 300 s upper block, A = 60 s lower block — a
faster-reallocating system), which produces the same small uniform
WCT/efficiency shift between blocks.  The substitution is recorded in
DESIGN.md/EXPERIMENTS.md.

Paper shape the bench asserts: ML(opt-scale) has the shortest wall-clock
(~11-15 days) and its efficiency beats ML(ori-scale) by >= ~12 %;
SL(ori-scale) collapses to ~890 days at efficiency ~0.002; ML(opt-scale)
scales land in the 0.8-1.0 M range (the constant PFS cost no longer punishes
large scales, so only the failure-rate growth pushes N below N^(*)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.batch_solve import (
    batch_compare_all_strategies,
    resolve_batch_solve,
)
from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import TABLE4_CASES, make_params, table4_cost_models
from repro.experiments.fig5 import CaseResult, case_tasks, run_ensemble_task
from repro.obs.metrics import METRICS
from repro.parallel.executor import Executor, ensure_executor
from repro.parallel.timing import PhaseTimer
from repro.sim.metrics import EnsembleResult
from repro.util.rng import SeedLike, spawn_generators

TABLE4_TE_CORE_DAYS: float = 2e6
#: Allocation periods distinguishing the two row blocks.
TABLE4_BLOCK_ALLOCATIONS: tuple[float, ...] = (300.0, 60.0)


@dataclass(frozen=True)
class Table4Result:
    """Both blocks of Table IV: ``blocks[a][case]`` is a CaseResult."""

    blocks: dict[float, dict[str, CaseResult]]

    def wct_days(self, allocation: float, case: str, strategy: str) -> float:
        """Simulated mean wall-clock in days for one cell."""
        ensemble = self.blocks[allocation][case].ensembles[strategy]
        return ensemble.mean_wallclock / 86_400.0

    def efficiency(self, allocation: float, case: str, strategy: str) -> float:
        """Simulated mean efficiency for one cell."""
        case_result = self.blocks[allocation][case]
        ensemble = case_result.ensembles[strategy]
        n = case_result.solutions[strategy].scale_rounded()
        te = case_result.params.te_core_seconds
        return ensemble.mean_efficiency(te, n)


def run_table4(
    *,
    cases=TABLE4_CASES,
    allocations=TABLE4_BLOCK_ALLOCATIONS,
    n_runs: int = 100,
    seed: SeedLike = 20140606,
    jitter: float = 0.3,
    jobs: int | None = None,
    executor: Executor | None = None,
    timer: PhaseTimer | None = None,
    batch: bool | None = None,
    batch_solve: bool | None = None,
) -> Table4Result:
    """Run the full Table IV experiment (both blocks).

    Every (allocation x case x strategy) ensemble is submitted to the
    executor concurrently; seed derivation matches the historical
    sequential loop, so results are bit-identical to a serial run.
    """
    timer = timer if timer is not None else PhaseTimer()
    costs = table4_cost_models()
    rngs = spawn_generators(seed, len(allocations) * len(cases))
    rng_iter = iter(rngs)

    with timer.phase("solve"):
        grid = [
            (
                allocation,
                case,
                make_params(
                    TABLE4_TE_CORE_DAYS,
                    case,
                    costs=costs,
                    allocation_period=allocation,
                ),
            )
            for allocation in allocations
            for case in cases
        ]
        if resolve_batch_solve(batch_solve):
            with timer.phase("solve.batch"):
                all_solutions = batch_compare_all_strategies(
                    [params for _, _, params in grid]
                )
        else:
            with timer.phase("solve.scalar"):
                all_solutions = [
                    compare_all_strategies(params) for _, _, params in grid
                ]
        solved = [
            (allocation, case, params, solutions, next(rng_iter))
            for (allocation, case, params), solutions in zip(
                grid, all_solutions
            )
        ]

    with timer.phase("simulate"):
        flat_tasks = []
        cells = []
        for allocation, case, params, solutions, rng in solved:
            tasks = case_tasks(
                params, solutions, n_runs=n_runs, seed=rng, jitter=jitter,
                batch=batch,
            )
            cells.append((allocation, case, params, solutions, tasks))
            flat_tasks.extend(tasks.values())
        executor, owned = ensure_executor(executor, jobs, len(flat_tasks))
        try:
            flat_outputs = executor.map(run_ensemble_task, flat_tasks)
        finally:
            if owned:
                executor.close()
        for _, snapshot in flat_outputs:
            METRICS.merge_snapshot(snapshot)
        flat_results = [ensemble for ensemble, _ in flat_outputs]

    with timer.phase("aggregate"):
        result_iter = iter(flat_results)
        blocks: dict[float, dict[str, CaseResult]] = {}
        for allocation, case, params, solutions, tasks in cells:
            ensembles = {name: next(result_iter) for name in tasks.keys()}
            blocks.setdefault(allocation, {})[case] = CaseResult(
                case=case,
                params=params,
                solutions=solutions,
                ensembles=ensembles,
            )
    return Table4Result(blocks=blocks)
