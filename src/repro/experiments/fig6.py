"""Figure 6 — time portions at the larger workload (T_e = 10m core-days).

Identical protocol to Fig. 5 with a 10-million-core-day workload.  The
paper's finding: the gains of ML(opt-scale) shrink (4.3-42.3 % vs the
fixed-scale solutions) because the productive time dominates a larger share
of the wall-clock; the bench asserts exactly that relative-gain contraction
against the Fig. 5 result.
"""

from __future__ import annotations

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.parallel.executor import Executor
from repro.parallel.timing import PhaseTimer
from repro.util.rng import SeedLike


def run_fig6(
    *,
    cases=None,
    n_runs: int = 100,
    seed: SeedLike = 20140605,
    jitter: float = 0.3,
    jobs: int | None = None,
    executor: Executor | None = None,
    timer: PhaseTimer | None = None,
    trace_dir=None,
    batch: bool | None = None,
    batch_solve: bool | None = None,
) -> Fig5Result:
    """Run the Fig. 6 experiment (Fig. 5 protocol at T_e = 10m core-days).

    ``trace_dir`` exports per-ensemble JSONL event traces
    (``fig6_<case>_<strategy>.jsonl``), exactly like
    :func:`~repro.experiments.fig5.run_fig5`.
    """
    kwargs = {}
    if cases is not None:
        kwargs["cases"] = cases
    return run_fig5(
        te_core_days=10e6, n_runs=n_runs, seed=seed, jitter=jitter,
        jobs=jobs, executor=executor, timer=timer, trace_dir=trace_dir,
        trace_prefix="fig6", batch=batch, batch_solve=batch_solve, **kwargs
    )


def relative_gain(result: Fig5Result, over: str = "ml-ori-scale") -> dict[str, float]:
    """ML(opt-scale)'s simulated wall-clock reduction vs ``over``, per case.

    ``(T_over - T_ml_opt) / T_over`` — the quantity whose contraction from
    Fig. 5 to Fig. 6 the paper reports.
    """
    gains: dict[str, float] = {}
    for case in result.cases:
        t_opt = case.ensembles["ml-opt-scale"].mean_wallclock
        t_ref = case.ensembles[over].mean_wallclock
        gains[case.case] = (t_ref - t_opt) / t_ref
    return gains
