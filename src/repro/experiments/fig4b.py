"""Figure 4b (extension) — abstract simulator vs functional ground truth.

The paper's Fig. 4 validates its simulator against real cluster runs.  This
repo's closest analogue: validate the *abstract* event-driven simulator
(which prices checkpoints and failures) against the *functional* simulation
(which actually executes the Heat kernel, serializes checkpoints through
the FTI stack, erases node data, and restores state bit-exactly).

Both are configured from the same physical inputs — the storage
hierarchy's per-level durations, the same per-level failure rates, the same
cadence — and compared on mean wall-clock over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.heat import HeatDistribution2D
from repro.cluster.storage import StorageHierarchy
from repro.cluster.topology import ClusterTopology
from repro.failures.rates import FailureRates
from repro.failures.traces import generate_trace
from repro.funcsim.config import FunctionalConfig
from repro.funcsim.run import run_functional
from repro.sim.config import SimulationConfig
from repro.sim.engine import simulate
from repro.sim.failure_injection import ScriptedFailures
from repro.util.rng import spawn_generators


@dataclass(frozen=True)
class Fig4bResult:
    """Mean wall-clocks of both simulators plus the validation metric."""

    functional_mean: float
    abstract_mean: float
    functional_runs: tuple[float, ...]
    abstract_runs: tuple[float, ...]

    @property
    def relative_difference(self) -> float:
        """|abstract - functional| / functional."""
        return abs(self.abstract_mean - self.functional_mean) / self.functional_mean


def abstract_config_from_functional(config: FunctionalConfig) -> SimulationConfig:
    """Derive the equivalent abstract simulator configuration.

    Productive time = sweeps x per-sweep duration; interval counts
    ``x_i = total_sweeps / cadence_i`` (a disabled level gets ``x_i = 1``,
    i.e. zero checkpoints); per-level costs read off the same storage
    hierarchy at the same scale.
    """
    n = config.num_ranks
    sweep_duration = float(
        HeatDistribution2D.iteration_time(n, grid_size=config.grid_size)
    )
    intervals = tuple(
        max(1, config.total_sweeps // cadence) if cadence > 0 else 1
        for cadence in config.checkpoint_interval_sweeps
    )
    costs = tuple(
        config.storage.checkpoint_time(
            level, config.bytes_per_process, n, config.ranks_per_node
        )
        for level in (1, 2, 3, 4)
    )
    recoveries = tuple(
        config.storage.recovery_time(
            level, config.bytes_per_process, n, config.ranks_per_node
        )
        for level in (1, 2, 3, 4)
    )
    return SimulationConfig(
        productive_seconds=config.total_sweeps * sweep_duration,
        intervals=intervals,
        checkpoint_costs=costs,
        recovery_costs=recoveries,
        failure_rates=tuple(config.rates.rates_per_second(n)),
        allocation_period=config.allocation_period,
        jitter=0.0,
        max_wallclock=config.max_wallclock,
    )


def default_functional_config() -> FunctionalConfig:
    """A Fusion-like small-cluster validation setup (16 nodes)."""
    return FunctionalConfig(
        topology=ClusterTopology(num_nodes=16, rs_group_size=8, rs_parity=2),
        storage=StorageHierarchy(),
        rates=FailureRates((300.0, 150.0, 75.0, 40.0), baseline_scale=16.0),
        grid_size=48,
        total_sweeps=240,
        checkpoint_interval_sweeps=(8, 24, 48, 80),
        bytes_per_process=5e6,
        allocation_period=10.0,
    )


def run_fig4b(
    *,
    config: FunctionalConfig | None = None,
    n_seeds: int = 10,
    seed: int = 20140608,
) -> Fig4bResult:
    """Run both simulators on *paired* failure traces and compare means.

    Per seed, one failure trace (arrival times + levels) is drawn and fed
    to both simulators (the fig. 4 scripted-trace methodology), so the
    comparison isolates the engines' semantics from arrival sampling noise.
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    if config is None:
        config = default_functional_config()
    abstract = abstract_config_from_functional(config)
    rngs = spawn_generators(seed, n_seeds)
    functional_runs = []
    abstract_runs = []
    # generous horizon: censored runs never exceed the cap anyway
    horizon = min(config.max_wallclock, abstract.productive_seconds * 50 + 1e5)
    for rng in rngs:
        trace_seed, func_seed, abs_seed = (
            int(v) for v in rng.integers(0, 2**63 - 1, size=3)
        )
        trace = generate_trace(
            config.rates, config.num_ranks, horizon_seconds=horizon, seed=trace_seed
        )
        functional_runs.append(
            run_functional(
                config, seed=func_seed, injector=ScriptedFailures(trace)
            ).wallclock
        )
        abstract_runs.append(
            simulate(abstract, seed=abs_seed, injector=ScriptedFailures(trace)).wallclock
        )
    return Fig4bResult(
        functional_mean=float(np.mean(functional_runs)),
        abstract_mean=float(np.mean(abstract_runs)),
        functional_runs=tuple(functional_runs),
        abstract_runs=tuple(abstract_runs),
    )
