"""Figure 5 + Table III — time portions and optimized scales (T_e = 3m core-days).

For each of the six failure-rate cases, all four strategies are solved
analytically and then replayed under the randomized-failure simulator
(100 runs in the paper).  Outputs:

* per-strategy simulated portion means — the Fig. 5 stacked bars
  (productive / checkpoint / restart / rollback);
* the optimized execution scales of ML(opt-scale) and SL(opt-scale) —
  Table III;
* the expected shape assertions live in the bench: ML(opt-scale) wins every
  case, wall-clock decreases with decreasing failure rates, optimized
  scales grow as rates shrink.

Strategies whose analytic model predicts non-completion (classic Young at
full scale under growing PFS cost) are simulated with fewer replicas
against the wall-clock cap and reported censored.

Execution layer: the driver separates the *solve* phase (memoized — see
:mod:`repro.core.memo`) from the *simulate* phase, which submits every
(case x strategy) ensemble as one task to a
:class:`~repro.parallel.executor.Executor`.  Child seeds are spawned up
front in the historical order, so serial and parallel runs of the same
root seed return bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.batch_solve import (
    batch_compare_all_strategies,
    resolve_batch_solve,
)
from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import FIG5_CASES, make_params
from repro.obs.logconf import get_logger
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import write_ensemble_jsonl
from repro.parallel.executor import Executor, ensure_executor
from repro.parallel.timing import PhaseTimer
from repro.sim.config import SimulationConfig
from repro.sim.ensemble import run_ensemble
from repro.sim.metrics import EnsembleResult
from repro.sim.runner import config_from_solution
from repro.util.rng import SeedLike, spawn_generators

logger = get_logger("experiments.fig5")

#: Wall-clock cap for censored (analytically infeasible) strategies: 3 years.
CENSOR_CAP_SECONDS: float = 86_400.0 * 365.0 * 3.0


@dataclass(frozen=True)
class CaseResult:
    """One failure case's solutions and simulation ensembles."""

    case: str
    params: ModelParameters
    solutions: Mapping[str, Solution]
    ensembles: Mapping[str, EnsembleResult]


@dataclass(frozen=True)
class Fig5Result:
    """All cases of one workload."""

    te_core_days: float
    cases: tuple[CaseResult, ...]

    def optimized_scales(self) -> dict[str, dict[str, float]]:
        """Table III: ``{strategy: {case: scale}}`` for the opt-scale rows."""
        out: dict[str, dict[str, float]] = {
            "ml-opt-scale": {},
            "sl-opt-scale": {},
        }
        for case in self.cases:
            for strategy in out:
                out[strategy][case.case] = case.solutions[strategy].scale
        return out


@dataclass(frozen=True)
class EnsembleTask:
    """One (case x strategy) simulation job, fully resolved and picklable.

    The config already carries the censor cap; ``probe_rng`` / ``main_rng``
    are the pre-spawned generators of the historical seed derivation, so
    running tasks in any order (or process) reproduces the serial results.
    ``trace`` switches on per-replica event recording (RNG-neutral);
    ``batch`` selects the batched replica engine (bit-identical results,
    ``None`` = ``REPRO_BATCH`` default).
    """

    config: SimulationConfig
    feasible: bool
    n_runs: int
    probe_rng: np.random.Generator
    main_rng: np.random.Generator
    trace: bool = False
    batch: bool | None = None


def run_ensemble_task(task: EnsembleTask) -> tuple[EnsembleResult, dict]:
    """Probe-then-replay protocol for one strategy's ensemble.

    Every run is capped: some analytically-feasible configurations
    (full-scale baselines whose PFS checkpoint cost exceeds the MTBF)
    never complete under the simulator's retry semantics.  A 2-run probe
    detects censoring so catastrophic strategies are exhibited with a
    handful of runs instead of burning the full ensemble.

    Returns ``(ensemble, metrics_snapshot)``: the task's ``sim.*`` metrics
    are collected in a task-local registry (this function runs inside
    process-pool workers whose globals never come home) and shipped back
    as a snapshot for the parent driver to reduce.
    """
    registry = MetricsRegistry()
    probe = run_ensemble(
        task.config, n_runs=min(2, task.n_runs), seed=task.probe_rng,
        trace=task.trace, registry=registry, batch=task.batch,
    )
    remaining = task.n_runs - probe.n_runs
    if probe.all_completed and task.feasible and remaining > 0:
        rest = run_ensemble(
            task.config, n_runs=remaining, seed=task.main_rng,
            trace=task.trace, registry=registry, batch=task.batch,
        )
        traces = None
        if task.trace:
            traces = probe.traces + rest.traces
        ensemble = EnsembleResult(runs=probe.runs + rest.runs, traces=traces)
    else:
        ensemble = probe
    return ensemble, registry.snapshot()


def case_tasks(
    params: ModelParameters,
    solutions: Mapping[str, Solution],
    *,
    n_runs: int,
    seed: SeedLike,
    jitter: float,
    trace: bool = False,
    batch: bool | None = None,
) -> dict[str, EnsembleTask]:
    """Resolve one case's strategies into ordered ``{name: EnsembleTask}``.

    Seed derivation is the historical one: ``2 * len(solutions)`` children
    spawned from ``seed`` in strategy order, probe before main.
    """
    rngs = spawn_generators(seed, 2 * len(solutions))
    tasks: dict[str, EnsembleTask] = {}
    for index, (name, solution) in enumerate(solutions.items()):
        # The SL strategies optimize the collapsed single-level model; they
        # are simulated under it too (single PFS level, summed failure rate).
        sim_params = (
            params.single_level() if solution.num_levels == 1 else params
        )
        tasks[name] = EnsembleTask(
            config=config_from_solution(
                sim_params,
                solution,
                jitter=jitter,
                max_wallclock=CENSOR_CAP_SECONDS,
            ),
            feasible=solution.feasible,
            n_runs=n_runs,
            probe_rng=rngs[2 * index],
            main_rng=rngs[2 * index + 1],
            trace=trace,
            batch=batch,
        )
    return tasks


def run_case(
    params: ModelParameters,
    case: str,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    jitter: float = 0.3,
    jobs: int | None = None,
    executor: Executor | None = None,
    batch: bool | None = None,
    batch_solve: bool | None = None,
) -> CaseResult:
    """Solve and simulate all four strategies for one failure case."""
    if resolve_batch_solve(batch_solve):
        [solutions] = batch_compare_all_strategies([params])
    else:
        solutions = compare_all_strategies(params)
    tasks = case_tasks(
        params, solutions, n_runs=n_runs, seed=seed, jitter=jitter,
        batch=batch,
    )
    executor, owned = ensure_executor(executor, jobs, len(tasks))
    try:
        outputs = executor.map(run_ensemble_task, list(tasks.values()))
    finally:
        if owned:
            executor.close()
    for _, snapshot in outputs:
        METRICS.merge_snapshot(snapshot)
    ensembles = dict(zip(tasks.keys(), (ens for ens, _ in outputs)))
    return CaseResult(
        case=case, params=params, solutions=solutions, ensembles=ensembles
    )


def run_fig5(
    *,
    te_core_days: float = 3e6,
    cases=FIG5_CASES,
    n_runs: int = 100,
    seed: SeedLike = 20140604,
    jitter: float = 0.3,
    jobs: int | None = None,
    executor: Executor | None = None,
    timer: PhaseTimer | None = None,
    trace_dir: str | Path | None = None,
    trace_prefix: str = "fig5",
    batch: bool | None = None,
    batch_solve: bool | None = None,
) -> Fig5Result:
    """Run the full Fig. 5 / Table III experiment.

    All ``len(cases) * 4`` strategy ensembles are submitted to the
    executor concurrently; ``timer`` (optional) records the solve /
    simulate / aggregate phase wall-clocks.  ``batch_solve`` selects the
    vectorized sweep solver (one :mod:`repro.core.batch_solve` kernel
    pass across every case x strategy; ``None`` defers to
    ``REPRO_BATCH_SOLVE``) — results are bit-identical either way, and
    the solve phase is sub-timed as ``solve.batch`` / ``solve.scalar``
    so benches attribute the win to the right path.

    ``trace_dir`` switches on per-replica event tracing and writes one
    JSONL file per (case x strategy) ensemble —
    ``<trace_prefix>_<case>_<strategy>.jsonl``, each line tagged with its
    replica index — to that directory.  Tracing never touches the RNG
    streams, so traced and untraced runs of one seed produce identical
    ensembles; the per-level failure/checkpoint counts in each trace match
    the corresponding ``SimResult`` fields exactly (property-tested).
    """
    timer = timer if timer is not None else PhaseTimer()
    trace = trace_dir is not None
    rngs = spawn_generators(seed, len(cases))

    with timer.phase("solve"):
        pairs = [(case, make_params(te_core_days, case)) for case in cases]
        if resolve_batch_solve(batch_solve):
            with timer.phase("solve.batch"):
                all_solutions = batch_compare_all_strategies(
                    [params for _, params in pairs]
                )
        else:
            with timer.phase("solve.scalar"):
                all_solutions = [
                    compare_all_strategies(params) for _, params in pairs
                ]
        solved = [
            (case, params, solutions, rng)
            for (case, params), solutions, rng in zip(
                pairs, all_solutions, rngs
            )
        ]
    logger.info(
        "%s: solved %d cases x %d strategies (T_e=%g core-days)",
        trace_prefix, len(solved), len(solved[0][2]) if solved else 0,
        te_core_days,
    )

    with timer.phase("simulate"):
        flat_tasks: list[EnsembleTask] = []
        flat_names: list[tuple[str, str]] = []
        per_case_tasks = []
        for case, params, solutions, rng in solved:
            tasks = case_tasks(
                params, solutions, n_runs=n_runs, seed=rng, jitter=jitter,
                trace=trace, batch=batch,
            )
            per_case_tasks.append(tasks)
            for name, task in tasks.items():
                flat_tasks.append(task)
                flat_names.append((case, name))
        executor, owned = ensure_executor(executor, jobs, len(flat_tasks))
        try:
            flat_outputs = executor.map(run_ensemble_task, flat_tasks)
        finally:
            if owned:
                executor.close()
        # Reduce per-task worker metrics into the parent, in task order.
        for _, snapshot in flat_outputs:
            METRICS.merge_snapshot(snapshot)
        flat_results = [ensemble for ensemble, _ in flat_outputs]

    with timer.phase("aggregate"):
        by_key = dict(zip(flat_names, flat_results))
        results = tuple(
            CaseResult(
                case=case,
                params=params,
                solutions=solutions,
                ensembles={
                    name: by_key[(case, name)] for name in tasks.keys()
                },
            )
            for (case, params, solutions, _), tasks in zip(
                solved, per_case_tasks
            )
        )

    if trace:
        with timer.phase("trace-export"):
            for (case, name), ensemble in zip(flat_names, flat_results):
                path = write_ensemble_jsonl(
                    Path(trace_dir) / f"{trace_prefix}_{case}_{name}.jsonl",
                    ensemble.traces,
                )
                logger.debug("wrote %s (%d runs)", path, ensemble.n_runs)
            logger.info(
                "%s: exported %d ensemble traces to %s",
                trace_prefix, len(flat_results), trace_dir,
            )
    return Fig5Result(te_core_days=te_core_days, cases=results)
