"""Figure 5 + Table III — time portions and optimized scales (T_e = 3m core-days).

For each of the six failure-rate cases, all four strategies are solved
analytically and then replayed under the randomized-failure simulator
(100 runs in the paper).  Outputs:

* per-strategy simulated portion means — the Fig. 5 stacked bars
  (productive / checkpoint / restart / rollback);
* the optimized execution scales of ML(opt-scale) and SL(opt-scale) —
  Table III;
* the expected shape assertions live in the bench: ML(opt-scale) wins every
  case, wall-clock decreases with decreasing failure rates, optimized
  scales grow as rates shrink.

Strategies whose analytic model predicts non-completion (classic Young at
full scale under growing PFS cost) are simulated with fewer replicas
against the wall-clock cap and reported censored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.notation import ModelParameters, Solution
from repro.core.solutions import compare_all_strategies
from repro.experiments.config import FIG5_CASES, make_params
from repro.sim.metrics import EnsembleResult
from repro.sim.runner import simulate_solution
from repro.util.rng import SeedLike, spawn_generators

#: Wall-clock cap for censored (analytically infeasible) strategies: 3 years.
CENSOR_CAP_SECONDS: float = 86_400.0 * 365.0 * 3.0


@dataclass(frozen=True)
class CaseResult:
    """One failure case's solutions and simulation ensembles."""

    case: str
    params: ModelParameters
    solutions: Mapping[str, Solution]
    ensembles: Mapping[str, EnsembleResult]


@dataclass(frozen=True)
class Fig5Result:
    """All cases of one workload."""

    te_core_days: float
    cases: tuple[CaseResult, ...]

    def optimized_scales(self) -> dict[str, dict[str, float]]:
        """Table III: ``{strategy: {case: scale}}`` for the opt-scale rows."""
        out: dict[str, dict[str, float]] = {
            "ml-opt-scale": {},
            "sl-opt-scale": {},
        }
        for case in self.cases:
            for strategy in out:
                out[strategy][case.case] = case.solutions[strategy].scale
        return out


def run_case(
    params: ModelParameters,
    case: str,
    *,
    n_runs: int = 100,
    seed: SeedLike = None,
    jitter: float = 0.3,
) -> CaseResult:
    """Solve and simulate all four strategies for one failure case."""
    solutions = compare_all_strategies(params)
    rngs = spawn_generators(seed, 2 * len(solutions))
    ensembles: dict[str, EnsembleResult] = {}
    for index, (name, solution) in enumerate(solutions.items()):
        probe_rng, main_rng = rngs[2 * index], rngs[2 * index + 1]
        # The SL strategies optimize the collapsed single-level model; they
        # are simulated under it too (single PFS level, summed failure rate).
        sim_params = (
            params.single_level() if solution.num_levels == 1 else params
        )
        # Every run is capped: some analytically-feasible configurations
        # (full-scale baselines whose PFS checkpoint cost exceeds the MTBF)
        # never complete under the simulator's retry semantics.  A 2-run
        # probe detects censoring so catastrophic strategies are exhibited
        # with a handful of runs instead of burning the full ensemble.
        probe = simulate_solution(
            sim_params,
            solution,
            n_runs=min(2, n_runs),
            seed=probe_rng,
            jitter=jitter,
            max_wallclock=CENSOR_CAP_SECONDS,
        )
        remaining = n_runs - probe.n_runs
        if probe.all_completed and solution.feasible and remaining > 0:
            rest = simulate_solution(
                sim_params,
                solution,
                n_runs=remaining,
                seed=main_rng,
                jitter=jitter,
                max_wallclock=CENSOR_CAP_SECONDS,
            )
            ensembles[name] = EnsembleResult(runs=probe.runs + rest.runs)
        else:
            ensembles[name] = probe
    return CaseResult(
        case=case, params=params, solutions=solutions, ensembles=ensembles
    )


def run_fig5(
    *,
    te_core_days: float = 3e6,
    cases=FIG5_CASES,
    n_runs: int = 100,
    seed: SeedLike = 20140604,
    jitter: float = 0.3,
) -> Fig5Result:
    """Run the full Fig. 5 / Table III experiment."""
    rngs = spawn_generators(seed, len(cases))
    results = tuple(
        run_case(
            make_params(te_core_days, case),
            case,
            n_runs=n_runs,
            seed=rng,
            jitter=jitter,
        )
        for rng, case in zip(rngs, cases)
    )
    return Fig5Result(te_core_days=te_core_days, cases=results)
