"""Figure 7 — efficiency (processor utilization) of the four strategies.

Computed from the Fig. 5 and Fig. 6 simulation results:
``efficiency = (T_e / T_w) / N`` per run, averaged.  Paper findings the
bench asserts: SL(opt-scale) achieves the *highest* efficiency (tiny
scales) despite its long wall-clock; ML(opt-scale) keeps higher efficiency
than both ori-scale solutions while also having the shortest wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig5 import Fig5Result


@dataclass(frozen=True)
class Fig7Result:
    """Efficiency per strategy per case: ``{case: {strategy: efficiency}}``."""

    te_core_days: float
    efficiencies: dict[str, dict[str, float]]


def run_fig7(fig5_result: Fig5Result) -> Fig7Result:
    """Extract the Fig. 7 efficiencies from a Fig. 5/6 run."""
    te_core_seconds = fig5_result.te_core_days * 86_400.0
    table: dict[str, dict[str, float]] = {}
    for case in fig5_result.cases:
        row: dict[str, float] = {}
        for name, ensemble in case.ensembles.items():
            n = case.solutions[name].scale_rounded()
            row[name] = ensemble.mean_efficiency(te_core_seconds, n)
        table[case.case] = row
    return Fig7Result(
        te_core_days=fig5_result.te_core_days, efficiencies=table
    )
