"""Shared configuration of the paper's evaluation (Section IV-A).

Single source of truth for the constants every experiment uses:

* speedup: the Heat Distribution quadratic, ``kappa = 0.46`` with
  ``N^(*) = 10^6`` cores for the exascale studies;
* checkpoint costs: the Table II least-squares coefficients
  ``(0.866, 0), (2.586, 0), (3.886, 0), (5.5, 0.0212)``;
* recovery costs: the paper does not tabulate recovery separately; the
  default here is the *constant* parts of the fitted costs (restart reads
  are parallel and do not hit the PFS write-contention wall), which is the
  only assumption under which the paper's reported fixed-scale baselines
  remain finite — see EXPERIMENTS.md for the sensitivity discussion.
  ``recovery="mirror"`` switches to ``R_i = C_i`` for ablations;
* failure cases: ``16-12-8-4`` ... ``4-2-1-0.5`` events/day at the
  baseline ``N_b = N^(*) = 10^6`` cores, scaling proportionally with ``N``;
* allocation period ``A`` (constant, footnote-1 scale: ~1 minute).
"""

from __future__ import annotations

from repro.core.notation import ModelParameters
from repro.costs.fti_fusion import FTI_FUSION_PAPER_COEFFS
from repro.costs.model import CostModel, LevelCostModel
from repro.costs.scaling import CONSTANT, LINEAR
from repro.failures.rates import FailureRates
from repro.speedup.quadratic import QuadraticSpeedup

#: The six failure-rate cases of Fig. 5/6 (events/day per level at N_b).
FIG5_CASES: tuple[str, ...] = (
    "16-12-8-4",
    "8-6-4-2",
    "4-3-2-1",
    "16-8-4-2",
    "8-4-2-1",
    "4-2-1-0.5",
)

#: The three failure-rate cases of Table IV.
TABLE4_CASES: tuple[str, ...] = ("16-12-8-4", "8-6-4-2", "4-3-2-1")

#: Constant per-level checkpoint costs of the Table IV scenario (seconds).
TABLE4_CHECKPOINT_COSTS: tuple[float, ...] = (50.0, 100.0, 200.0, 2000.0)

#: The exascale ideal scale used throughout the evaluation.
PAPER_IDEAL_SCALE: float = 1_000_000.0
#: The Heat Distribution fitted origin slope.
PAPER_KAPPA: float = 0.46
#: Default allocation period (seconds).
PAPER_ALLOCATION: float = 60.0


def paper_speedup(ideal_scale: float = PAPER_IDEAL_SCALE) -> QuadraticSpeedup:
    """The Heat Distribution quadratic speedup at the evaluation scale."""
    return QuadraticSpeedup(kappa=PAPER_KAPPA, ideal_scale=ideal_scale)


def fusion_cost_models(recovery: str = "constant") -> LevelCostModel:
    """Table II fitted checkpoint costs with the chosen recovery assumption.

    ``recovery="constant"`` (default): ``R_i = eps_i`` — parallel restart
    reads, scale-independent.  ``recovery="mirror"``: ``R_i = C_i`` (writes
    and reads equally contended; ablation).
    """
    checkpoint = []
    for eps, alpha in FTI_FUSION_PAPER_COEFFS:
        baseline = LINEAR if alpha > 0 else CONSTANT
        checkpoint.append(CostModel(constant=eps, coefficient=alpha, baseline=baseline))
    if recovery == "constant":
        rec = tuple(CostModel.constant_cost(eps) for eps, _ in FTI_FUSION_PAPER_COEFFS)
    elif recovery == "mirror":
        rec = tuple(checkpoint)
    else:
        raise ValueError(
            f"recovery must be 'constant' or 'mirror', got {recovery!r}"
        )
    return LevelCostModel(checkpoint=tuple(checkpoint), recovery=rec)


#: Table IV recovery overheads: levels 1-3 restart from node-local /
#: partner / RS-group data in parallel (seconds), while a PFS restart
#: re-reads the whole dataset through the shared file system and costs as
#: much as the PFS checkpoint write.  The paper does not tabulate recovery
#: for this scenario; this split is the assumption under which its reported
#: optimized scales and strategy gaps reproduce (see EXPERIMENTS.md).
TABLE4_RECOVERY_COSTS: tuple[float, ...] = (5.0, 10.0, 20.0, 2000.0)


def table4_cost_models() -> LevelCostModel:
    """Constant per-level costs of the Table IV Blue-Waters-PFS scenario."""
    return LevelCostModel.from_constants(
        TABLE4_CHECKPOINT_COSTS,
        recovery_seconds=TABLE4_RECOVERY_COSTS,
    )


def make_params(
    te_core_days: float,
    case: str,
    *,
    costs: LevelCostModel | None = None,
    ideal_scale: float = PAPER_IDEAL_SCALE,
    allocation_period: float = PAPER_ALLOCATION,
) -> ModelParameters:
    """Build the :class:`ModelParameters` for one evaluation configuration.

    Parameters
    ----------
    te_core_days:
        Workload: 3e6 (Fig. 5), 10e6 (Fig. 6), or 2e6 (Table IV) core-days.
    case:
        Failure-rate case name, e.g. ``"16-12-8-4"``.
    costs:
        Cost models (default: Fusion-fitted with constant recovery).
    ideal_scale:
        ``N^(*)`` = baseline scale ``N_b``.
    allocation_period:
        ``A`` in seconds.
    """
    if costs is None:
        costs = fusion_cost_models()
    return ModelParameters.from_core_days(
        te_core_days,
        speedup=paper_speedup(ideal_scale),
        costs=costs,
        rates=FailureRates.from_case_name(case, baseline_scale=ideal_scale),
        allocation_period=allocation_period,
    )
