"""Experiment registry: id -> driver callable.

Mirrors the DESIGN.md per-experiment index so tools (benches, the
``examples/reproduce_paper.py`` script) can enumerate and run everything.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.convergence import run_convergence
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig4b import run_fig4b
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.weak_scaling import run_weak_scaling


def run_fig7_standalone(*, n_runs: int = 10, **kwargs) -> Fig7Result:
    """Standalone fig7 driver: a small Fig. 5 run piped into ``run_fig7``.

    ``run_fig7`` itself consumes an existing Fig. 5/6 result; this wrapper
    makes fig7 runnable directly from the registry/CLI by producing that
    result first.  ``n_runs`` defaults to a registry-friendly 10 replicas;
    every other keyword (``cases``, ``seed``, ``jitter``, ``jobs``, ...)
    is forwarded to :func:`~repro.experiments.fig5.run_fig5` untouched.
    (The historical registry entry was an undocumented ``kwargs.pop``
    lambda; this named wrapper is introspectable and testable.)
    """
    return run_fig7(run_fig5(n_runs=n_runs, **kwargs))


#: All experiment drivers keyed by the DESIGN.md experiment id.  ``fig7``
#: takes a Fig. 5/6 result; the registry entry wires it to a small Fig. 5 run.
EXPERIMENTS: dict[str, Callable] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig4b": run_fig4b,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7_standalone,
    "table2": run_table2,
    "table4": run_table4,
    "convergence": run_convergence,
    "weak-scaling": run_weak_scaling,
}


def get_experiment(experiment_id: str) -> Callable:
    """Look up a driver by experiment id; raises ``KeyError`` with the
    available ids otherwise."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
