"""Quickstart: optimize checkpoint intervals + execution scale for one app.

Models the paper's headline scenario: a Heat-Distribution-class application
with 3 million core-days of work on a million-core machine protected by a
4-level FTI-style checkpoint stack, experiencing 8/4/2/1 failures per day
(per level, at full scale).  Computes the paper's ML(opt-scale) solution,
compares it with the three baselines, and verifies the prediction by
simulation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis.tables import solutions_table


def main() -> None:
    params = repro.ModelParameters.from_core_days(
        3e6,  # T_e: 3 million core-days of single-core work
        speedup=repro.QuadraticSpeedup(kappa=0.46, ideal_scale=1e6),
        costs=repro.fusion_cost_models(),  # Table II fitted FTI costs
        rates=repro.FailureRates.from_case_name("8-4-2-1", baseline_scale=1e6),
        allocation_period=60.0,
    )

    print("Solving all four strategies (this paper's is ml-opt-scale)...")
    solutions = repro.compare_all_strategies(params)
    print(solutions_table(solutions, params.te_core_seconds))

    best = solutions["ml-opt-scale"]
    print(
        f"\nOptimal configuration: N* = {best.scale_rounded():,} cores "
        f"({100 * best.scale / 1e6:.0f}% of the machine), "
        f"intervals x_i = {best.intervals_rounded()}"
    )
    print(
        f"Converged in {best.outer_iterations} outer iterations "
        f"(paper: 7-15)."
    )

    print("\nReplaying the solution under the randomized-failure simulator...")
    ensemble = repro.simulate_solution(params, best, n_runs=20, seed=2014)
    predicted = best.expected_wallclock / 86_400.0
    simulated = ensemble.mean_wallclock / 86_400.0
    print(
        f"predicted E(T_w) = {predicted:.1f} days; "
        f"simulated mean = {simulated:.1f} days "
        f"(+-{ensemble.std_wallclock / 86_400.0:.1f}) over {ensemble.n_runs} runs"
    )


if __name__ == "__main__":
    main()
