"""Extension features in one study: level selection, sensitivity, Pareto.

For a mid-size machine with an operator-style reliability description
(node MTBF + failure taxonomy), this example decides:

1. which checkpoint levels are worth enabling at all (level selection —
   the capability the paper's intro attributes to its predecessor [22]);
2. how robust the resulting configuration is to misestimating the inputs
   (sensitivity/regret);
3. what wall-clock/efficiency tradeoff the operator is choosing on
   (the Pareto frontier behind the paper's Fig. 7 discussion).

Run:  python examples/level_selection_study.py
"""

from __future__ import annotations

from repro import LevelCostModel, ModelParameters, QuadraticSpeedup
from repro.analysis.pareto import pareto_sweep
from repro.core.selection import optimize_level_selection
from repro.core.sensitivity import sensitivity_report
from repro.failures.mtbf import rates_from_node_mtbf
from repro.util.tablefmt import format_table


def main() -> None:
    # Operator inputs: 8,000 nodes x 16 cores, node MTBF 800 days, 65% of
    # hardware events isolated / 25% adjacent / 10% larger, plus a modest
    # transient (software/memory) rate per core.
    rates = rates_from_node_mtbf(
        node_mtbf_days=800.0,
        num_nodes=8_000,
        cores_per_node=16,
        level_fractions=(0.65, 0.25, 0.10),
        transient_rate_per_core_day=1.5e-4,
    )
    params = ModelParameters.from_core_days(
        100_000.0,
        speedup=QuadraticSpeedup(kappa=0.5, ideal_scale=rates.baseline_scale),
        costs=LevelCostModel.from_constants([0.9, 2.6, 3.9, 90.0]),
        rates=rates,
        allocation_period=60.0,
    )
    per_day = ", ".join(f"{r:.2f}" for r in rates.per_day_at_baseline)
    print(f"derived per-level failure rates at full scale: {per_day} events/day")

    # -- 1. level selection ----------------------------------------------
    selection = optimize_level_selection(params)
    rows = [
        ["+".join(map(str, subset)), f"{value / 86_400.0:.3f}" if value != float("inf") else "inf"]
        for subset, value in sorted(selection.per_subset.items())
    ]
    print()
    print(format_table(["enabled levels", "E(T_w) days"], rows,
                       title="Level-subset search"))
    print(
        f"best: levels {selection.best_subset} at "
        f"N* = {selection.solution.scale_rounded():,} cores"
    )

    # -- 2. sensitivity ----------------------------------------------------
    print()
    entries = sensitivity_report(params, relative_perturbation=0.3)
    rows = [
        [e.parameter, f"{100 * e.regret:.3f}%", f"{e.elasticity:.4f}"]
        for e in entries
    ]
    print(format_table(["input off by +30%", "wall-clock regret", "elasticity"],
                       rows, title="Sensitivity of the optimized configuration"))

    # -- 3. Pareto frontier -------------------------------------------------
    print()
    frontier = pareto_sweep(params, n_points=12).frontier
    rows = [
        [f"{p.scale / 1000:.0f}k", f"{p.wallclock / 86_400.0:.2f}", f"{p.efficiency:.4f}"]
        for p in frontier
    ]
    print(format_table(["scale", "E(T_w) days", "efficiency"], rows,
                       title="Wall-clock vs efficiency Pareto frontier"))
    print(
        "\nReading: the frontier's fast end is the paper's ML(opt-scale) "
        "choice; sliding right trades wall-clock for utilization "
        "(toward the SL(opt-scale) end of Fig. 7)."
    )


if __name__ == "__main__":
    main()
