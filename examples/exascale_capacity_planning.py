"""Capacity planning: how many cores should a job actually request?

A system operator's view of the paper's result: for a fixed workload, sweep
the machine's reliability (the paper's failure-rate cases) and report how
the optimal request size, wall-clock, and freed-up capacity change.  The
punchline is Table III's: on failure-prone machines the optimal request is
*much* smaller than the whole machine, and the freed cores improve system
availability for everyone else.

Run:  python examples/exascale_capacity_planning.py
"""

from __future__ import annotations

from repro import make_params, ml_opt_scale, ml_ori_scale
from repro.experiments.config import FIG5_CASES
from repro.util.tablefmt import format_table
from repro.util.units import seconds_to_days


def main() -> None:
    te_core_days = 3e6
    machine_cores = 1_000_000

    rows = []
    for case in FIG5_CASES:
        params = make_params(te_core_days, case)
        opt = ml_opt_scale(params)
        ori = ml_ori_scale(params)
        gain = (
            ori.expected_wallclock - opt.expected_wallclock
        ) / ori.expected_wallclock
        rows.append(
            [
                case,
                f"{opt.scale_rounded():,}",
                f"{100 * opt.scale / machine_cores:.0f}%",
                f"{seconds_to_days(opt.expected_wallclock):.1f}",
                f"{seconds_to_days(ori.expected_wallclock):.1f}",
                f"{100 * gain:.0f}%",
                f"{machine_cores - opt.scale_rounded():,}",
            ]
        )

    print(
        format_table(
            [
                "failure case (events/day)",
                "optimal request",
                "of machine",
                "WCT days (opt)",
                "WCT days (all cores)",
                "time saved",
                "cores freed",
            ],
            rows,
            title=(
                f"Capacity planning for a {te_core_days:,.0f} core-day workload "
                f"on a {machine_cores:,}-core machine"
            ),
        )
    )
    print(
        "\nReading: as the machine gets less reliable (left rows), the "
        "optimal request shrinks and the advantage over using every core "
        "grows — requesting fewer cores finishes *sooner* and frees "
        "hundreds of thousands of cores for other jobs."
    )


if __name__ == "__main__":
    main()
