"""Functional demo: the real Heat Distribution app surviving node crashes.

Runs the actual 2-D Jacobi heat solver on the simulated cluster under the
FTI-like API, injects three escalating hardware-failure patterns, recovers
through the matching checkpoint levels (partner copy, then real
Reed-Solomon erasure decoding, then the PFS), and shows the final answer is
bit-identical to an uninterrupted run.

Run:  python examples/heat_with_fti_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.heat import HeatDistribution2D
from repro.apps.simmpi import SimComm
from repro.cluster.topology import ClusterTopology
from repro.fti.api import FTIContext
from repro.fti.levels import CheckpointLevel


def main() -> None:
    topology = ClusterTopology(num_nodes=16, rs_group_size=8, rs_parity=2)
    ctx = FTIContext(topology, ranks_per_node=1)
    comm = SimComm(n_ranks=16)
    solver = HeatDistribution2D(grid_size=64, comm=comm)
    reference = HeatDistribution2D(grid_size=64, comm=SimComm(n_ranks=1))

    # Register each rank's row block with FTI (FTI_Protect equivalent).
    blocks = np.array_split(np.arange(64), 16)
    for rank, rows in enumerate(blocks):
        ctx.protect(rank, "block", solver.grid[rows[0] + 1 : rows[-1] + 2])

    def advance(steps: int, with_reference: bool = True) -> None:
        for _ in range(steps):
            solver.jacobi_sweep()
            if with_reference:
                reference.jacobi_sweep()

    scenarios = [
        (CheckpointLevel.PARTNER, [5], "single node crash"),
        (CheckpointLevel.RS_ENCODING, [8, 9], "adjacent pair (defeats partner copy)"),
        (CheckpointLevel.PFS, [0, 1, 2, 3], "half an RS group (defeats RS)"),
    ]

    for level, failed, description in scenarios:
        advance(15)
        ctx.checkpoint(level)
        print(f"checkpointed at level {int(level)} ({level.display_name})")
        # lose progress that will have to be re-executed
        advance(7, with_reference=False)
        ctx.fail_nodes(failed)
        decision = ctx.recover()
        print(
            f"  {description}: nodes {failed} lost -> failure classified "
            f"level {int(decision.failure_level)}, recovered from "
            f"level {int(decision.recovery_level)}"
        )
        # re-execute the rolled-back sweeps; the reference advances the
        # same 7 steps once, so both runs are at the same logical step
        advance(7)

    drift = float(np.max(np.abs(solver.grid - reference.grid)))
    print(f"\nmax |recovered - uninterrupted| = {drift:.3e}")
    assert drift == 0.0, "recovery must be bit-exact"
    print(
        f"simulated time charged to the protected run: "
        f"{comm.elapsed * 1e3:.3f} ms across {solver.iterations_done} sweeps"
    )
    print("recovered run is bit-identical to the uninterrupted reference.")


if __name__ == "__main__":
    main()
