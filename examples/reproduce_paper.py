"""Run every paper experiment at reduced replica counts.

Walks the experiment registry (one driver per table/figure — see DESIGN.md
section 4) with small ensembles so the whole paper reproduces in a few
minutes.  The benchmark suite (``pytest benchmarks/ --benchmark-only``)
runs the same drivers at full scale and records the outputs under
``benchmarks/results/``.

Run:  python examples/reproduce_paper.py
"""

from __future__ import annotations

import time

from repro.analysis.tables import portions_table
from repro.experiments.convergence import run_convergence
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7
from repro.experiments.table2 import run_table2


def main() -> None:
    t0 = time.time()

    print("== Fig. 1: speedup-vs-overhead tradeoff ==")
    fig1 = run_fig1(n_points=30)
    print(
        f"optimal scale without checkpointing: {fig1.optimal_scale_no_checkpoint:,.0f}; "
        f"with: {fig1.optimal_scale_with_checkpoint:,.0f}"
    )

    print("\n== Fig. 2: speedup fits ==")
    fig2 = run_fig2()
    print(
        f"Heat kappa = {fig2.heat_paper_fit.kappa:.3f} (paper 0.46); "
        f"eddy peak at {fig2.eddy_peak_scale:.0f} cores (paper ~100)"
    )

    print("\n== Fig. 3: single-level optimum ==")
    fig3 = run_fig3()
    c, l = fig3.constant_cost.solution, fig3.linear_cost.solution
    print(f"constant cost: x*={c.x:.0f}, N*={c.n:,.0f} (paper 797 / 81,746)")
    print(f"linear cost:   x*={l.x:.0f}, N*={l.n:,.0f} (paper 140 / 20,215)")

    print("\n== Fig. 4: simulator validation ==")
    fig4 = run_fig4()
    print(
        f"max engine difference {100 * fig4.max_relative_difference:.2f}% "
        f"over {len(fig4.points)} interval sweeps (paper < 4%)"
    )

    print("\n== Table II: checkpoint-cost characterization ==")
    table2 = run_table2()
    print("fitted (eps, alpha) per level:", table2.fitted_coefficients)

    print("\n== Fig. 5 + Table III + Fig. 7 (2 cases, 5 runs each) ==")
    fig5 = run_fig5(cases=("16-12-8-4", "4-2-1-0.5"), n_runs=5, seed=7)
    for case in fig5.cases:
        print(portions_table(case.ensembles, title=f"case {case.case}"))
    fig7 = run_fig7(fig5)
    print("efficiencies:", fig7.efficiencies)

    print("\n== Convergence ==")
    conv = run_convergence()
    for case, report in conv.algorithm1_reports.items():
        print(f"  {case}: {report.outer_iterations} outer iterations")
    print(f"  single-level fixed point: {conv.single_level_iterations} iterations")

    print(f"\nall experiments reproduced in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
