"""The full paper pipeline: measure speedup -> fit -> optimize.

Everything the paper's methodology requires, starting from raw
measurements:

1. measure the Heat Distribution application's speedup on the simulated
   cluster across scales (Fig. 2(a)'s experiment);
2. fit the paper's quadratic curve (Formula 12) by least squares;
3. characterize per-level checkpoint costs on the same cluster (Table II's
   experiment) and fit the Formula (19) cost models;
4. feed both fits into Algorithm 1 and report the optimized configuration.

Also runs the Nek5000 eddy_uv-style rise-then-fall curve through the
initial-range fitting rule of Fig. 2(b).

Run:  python examples/speedup_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro import FailureRates, ModelParameters, algorithm1_optimize
from repro.apps.eddy import measure_eddy_speedup
from repro.apps.heat import measure_heat_speedup
from repro.cluster.characterize import characterize_checkpoint_costs
from repro.speedup.fitting import fit_quadratic_speedup
from repro.util.tablefmt import format_table


def main() -> None:
    # -- 1. speedup measurement (Fig. 2(a)) ------------------------------
    scales = np.geomspace(64, 60_000, 16)
    measured_scales, measured_speedups = measure_heat_speedup(scales)
    heat_fit = fit_quadratic_speedup(measured_scales, measured_speedups)
    print(
        f"Heat Distribution fit: kappa={heat_fit.kappa:.4f}, "
        f"N^(*)={heat_fit.ideal_scale:,.0f}, "
        f"residual RMS={heat_fit.residual_rms:.2f}"
    )

    # -- 2. the rise-then-fall case (Fig. 2(b)) --------------------------
    eddy_scales = np.geomspace(4, 2_048, 20)
    e_scales, e_speedups = measure_eddy_speedup(eddy_scales)
    eddy_fit = fit_quadratic_speedup(e_scales, e_speedups)
    peak = e_scales[int(np.argmax(e_speedups))]
    print(
        f"eddy_uv fit (initial range only, peak at ~{peak:.0f} cores): "
        f"kappa={eddy_fit.kappa:.3f}, N^(*)={eddy_fit.ideal_scale:.0f}"
    )

    # -- 3. checkpoint-cost characterization (Table II) ------------------
    characterization = characterize_checkpoint_costs()
    rows = [
        [f"{int(s)} cores"] + [f"{c:.2f}" for c in characterization.table[i]]
        for i, s in enumerate(characterization.scales)
    ]
    print()
    print(
        format_table(
            ["scale", "L1 local", "L2 partner", "L3 RS", "L4 PFS"],
            rows,
            title="Characterized checkpoint overheads (seconds)",
        )
    )

    # -- 4. optimize with the fitted models -------------------------------
    params = ModelParameters.from_core_days(
        50_000.0,  # a 50k core-day campaign
        speedup=heat_fit.model,
        costs=characterization.cost_model,
        rates=FailureRates((12.0, 6.0, 3.0, 1.0), baseline_scale=heat_fit.ideal_scale),
        allocation_period=60.0,
    )
    result = algorithm1_optimize(params)
    sol = result.solution
    print(
        f"\nOptimized from measurements alone: N* = {sol.scale_rounded():,} "
        f"cores of the {heat_fit.ideal_scale:,.0f}-core sweet spot, "
        f"x = {sol.intervals_rounded()}, "
        f"E(T_w) = {sol.expected_wallclock / 86_400.0:.2f} days "
        f"({result.outer_iterations} outer iterations)"
    )


if __name__ == "__main__":
    main()
