"""Setup shim for environments without the ``wheel`` package.

PEP 517 editable installs need ``bdist_wheel``; this offline environment
ships setuptools without wheel, so ``pip install -e . --no-use-pep517``
falls back to the classic ``setup.py develop`` path through this file.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
