"""The benchmark regression gate: compare, bless, and exit codes."""

from __future__ import annotations

import json

import pytest

from benchmarks import regress


def _write(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "results", tmp_path / "baselines"


def _fill(results, baselines, *, current_scale=1.0):
    """Populate every gated file; ``current_scale`` multiplies the
    "lower is better" metrics and divides the "higher is better" ones,
    so >1 means uniformly worse."""
    base = {
        "BENCH_obs.json": {"untraced_seconds": 1.0, "traced_seconds": 1.2},
        "BENCH_parallel.json": {
            "ensemble": {"serial_seconds": 2.0},
            "fig5_small_phases_seconds": {"solve": 0.5, "simulate": 0.4},
        },
        "BENCH_service.json": {
            "warm": {"requests_per_second": 100.0},
            "cold_restart": {"requests_per_second": 300.0},
        },
    }
    for name, payload in base.items():
        _write(baselines, name, payload)
    current = json.loads(json.dumps(base))
    current["BENCH_obs.json"] = {
        k: v * current_scale for k, v in current["BENCH_obs.json"].items()
    }
    current["BENCH_parallel.json"]["ensemble"]["serial_seconds"] *= current_scale
    for key in ("solve", "simulate"):
        current["BENCH_parallel.json"]["fig5_small_phases_seconds"][
            key
        ] *= current_scale
    for section in ("warm", "cold_restart"):
        current["BENCH_service.json"][section]["requests_per_second"] /= (
            current_scale
        )
    for name, payload in current.items():
        _write(results, name, payload)


class TestDottedGet:
    def test_resolves_nested_paths(self):
        payload = {"a": {"b": {"c": 3}}}
        assert regress.dotted_get(payload, "a.b.c") == 3
        assert regress.dotted_get(payload, "a.b") == {"c": 3}

    def test_absent_paths_return_none(self):
        assert regress.dotted_get({"a": 1}, "a.b") is None
        assert regress.dotted_get({}, "missing") is None


class TestCompare:
    def test_identical_results_pass(self, dirs, capsys):
        results, baselines = dirs
        _fill(results, baselines)
        assert regress.compare(results, baselines, 0.15) == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_improvements_never_fail(self, dirs):
        results, baselines = dirs
        _fill(results, baselines, current_scale=0.5)  # uniformly faster
        assert regress.compare(results, baselines, 0.15) == 0

    def test_regression_beyond_threshold_fails(self, dirs, capsys):
        results, baselines = dirs
        _fill(results, baselines, current_scale=1.3)  # 30% worse everywhere
        assert regress.compare(results, baselines, 0.15) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        # throughput metrics regress in the "higher" direction too
        assert "warm.requests_per_second" in out

    def test_threshold_is_respected(self, dirs):
        results, baselines = dirs
        _fill(results, baselines, current_scale=1.3)
        assert regress.compare(results, baselines, 0.50) == 0

    def test_missing_baseline_is_exit_2(self, dirs, capsys):
        results, baselines = dirs
        _fill(results, baselines)
        (baselines / "BENCH_obs.json").unlink()
        assert regress.compare(results, baselines, 0.15) == 2
        assert "missing baseline" in capsys.readouterr().err

    def test_no_fresh_results_is_exit_2(self, dirs):
        results, baselines = dirs
        _fill(results, baselines)
        for path in results.glob("BENCH_*.json"):
            path.unlink()
        assert regress.compare(results, baselines, 0.15) == 2

    def test_absent_metric_is_skipped_not_fatal(self, dirs, capsys):
        results, baselines = dirs
        _fill(results, baselines)
        _write(results, "BENCH_obs.json", {"untraced_seconds": 1.0})
        assert regress.compare(results, baselines, 0.15) == 0
        assert "metric absent" in capsys.readouterr().out


class TestUpdate:
    def test_blesses_current_results(self, dirs):
        results, baselines = dirs
        _fill(results, baselines, current_scale=2.0)
        assert regress.update_baselines(results, baselines) == 0
        # after blessing, the 2x-worse numbers ARE the baseline
        assert regress.compare(results, baselines, 0.15) == 0

    def test_nothing_to_bless_is_exit_2(self, dirs):
        results, baselines = dirs
        assert regress.update_baselines(results, baselines) == 2


class TestMain:
    def test_cli_round_trip(self, dirs):
        results, baselines = dirs
        _fill(results, baselines, current_scale=1.3)
        argv = [
            "--results-dir", str(results), "--baseline-dir", str(baselines)
        ]
        assert regress.main(argv) == 1
        assert regress.main(argv + ["--threshold", "0.5"]) == 0
        assert regress.main(argv + ["--update"]) == 0
        assert regress.main(argv) == 0

    def test_nonpositive_threshold_rejected(self, dirs):
        results, baselines = dirs
        with pytest.raises(SystemExit):
            regress.main(
                [
                    "--results-dir", str(results),
                    "--baseline-dir", str(baselines),
                    "--threshold", "0",
                ]
            )

    def test_committed_baselines_cover_every_gated_file(self):
        for name in regress.GATED_METRICS:
            assert (regress.DEFAULT_BASELINE_DIR / name).is_file(), (
                f"benchmarks/baselines/{name} must be committed"
            )
