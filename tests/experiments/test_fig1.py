"""Tests for the Fig. 1 tradeoff illustration."""

import numpy as np

from repro.experiments.fig1 import run_fig1


def test_checkpointed_optimum_below_ideal():
    """Fig. 1's message: the optimum with checkpointing sits left of N^(*)."""
    result = run_fig1(n_points=40)
    assert result.optimal_scale_no_checkpoint == result.scales[-1]
    assert (
        result.optimal_scale_with_checkpoint
        < 0.9 * result.optimal_scale_no_checkpoint
    )


def test_checkpointed_performance_dominated():
    """With overheads charged, performance never exceeds failure-free."""
    result = run_fig1(n_points=30)
    assert np.all(
        result.performance_with_checkpoint
        <= result.performance_no_checkpoint + 1e-15
    )


def test_failure_free_series_increases_to_ideal():
    result = run_fig1(n_points=30)
    assert np.all(np.diff(result.performance_no_checkpoint) > 0)
