"""Tests for the shared evaluation configuration."""

import pytest

from repro.experiments.config import (
    FIG5_CASES,
    TABLE4_CASES,
    TABLE4_CHECKPOINT_COSTS,
    fusion_cost_models,
    make_params,
    paper_speedup,
    table4_cost_models,
)


def test_fig5_cases_match_paper():
    assert FIG5_CASES == (
        "16-12-8-4",
        "8-6-4-2",
        "4-3-2-1",
        "16-8-4-2",
        "8-4-2-1",
        "4-2-1-0.5",
    )
    assert TABLE4_CASES == FIG5_CASES[:3]


def test_paper_speedup_parameters():
    s = paper_speedup()
    assert s.kappa == 0.46
    assert s.ideal_scale == 1e6
    # g(N^(*)) = kappa N^(*)/2 = 230k
    assert s.peak_speedup == pytest.approx(230_000.0)


def test_fusion_costs_constant_recovery():
    m = fusion_cost_models()
    ckpt = m.checkpoint_costs(1e6)
    rec = m.recovery_costs(1e6)
    assert ckpt[3] == pytest.approx(5.5 + 0.0212 * 1e6)
    assert rec[3] == pytest.approx(5.5)  # constant recovery


def test_fusion_costs_mirror_recovery():
    m = fusion_cost_models(recovery="mirror")
    assert m.recovery_costs(1e6)[3] == pytest.approx(5.5 + 0.0212 * 1e6)
    with pytest.raises(ValueError):
        fusion_cost_models(recovery="bogus")


def test_table4_costs_constant():
    m = table4_cost_models()
    assert tuple(m.checkpoint_costs(1e6)) == TABLE4_CHECKPOINT_COSTS
    assert tuple(m.checkpoint_costs(128.0)) == TABLE4_CHECKPOINT_COSTS
    # parallel restart for levels 1-3, full PFS re-read for level 4
    rec = m.recovery_costs(1e6)
    assert rec[3] == 2000.0
    assert all(rec[:3] < 100.0)


def test_make_params_wiring():
    params = make_params(3e6, "8-4-2-1")
    assert params.num_levels == 4
    assert params.te_core_seconds == pytest.approx(3e6 * 86_400.0)
    assert params.rates.per_day_at_baseline == (8.0, 4.0, 2.0, 1.0)
    assert params.rates.baseline_scale == 1e6
    assert params.allocation_period == 60.0
