"""Scaled-down Table IV experiment tests (constant PFS cost scenario)."""

import pytest

from repro.experiments.table4 import TABLE4_BLOCK_ALLOCATIONS, run_table4


@pytest.fixture(scope="module")
def result():
    return run_table4(cases=("16-12-8-4", "4-3-2-1"), n_runs=10, seed=2)


def test_both_blocks_present(result):
    assert set(result.blocks) == set(TABLE4_BLOCK_ALLOCATIONS)


def test_ml_opt_scale_shortest_wallclock(result):
    """Paper: 'ML(opt-scale) always leads to the highest performance'.

    The analytic ordering is strict; simulated means get a 3 % tolerance
    for the mildest case, where the analytic gap to ML(ori-scale) is ~3 %
    (the paper's own gap there is 5 %) and finite ensembles are noisy.
    """
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        for case in ("16-12-8-4", "4-3-2-1"):
            case_result = result.blocks[allocation][case]
            analytic_best = case_result.solutions["ml-opt-scale"].expected_wallclock
            best = result.wct_days(allocation, case, "ml-opt-scale")
            for other in ("sl-opt-scale", "ml-ori-scale", "sl-ori-scale"):
                other_solution = case_result.solutions[other]
                if other_solution.feasible:
                    assert analytic_best < other_solution.expected_wallclock
                assert best < result.wct_days(allocation, case, other) * 1.03


def test_ml_opt_wct_in_paper_band(result):
    """Paper Table IV: ML(opt-scale) ~ 10.6-14.6 days; allow a 2x band."""
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        for case in ("16-12-8-4", "4-3-2-1"):
            wct = result.wct_days(allocation, case, "ml-opt-scale")
            assert 5.0 <= wct <= 30.0


def test_sl_ori_scale_catastrophic(result):
    """Paper: classic Young collapses (~890 days at efficiency ~0.002; our
    simulator's retry semantics yield ~140 days at ~0.014 — an order of
    magnitude worse than ML(opt-scale) either way)."""
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        wct = result.wct_days(allocation, "16-12-8-4", "sl-ori-scale")
        assert wct > 4.0 * result.wct_days(allocation, "16-12-8-4", "ml-opt-scale")
        eff = result.efficiency(allocation, "16-12-8-4", "sl-ori-scale")
        assert eff < 0.03


def test_efficiency_advantage_over_ori_scale(result):
    """Paper: ML(opt-scale) efficiency beats ML(ori-scale) by 12.9+%."""
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        for case in ("16-12-8-4", "4-3-2-1"):
            opt = result.efficiency(allocation, case, "ml-opt-scale")
            ori = result.efficiency(allocation, case, "ml-ori-scale")
            assert opt > ori


def test_optimized_scales_large_under_constant_cost(result):
    """Paper: constant PFS cost keeps optimized scales large (860k-940k in
    the paper; 580k-840k under our faithful rollback accounting — see
    EXPERIMENTS.md), far above the Fig. 5 linear-PFS-cost scales."""
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        for case in ("16-12-8-4", "4-3-2-1"):
            sol = result.blocks[allocation][case].solutions["ml-opt-scale"]
            assert 4.5e5 <= sol.scale <= 1e6
    # milder failure case -> larger optimized scale
    for allocation in TABLE4_BLOCK_ALLOCATIONS:
        block = result.blocks[allocation]
        assert (
            block["4-3-2-1"].solutions["ml-opt-scale"].scale
            > block["16-12-8-4"].solutions["ml-opt-scale"].scale
        )
