"""Tests for the abstract-vs-functional validation (Fig. 4b extension)."""

import pytest

from repro.experiments.fig4b import (
    abstract_config_from_functional,
    default_functional_config,
    run_fig4b,
)


def test_abstract_config_derivation():
    config = default_functional_config()
    abstract = abstract_config_from_functional(config)
    assert abstract.num_levels == 4
    # 240 sweeps at cadence (8, 24, 48, 80) -> interval counts (30, 10, 5, 3)
    assert abstract.intervals == (30, 10, 5, 3)
    # costs ordered like the storage hierarchy's levels
    assert list(abstract.checkpoint_costs) == sorted(abstract.checkpoint_costs)
    assert abstract.allocation_period == config.allocation_period


def test_disabled_level_maps_to_single_interval():
    from dataclasses import replace

    config = replace(
        default_functional_config(), checkpoint_interval_sweeps=(8, 0, 0, 80)
    )
    abstract = abstract_config_from_functional(config)
    assert abstract.intervals[1] == 1  # one interval = zero checkpoints
    assert abstract.intervals[2] == 1


def test_validation_agreement():
    """The abstract simulator tracks the functional ground truth within the
    paper's < 4 % criterion (paired failure traces isolate semantics from
    arrival sampling)."""
    result = run_fig4b(n_seeds=6, seed=11)
    assert result.relative_difference < 0.04


def test_seed_count_validated():
    with pytest.raises(ValueError):
        run_fig4b(n_seeds=0)
