"""Tests for the weak-scaling scenario (Section II generality claim)."""

import pytest

from repro.experiments.weak_scaling import (
    run_weak_scaling,
    weak_scaling_parameters,
)


@pytest.fixture(scope="module")
def fast_result():
    return run_weak_scaling(n_runs=4, seed=5, recovery="fast")


def test_parameters_shape():
    params = weak_scaling_parameters()
    assert params.num_levels == 4
    # linear PFS checkpoint cost, constant recovery
    assert params.costs.checkpoint_derivatives(1e4)[3] > 0
    assert params.costs.recovery_derivatives(1e4)[3] == 0
    with pytest.raises(ValueError):
        weak_scaling_parameters(recovery="bogus")


def test_all_strategies_solve(fast_result):
    assert set(fast_result.solutions) == {
        "ml-opt-scale",
        "sl-opt-scale",
        "ml-ori-scale",
        "sl-ori-scale",
    }


def test_ml_beats_sl_under_weak_scaling(fast_result):
    """Multilevel still wins under weak scaling (the cheap levels absorb
    the frequent transient failures)."""
    ml = fast_result.ensembles["ml-opt-scale"].mean_wallclock
    sl = fast_result.ensembles["sl-opt-scale"].mean_wallclock
    assert ml < sl


def test_fast_recovery_regime_uses_full_machine(fast_result):
    """The two-regime finding, part 1: with near-linear (weak-scaling)
    speedup and cheap restarts, the optimal scale is the whole machine —
    scale optimization is a strong-scaling phenomenon, and ML(opt-scale)
    coincides with ML(ori-scale)."""
    opt = fast_result.solutions["ml-opt-scale"]
    ori = fast_result.solutions["ml-ori-scale"]
    assert opt.scale == pytest.approx(100_000.0)
    assert opt.expected_wallclock == pytest.approx(
        ori.expected_wallclock, rel=1e-6
    )


def test_slow_recovery_regime_interior_optimum():
    """Part 2: when every failure costs scale-proportional restart time,
    the optimum moves inside the machine even under weak scaling."""
    result = run_weak_scaling(recovery="slow")
    opt = result.solutions["ml-opt-scale"]
    assert opt.scale < 90_000.0
    assert (
        opt.expected_wallclock
        < result.solutions["ml-ori-scale"].expected_wallclock
    )


def test_gustafson_productive_time_nearly_flat():
    """Weak scaling: near-linear speedup keeps productive time ~1/N."""
    params = weak_scaling_parameters(serial_fraction=0.0)
    t1 = params.productive_time(10_000.0)
    t2 = params.productive_time(20_000.0)
    assert t1 / t2 == pytest.approx(2.0, rel=1e-6)
