"""Fig. 5 trace export: the ISSUE acceptance property, scaled down.

``run_fig5(trace_dir=...)`` must (1) write one JSONL file per
(case x strategy) ensemble, (2) leave the simulated results bit-identical
to an untraced run of the same seed, and (3) produce traces whose
per-level failure/checkpoint counts and portion decompositions match the
corresponding ``SimResult`` fields exactly after a round-trip through
disk.
"""

import pytest

from repro.experiments.fig5 import run_fig5
from repro.obs.trace import (
    checkpoint_counts,
    failure_counts,
    portions_from_events,
    read_ensemble_jsonl,
)

# One mild case, few replicas: the censored SL(ori-scale) probes still
# exercise the heavy path, but at ~4x fewer failures (and trace events)
# than the harsh cases — this module must stay tier-1 affordable.
CASES = ("4-2-1-0.5",)
N_RUNS = 3
SEED = 7


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("fig5-traces")
    result = run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED, trace_dir=trace_dir)
    return result, trace_dir


def test_one_file_per_case_strategy(traced):
    result, trace_dir = traced
    files = sorted(p.name for p in trace_dir.glob("*.jsonl"))
    expected = sorted(
        f"fig5_{case.case}_{name}.jsonl"
        for case in result.cases
        for name in case.ensembles
    )
    assert files == expected


def test_tracing_leaves_results_bit_identical(traced):
    result, _ = traced
    plain = run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED)
    for traced_case, plain_case in zip(result.cases, plain.cases):
        for name in plain_case.ensembles:
            assert (
                traced_case.ensembles[name].runs
                == plain_case.ensembles[name].runs
            ), (traced_case.case, name)


def test_trace_files_match_sim_results_exactly(traced):
    """The acceptance criterion: reloaded per-replica traces reproduce
    ``failures_per_level`` / ``checkpoints_per_level`` (and the portions)
    of every ``SimResult``."""
    result, trace_dir = traced
    checked = 0
    for case in result.cases:
        for name, ensemble in case.ensembles.items():
            path = trace_dir / f"fig5_{case.case}_{name}.jsonl"
            traces = read_ensemble_jsonl(path)
            assert len(traces) == ensemble.n_runs
            for events, run in zip(traces, ensemble.runs):
                levels = len(run.failures_per_level)
                assert (
                    failure_counts(events, levels) == run.failures_per_level
                )
                assert (
                    checkpoint_counts(events, levels)
                    == run.checkpoints_per_level
                )
                assert portions_from_events(events) == run.portions
                checked += 1
    assert checked >= len(CASES) * 4 * 2  # censored probes may trim runs
    # (Censored-replica traces are covered at the engine level in
    # tests/sim/test_trace_reconstruction.py — the harsh cases that
    # censor here cost minutes of simulated-3-years probes, too heavy
    # for tier-1.)
