"""Tests for the Fig. 4 simulator-validation experiment."""

import pytest

from repro.experiments.fig4 import run_fig4


@pytest.fixture(scope="module")
def result():
    return run_fig4()


def test_sweep_covers_all_levels(result):
    assert len(result.points) == 12  # 4 levels x 3 factors
    varied_levels = set()
    base = (36, 18, 9, 4)
    for p in result.points:
        for i in range(4):
            if p.intervals[i] != base[i]:
                varied_levels.add(i)
    assert varied_levels == {0, 1, 2, 3}


def test_paper_acceptance_criterion(result):
    """The paper reports < 4 % simulation-vs-reference difference."""
    assert result.max_relative_difference < 0.04
    assert result.mean_relative_difference < 0.01


def test_validation():
    with pytest.raises(ValueError):
        run_fig4(traces_per_point=0)
