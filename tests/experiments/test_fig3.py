"""Tests for the Fig. 3 single-level confirmation experiment."""

import numpy as np
import pytest

from repro.experiments.fig3 import run_fig3


@pytest.fixture(scope="module")
def result():
    return run_fig3()


class TestPaperOptima:
    def test_constant_cost_matches_quoted(self, result):
        sol = result.constant_cost.solution
        assert round(sol.x) == 797
        assert abs(sol.n - 81_746.0) <= 2.0

    def test_linear_cost_matches_quoted(self, result):
        sol = result.linear_cost.solution
        assert round(sol.x) == 140
        assert abs(sol.n - 20_215.0) <= 2.0


class TestSweepConfirmation:
    @pytest.mark.parametrize("scenario", ["constant_cost", "linear_cost"])
    def test_solution_at_sweep_valley(self, result, scenario):
        s = getattr(result, scenario)
        best = s.solution.expected_wallclock
        assert np.min(s.sweep_x_objective) >= best * 0.999
        assert np.min(s.sweep_n_objective) >= best * 0.999

    def test_objective_convex_along_sweeps(self, result):
        """Each swept curve is unimodal (dips then rises)."""
        for s in (result.constant_cost, result.linear_cost):
            for obj in (s.sweep_x_objective, s.sweep_n_objective):
                valley = int(np.argmin(obj))
                assert np.all(np.diff(obj[: valley + 1]) <= 1e-9)
                assert np.all(np.diff(obj[valley:]) >= -1e-9)


def test_linear_cost_shrinks_optimal_scale(result):
    """Scale-growing checkpoint cost pushes the optimum to fewer cores."""
    assert result.linear_cost.solution.n < result.constant_cost.solution.n
    assert result.linear_cost.solution.x < result.constant_cost.solution.x
