"""Tests for the Fig. 2 speedup-fitting experiment."""

import pytest

from repro.experiments.fig2 import kappa_recovery_error, run_fig2


@pytest.fixture(scope="module")
def result():
    return run_fig2()


def test_heat_kappa_recovered(result):
    """The paper's kappa = 0.46 is recovered within 10 %."""
    assert kappa_recovery_error(result) < 0.1


def test_measured_heat_curve_fits_quadratic(result):
    """The speedup measured from the simulated-MPI app admits a quadratic
    fit with an interior maximum (the Fig. 2(a) shape)."""
    fit = result.heat_measured_fit
    assert fit.kappa > 0
    assert fit.ideal_scale > max(64.0, 0.0)
    assert fit.residual_rms / fit.model.peak_speedup < 0.2


def test_eddy_peak_near_paper_value(result):
    """eddy_uv speedup peaks around 100 cores (Fig. 2(b))."""
    assert 50.0 <= result.eddy_peak_scale <= 200.0


def test_eddy_fit_on_initial_range(result):
    assert result.eddy_fit.ideal_scale == pytest.approx(100.0, rel=0.5)
