"""Scaled-down Fig. 5 / Table III experiment tests.

The full experiment (6 cases x 4 strategies x 100 runs) runs in the bench;
here two cases with few replicas verify the pipeline end-to-end and the
paper's qualitative findings.
"""

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7


@pytest.fixture(scope="module")
def result():
    return run_fig5(cases=("16-12-8-4", "4-2-1-0.5"), n_runs=5, seed=1)


def test_all_strategies_simulated(result):
    for case in result.cases:
        assert set(case.ensembles) == {
            "ml-opt-scale",
            "sl-opt-scale",
            "ml-ori-scale",
            "sl-ori-scale",
        }


def test_ml_opt_scale_wins_each_case(result):
    """The paper's headline: ML(opt-scale) has the shortest wall-clock."""
    for case in result.cases:
        best = case.ensembles["ml-opt-scale"].mean_wallclock
        for name, ens in case.ensembles.items():
            if name != "ml-opt-scale":
                assert best < ens.mean_wallclock, (case.case, name)


def test_wallclock_decreases_with_failure_rates(result):
    """From 16-12-8-4 to 4-2-1-0.5 the wall-clock falls (paper finding 1)."""
    harsh = result.cases[0].ensembles["ml-opt-scale"].mean_wallclock
    mild = result.cases[1].ensembles["ml-opt-scale"].mean_wallclock
    assert mild < harsh


def test_optimized_scale_grows_as_rates_shrink(result):
    """Table III trend: milder failure cases allow larger scales."""
    scales = result.optimized_scales()["ml-opt-scale"]
    assert scales["4-2-1-0.5"] > scales["16-12-8-4"]


def test_table3_scales_in_paper_band(result):
    """ML(opt-scale) uses a large fraction of the million cores; SL(opt-scale)
    collapses to much smaller scales (Table III shape)."""
    for case in result.cases:
        ml = case.solutions["ml-opt-scale"].scale
        sl = case.solutions["sl-opt-scale"].scale
        assert 2e5 <= ml <= 9e5
        assert sl < ml


def test_sl_ori_scale_censored_or_catastrophic(result):
    """Classic Young at 10^6 cores with the scale-growing PFS cost is
    either censored outright (harsh cases: no interval ever completes) or
    at least several times slower than ML(opt-scale) (mild cases)."""
    for case in result.cases:
        ens = case.ensembles["sl-ori-scale"]
        if ens.all_completed:
            ratio = (
                ens.mean_wallclock
                / case.ensembles["ml-opt-scale"].mean_wallclock
            )
            assert ratio > 3.0, case.case
        # censored runs are the expected outcome for the harsh cases
    harsh = result.cases[0]
    assert not harsh.ensembles["sl-ori-scale"].all_completed


def test_fig7_efficiency_shape(result):
    fig7 = run_fig7(result)
    for case_name, row in fig7.efficiencies.items():
        assert row["sl-opt-scale"] >= row["ml-ori-scale"]
        assert row["ml-opt-scale"] >= row["ml-ori-scale"]
