"""Tests for the convergence study (paper iteration-count claims)."""

import pytest

from repro.experiments.convergence import run_convergence


@pytest.fixture(scope="module")
def study():
    return run_convergence(cases=("16-12-8-4", "8-6-4-2", "4-3-2-1"))


def test_algorithm1_iterations_in_paper_envelope(study):
    """Paper: 8, 7 and 15 outer iterations on the three Table IV cases at
    delta = 1e-12.  Allow a 4x envelope for implementation variance."""
    for case, report in study.algorithm1_reports.items():
        assert 2 <= report.outer_iterations <= 60, case


def test_residuals_contract(study):
    for report in study.algorithm1_reports.values():
        assert report.mu_residuals[-1] < 1e-10


def test_single_level_iterations_bounded(study):
    """Paper: 30-40 iterations from x0 = 100,000 (our alternation converges
    faster; must stay within the envelope)."""
    assert 1 <= study.single_level_iterations <= 40
