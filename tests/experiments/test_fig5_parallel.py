"""Serial-vs-parallel bit-identity of the experiment drivers.

The acceptance bar of the execution layer: for a fixed root seed,
``run_fig5`` (and by extension fig6/table4, which share its machinery)
returns the *same object graph* — solutions, ensembles, every float —
whether the (case x strategy) ensembles run serially or on a pool.
"""

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.table4 import run_table4
from repro.parallel.executor import ProcessExecutor, ThreadExecutor

CASES = ("4-2-1-0.5",)  # the mild case: fastest simulated wall-clock
N_RUNS = 3
SEED = 11


@pytest.fixture(scope="module")
def serial_result():
    return run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED)


def test_serial_rerun_is_equal(serial_result):
    assert run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED) == serial_result


def test_thread_pool_bit_identical(serial_result):
    with ThreadExecutor(4) as ex:
        parallel = run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED, executor=ex)
    assert parallel == serial_result


def test_process_pool_bit_identical(serial_result):
    with ProcessExecutor(2) as ex:
        parallel = run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED, executor=ex)
    assert parallel == serial_result


def test_jobs_argument_bit_identical(serial_result):
    assert (
        run_fig5(cases=CASES, n_runs=N_RUNS, seed=SEED, jobs=3)
        == serial_result
    )


def test_table4_parallel_bit_identical():
    kwargs = dict(cases=("4-3-2-1",), n_runs=2, seed=5)
    serial = run_table4(**kwargs)
    with ThreadExecutor(4) as ex:
        parallel = run_table4(executor=ex, **kwargs)
    assert parallel.blocks == serial.blocks
