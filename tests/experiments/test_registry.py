"""Tests for the experiment registry."""

import inspect

import pytest

import repro.experiments.registry as registry
from repro.experiments.fig7 import Fig7Result
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_fig7_standalone,
)


def test_all_design_md_experiments_registered():
    expected = {
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig4b",
        "fig5",
        "fig6",
        "fig7",
        "table2",
        "table4",
        "convergence",
        "weak-scaling",
    }
    assert set(EXPERIMENTS) == expected


def test_lookup():
    assert get_experiment("fig3") is EXPERIMENTS["fig3"]
    with pytest.raises(KeyError, match="available"):
        get_experiment("fig99")


def test_drivers_are_callable():
    assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestFig7Standalone:
    """The fig7 entry is a documented named wrapper, not an opaque lambda."""

    def test_registered_and_documented(self):
        driver = get_experiment("fig7")
        assert driver is run_fig7_standalone
        assert driver.__name__ == "run_fig7_standalone"
        assert "run_fig5" in inspect.getdoc(driver)

    def test_forwards_all_ensemble_knobs(self, monkeypatch):
        """Every kwarg beyond ``n_runs`` must reach ``run_fig5`` intact."""
        seen = {}

        def fake_run_fig5(**kwargs):
            seen.update(kwargs)

            class _Fake:
                te_core_days = 3e6
                cases = ()

            return _Fake()

        monkeypatch.setattr(registry, "run_fig5", fake_run_fig5)
        result = get_experiment("fig7")(
            n_runs=4, cases=("8-4-2-1",), seed=77, jitter=0.1, jobs=2
        )
        assert isinstance(result, Fig7Result)
        assert seen == {
            "n_runs": 4,
            "cases": ("8-4-2-1",),
            "seed": 77,
            "jitter": 0.1,
            "jobs": 2,
        }

    def test_default_run_count_is_small(self, monkeypatch):
        seen = {}

        def fake_run_fig5(**kwargs):
            seen.update(kwargs)

            class _Fake:
                te_core_days = 3e6
                cases = ()

            return _Fake()

        monkeypatch.setattr(registry, "run_fig5", fake_run_fig5)
        get_experiment("fig7")()
        assert seen["n_runs"] == 10
