"""Tests for the experiment registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment


def test_all_design_md_experiments_registered():
    expected = {
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig4b",
        "fig5",
        "fig6",
        "fig7",
        "table2",
        "table4",
        "convergence",
        "weak-scaling",
    }
    assert set(EXPERIMENTS) == expected


def test_lookup():
    assert get_experiment("fig3") is EXPERIMENTS["fig3"]
    with pytest.raises(KeyError, match="available"):
        get_experiment("fig99")


def test_drivers_are_callable():
    assert all(callable(fn) for fn in EXPERIMENTS.values())
