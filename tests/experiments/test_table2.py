"""Tests for the Table II regeneration experiment."""

import numpy as np
import pytest

from repro.experiments.table2 import paper_coefficients, run_table2


@pytest.fixture(scope="module")
def result():
    return run_table2()


def test_table_shape(result):
    assert result.characterization.table.shape == result.paper_table.shape == (5, 4)


def test_fitted_coefficients_match_paper(result):
    """The regenerated characterization fits back to the paper's quoted
    (eps_i, alpha_i) within tight tolerances."""
    for (ours_eps, ours_alpha), (paper_eps, paper_alpha) in zip(
        result.fitted_coefficients, paper_coefficients()
    ):
        if paper_alpha == 0.0:
            assert ours_alpha == 0.0
            assert ours_eps == pytest.approx(paper_eps, rel=0.1)
        else:
            assert ours_alpha == pytest.approx(paper_alpha, rel=0.05)
            assert ours_eps == pytest.approx(paper_eps, rel=0.15)


def test_cellwise_agreement_loose(result):
    """The paper's raw cells jitter (real measurements; e.g. the 256-core
    PFS cell sits 35 % off the paper's own fitted line).  Our deterministic
    regeneration stays within 40 % of every raw cell and within 5 % of the
    paper's *fitted* curve, which is what the optimization consumes."""
    assert result.max_relative_error < 0.40
    fitted_pfs = 5.5 + 0.0212 * result.characterization.scales
    rel_to_fit = np.abs(
        result.characterization.table[:, 3] - fitted_pfs
    ) / fitted_pfs
    assert rel_to_fit.max() < 0.05


def test_noisy_characterization_still_fits(capfd):
    noisy = run_table2(noise=0.1, seed=3)
    alpha_pfs = noisy.fitted_coefficients[3][1]
    assert alpha_pfs == pytest.approx(0.0212, rel=0.2)
