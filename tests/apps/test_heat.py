"""Tests for the Heat Distribution application."""

import numpy as np
import pytest

from repro.apps.heat import HeatDistribution2D, measure_heat_speedup
from repro.apps.simmpi import SimComm


@pytest.fixture
def solver():
    return HeatDistribution2D(grid_size=24, comm=SimComm(n_ranks=4))


class TestPhysics:
    def test_residual_decreases(self, solver):
        residuals = [solver.jacobi_sweep() for _ in range(50)]
        assert residuals[-1] < residuals[0]

    def test_converges_toward_laplace_solution(self):
        """Steady state: interior value near the hot edge approaches it."""
        solver = HeatDistribution2D(grid_size=16, comm=SimComm(n_ranks=1))
        solver.solve(tol=1e-6, max_iterations=20_000)
        # adjacent to the 100-degree boundary row: hot
        assert solver.grid[1, 8] > 40.0
        # far corner: cold
        assert solver.grid[-2, 8] < 15.0

    def test_maximum_principle(self, solver):
        """Temperatures stay within the boundary extremes."""
        for _ in range(200):
            solver.jacobi_sweep()
        assert solver.grid.max() <= 100.0 + 1e-9
        assert solver.grid.min() >= -1e-9

    def test_solve_returns_iterations(self):
        solver = HeatDistribution2D(grid_size=8, comm=SimComm(n_ranks=1))
        iterations = solver.solve(tol=1e-4)
        assert iterations == solver.iterations_done > 0

    def test_solve_nonconvergence_raises(self, solver):
        with pytest.raises(RuntimeError, match="did not converge"):
            solver.solve(tol=1e-12, max_iterations=3)


class TestTiming:
    def test_simulated_time_charged_per_sweep(self, solver):
        before = solver.comm.elapsed
        solver.jacobi_sweep()
        assert solver.comm.elapsed > before

    def test_more_ranks_less_time_at_small_scale(self):
        t = {}
        for ranks in (1, 4):
            comm = SimComm(n_ranks=ranks)
            s = HeatDistribution2D(grid_size=256, comm=comm)
            s.jacobi_sweep()
            t[ranks] = comm.elapsed
        assert t[4] < t[1]

    def test_iteration_time_model_matches_charges(self):
        comm = SimComm(n_ranks=4)
        solver = HeatDistribution2D(grid_size=64, comm=comm)
        solver.jacobi_sweep()
        modeled = HeatDistribution2D.iteration_time(4, grid_size=64)
        assert comm.elapsed == pytest.approx(float(modeled), rel=1e-9)


class TestSpeedupCurve:
    def test_bends_like_fig2a(self):
        """Speedup rises, then gains flatten (sub-linear efficiency)."""
        scales = np.array([1, 16, 256, 4096, 65_536])
        _, speedups = measure_heat_speedup(scales, grid_size=4096)
        assert np.all(np.diff(speedups) > 0) or speedups[-1] < speedups[-2]
        eff = speedups / scales
        assert np.all(np.diff(eff) < 0)

    def test_has_interior_peak_at_large_scale(self):
        scales = np.geomspace(1, 1e7, 40)
        _, speedups = measure_heat_speedup(scales, grid_size=4096)
        peak = np.argmax(speedups)
        assert 0 < peak < len(scales) - 1


class TestCheckpointIntegration:
    def test_state_arrays_live_reference(self, solver):
        state = solver.state_arrays()
        assert state["grid"] is solver.grid

    def test_checkpoint_bytes_positive(self, solver):
        assert solver.checkpoint_bytes_per_rank() > 0


def test_too_many_ranks_rejected():
    with pytest.raises(ValueError):
        HeatDistribution2D(grid_size=4, comm=SimComm(n_ranks=8))
