"""Tests for the simulated-MPI layer."""

import numpy as np
import pytest

from repro.apps.simmpi import SimClock, SimComm
from repro.cluster.network import NetworkModel


def test_clock_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(2.5)
    assert clock.elapsed == 4.0
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_compute_charges_slowest_rank():
    comm = SimComm(n_ranks=4, flop_rate=1e9)
    comm.compute([1e9, 2e9, 1e9, 1e9])
    assert comm.elapsed == pytest.approx(2.0)


def test_halo_exchange_free_on_one_rank():
    comm = SimComm(n_ranks=1)
    comm.exchange_halo(1e6)
    assert comm.elapsed == 0.0


def test_halo_exchange_charges_p2p():
    net = NetworkModel(latency=1e-6, bandwidth=1e9)
    comm = SimComm(n_ranks=8, network=net)
    comm.exchange_halo(1e9)
    assert comm.elapsed == pytest.approx(net.p2p_time(1e9))


def test_allreduce_performs_real_reduction():
    comm = SimComm(n_ranks=4)
    values = np.arange(8.0).reshape(4, 2)
    total = comm.allreduce(values, op="sum")
    assert np.allclose(total, values.sum(axis=0))
    assert comm.elapsed > 0


def test_allreduce_ops():
    comm = SimComm(n_ranks=2)
    v = np.array([[1.0], [3.0]])
    assert comm.allreduce(v, op="max")[0] == 3.0
    assert comm.allreduce(v, op="min")[0] == 1.0
    with pytest.raises(ValueError):
        comm.allreduce(v, op="median")


def test_allreduce_shape_validation():
    comm = SimComm(n_ranks=4)
    with pytest.raises(ValueError):
        comm.allreduce(np.zeros((3, 1)))


def test_bcast_and_barrier_charge_time():
    comm = SimComm(n_ranks=16)
    comm.bcast(1e6)
    t1 = comm.elapsed
    comm.barrier()
    assert comm.elapsed > t1 > 0


def test_validation():
    with pytest.raises(ValueError):
        SimComm(n_ranks=0)
    with pytest.raises(ValueError):
        SimComm(n_ranks=1, flop_rate=0.0)
    with pytest.raises(ValueError):
        SimComm(n_ranks=2).compute(-1.0)
