"""Tests for workload descriptors."""

import pytest

from repro.apps.workload import Workload
from repro.speedup.quadratic import QuadraticSpeedup


@pytest.fixture
def workload():
    return Workload(
        name="heat",
        te_core_days=3e6,
        speedup=QuadraticSpeedup(kappa=0.46, ideal_scale=1e6),
    )


def test_core_seconds_conversion(workload):
    assert workload.te_core_seconds == pytest.approx(3e6 * 86_400.0)


def test_productive_time_at_ideal_scale(workload):
    # g(1e6) = 0.46 * 1e6 / 2 = 230,000 -> ~13.04 days
    days = workload.productive_time(1e6) / 86_400.0
    assert days == pytest.approx(3e6 / 230_000.0, rel=1e-6)


def test_validation():
    speedup = QuadraticSpeedup(kappa=0.5, ideal_scale=100.0)
    with pytest.raises(ValueError):
        Workload(name="x", te_core_days=0.0, speedup=speedup)
    with pytest.raises(ValueError):
        Workload(
            name="x",
            te_core_days=1.0,
            speedup=speedup,
            checkpoint_bytes_per_process=-1.0,
        )
