"""Tests for the Jacobi linear solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.jacobi import (
    JacobiSolver,
    is_strictly_diagonally_dominant,
    iteration_matrix,
    spectral_radius,
)
from repro.apps.simmpi import SimComm


def _dominant_system(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (n, n))
    a[np.arange(n), np.arange(n)] = np.abs(a).sum(axis=1) + 1.0
    b = rng.normal(0, 1, n)
    return a, b


class TestTheory:
    def test_dominance_detection(self):
        a, _ = _dominant_system(6, 0)
        assert is_strictly_diagonally_dominant(a)
        a[0, 0] = 0.1
        assert not is_strictly_diagonally_dominant(a)

    def test_dominance_implies_contraction(self):
        a, _ = _dominant_system(8, 1)
        assert spectral_radius(a) < 1.0

    def test_iteration_matrix_zero_diagonal(self):
        a, _ = _dominant_system(5, 2)
        m = iteration_matrix(a)
        assert np.all(np.diag(m) == 0.0)

    def test_asymptotic_contraction_rate(self):
        """The error shrinks by ~rho(M) per step asymptotically."""
        a, b = _dominant_system(10, 3)
        rho = spectral_radius(a)
        exact = np.linalg.solve(a, b)
        solver = JacobiSolver(a, b)
        errors = []
        for _ in range(30):
            solver.step()
            errors.append(np.max(np.abs(solver.x - exact)))
        # complex eigenvalues make per-step ratios oscillate; the geometric
        # rate over a window converges to rho(M).  Stay well above machine
        # epsilon (rho ~ 0.42 reaches 1e-16 within ~40 steps here).
        rate = (errors[25] / errors[5]) ** (1.0 / 20.0)
        assert rate == pytest.approx(rho, rel=0.15)


class TestSolver:
    def test_converges_to_exact_solution(self):
        a, b = _dominant_system(12, 4)
        solver = JacobiSolver(a, b)
        iterations = solver.solve(tol=1e-12)
        assert iterations == solver.iterations_done
        assert np.allclose(solver.x, np.linalg.solve(a, b), atol=1e-9)
        assert solver.residual_norm() < 1e-8

    def test_simulated_time_charged(self):
        a, b = _dominant_system(16, 5)
        comm = SimComm(n_ranks=4)
        solver = JacobiSolver(a, b, comm=comm)
        solver.step()
        assert comm.elapsed > 0

    def test_non_convergent_reports_rho(self):
        # not diagonally dominant and actually divergent
        a = np.array([[1.0, 2.0], [3.0, 1.0]])
        b = np.array([1.0, 1.0])
        solver = JacobiSolver(a, b)
        with pytest.raises(RuntimeError, match="rho"):
            solver.solve(tol=1e-12, max_iterations=50)

    def test_validation(self):
        with pytest.raises(ValueError):
            JacobiSolver(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            JacobiSolver(np.eye(3), np.zeros(2))
        with pytest.raises(ValueError, match="zero-free"):
            JacobiSolver(np.zeros((2, 2)), np.zeros(2))
        a, b = _dominant_system(3, 6)
        with pytest.raises(ValueError, match="ranks"):
            JacobiSolver(a, b, comm=SimComm(n_ranks=8))


class TestFTIIntegration:
    def test_iterate_survives_node_crash(self):
        """The solver's state round-trips through the functional FTI."""
        from repro.cluster.topology import ClusterTopology
        from repro.fti.api import FTIContext
        from repro.fti.levels import CheckpointLevel

        a, b = _dominant_system(16, 7)
        solver = JacobiSolver(a, b, comm=SimComm(n_ranks=4))
        topo = ClusterTopology(num_nodes=4, rs_group_size=4, rs_parity=2)
        ctx = FTIContext(topo, ranks_per_node=1)
        rows = np.array_split(np.arange(16), 4)
        for rank, block in enumerate(rows):
            ctx.protect(rank, "x", solver.x[block[0] : block[-1] + 1])
        for _ in range(10):
            solver.step()
        saved = solver.x.copy()
        ctx.checkpoint(CheckpointLevel.PARTNER)
        for _ in range(5):
            solver.step()
        ctx.fail_nodes([2])
        ctx.recover()
        assert np.array_equal(solver.x, saved)
        # re-execute and converge as if never interrupted
        solver.solve(tol=1e-12)
        assert np.allclose(solver.x, np.linalg.solve(a, b), atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_dominant_systems_always_solve(n, seed):
    a, b = _dominant_system(n, seed)
    solver = JacobiSolver(a, b)
    solver.solve(tol=1e-10, max_iterations=20_000)
    assert solver.residual_norm() < 1e-7
