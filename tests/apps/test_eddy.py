"""Tests for the eddy_uv-style application."""

import numpy as np
import pytest

from repro.apps.eddy import EddySolver, analytic_eddy, measure_eddy_speedup
from repro.apps.simmpi import SimComm


class TestAnalyticSolution:
    def test_divergence_free(self):
        """The eddy velocity field is incompressible: du/dx + dv/dy = 0."""
        n = 128
        h = 2 * np.pi / n
        coords = np.linspace(0, 2 * np.pi, n, endpoint=False)
        x, y = np.meshgrid(coords, coords, indexing="ij")
        u, v = analytic_eddy(x, y, t=0.3)
        dudx = (np.roll(u, -1, axis=0) - np.roll(u, 1, axis=0)) / (2 * h)
        dvdy = (np.roll(v, -1, axis=1) - np.roll(v, 1, axis=1)) / (2 * h)
        assert np.max(np.abs(dudx + dvdy)) < 1e-10

    def test_exponential_decay(self):
        x = np.array([[1.0]])
        y = np.array([[2.0]])
        u0, _ = analytic_eddy(x, y, 0.0, nu=0.05)
        u1, _ = analytic_eddy(x, y, 10.0, nu=0.05)
        assert abs(u1[0, 0]) == pytest.approx(abs(u0[0, 0]) * np.exp(-1.0))


class TestSolver:
    def test_error_starts_at_zero_and_grows(self):
        solver = EddySolver(grid_size=32, dt=1e-2)
        errors = [solver.step() for _ in range(100)]
        assert errors[0] < errors[-1]
        assert errors[0] < 1e-4

    def test_error_shrinks_with_dt(self):
        """First-order integrator: halving dt halves the error at fixed T."""
        final_errors = {}
        for dt in (2e-2, 1e-2):
            solver = EddySolver(grid_size=16, dt=dt)
            steps = int(round(1.0 / dt))
            for _ in range(steps):
                err = solver.step()
            final_errors[dt] = err
        ratio = final_errors[2e-2] / final_errors[1e-2]
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_comm_charged_when_present(self):
        comm = SimComm(n_ranks=4)
        solver = EddySolver(grid_size=16, comm=comm)
        solver.step()
        assert comm.elapsed > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EddySolver(grid_size=2)
        with pytest.raises(ValueError):
            EddySolver(nu=0.0)
        with pytest.raises(ValueError):
            EddySolver(dt=-1.0)


class TestSpeedupShape:
    def test_rise_then_fall(self):
        """The eddy speedup peaks at moderate scale then declines (Fig 2b)."""
        scales = np.geomspace(1, 4096, 25)
        _, speedups = measure_eddy_speedup(scales, grid_size=1024)
        peak = int(np.argmax(speedups))
        assert 0 < peak < len(scales) - 1
        assert speedups[-1] < speedups[peak] * 0.9

    def test_peak_near_hundred_cores(self):
        scales = np.geomspace(4, 10_000, 60)
        s, speedups = measure_eddy_speedup(scales, grid_size=1024)
        peak_scale = s[int(np.argmax(speedups))]
        assert 30 <= peak_scale <= 400
