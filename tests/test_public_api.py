"""Public-API surface tests: exports exist, are documented, and cohere."""

import inspect

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
def test_every_export_exists_and_is_documented(name):
    obj = getattr(repro, name)
    doc = inspect.getdoc(obj)
    assert doc, f"{name} has no docstring"
    assert len(doc) > 20, f"{name} docstring is vestigial: {doc!r}"


def test_all_subpackages_importable():
    import importlib

    for sub in (
        "core",
        "speedup",
        "costs",
        "failures",
        "cluster",
        "fti",
        "apps",
        "sim",
        "funcsim",
        "analysis",
        "parallel",
        "obs",
        "experiments",
        "util",
        "cli",
        "service",
    ):
        module = importlib.import_module(f"repro.{sub}")
        assert inspect.getdoc(module), f"repro.{sub} lacks a module docstring"


def test_strategy_functions_share_signature_shape():
    """All four strategies accept ModelParameters and return Solution."""
    from repro.core.notation import Solution

    for fn in (
        repro.ml_opt_scale,
        repro.sl_opt_scale,
        repro.ml_ori_scale,
        repro.sl_ori_scale,
    ):
        params = inspect.signature(fn).parameters
        assert "params" in params
        hints = inspect.signature(fn).return_annotation
        assert hints in (Solution, "Solution")


def test_no_private_names_in_all():
    assert not [n for n in repro.__all__ if n.startswith("_") and n != "__version__"]
