"""Tests for the Gustafson-Barsis speedup model."""

import numpy as np
import pytest

from repro.speedup.gustafson import GustafsonSpeedup


def test_single_core_is_one():
    assert GustafsonSpeedup(0.2).speedup(1.0) == pytest.approx(1.0)


def test_linear_growth_slope():
    model = GustafsonSpeedup(serial_fraction=0.2)
    assert model.derivative(10.0) == pytest.approx(0.8)
    # g(N) = N - s(N-1)
    assert model.speedup(100.0) == pytest.approx(100.0 - 0.2 * 99.0)


def test_vector_derivative():
    model = GustafsonSpeedup(0.3)
    d = model.derivative(np.array([1.0, 5.0]))
    assert np.allclose(d, 0.7)


def test_zero_serial_is_perfect_scaling():
    model = GustafsonSpeedup(0.0)
    assert model.speedup(64.0) == pytest.approx(64.0)


def test_validation():
    with pytest.raises(ValueError):
        GustafsonSpeedup(1.0)
    with pytest.raises(ValueError):
        GustafsonSpeedup(0.5, max_scale=-5.0)
