"""Tests for quadratic speedup fitting (Fig. 2 procedure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.speedup.fitting import (
    fit_quadratic_speedup,
    select_initial_range,
)
from repro.speedup.quadratic import QuadraticSpeedup


class TestSelectInitialRange:
    def test_monotone_data_kept_whole(self):
        scales = np.array([1.0, 2.0, 4.0, 8.0])
        speedups = np.array([1.0, 1.9, 3.5, 6.0])
        s, v = select_initial_range(scales, speedups)
        assert s.size == 4

    def test_rise_then_fall_truncated_at_peak(self):
        scales = np.array([10.0, 50.0, 100.0, 150.0, 200.0])
        speedups = np.array([9.0, 40.0, 55.0, 50.0, 30.0])
        s, v = select_initial_range(scales, speedups)
        assert s.tolist() == [10.0, 50.0, 100.0]
        assert v[-1] == 55.0

    def test_unsorted_input_sorted_first(self):
        scales = np.array([100.0, 10.0, 50.0])
        speedups = np.array([55.0, 9.0, 40.0])
        s, _ = select_initial_range(scales, speedups)
        assert np.all(np.diff(s) > 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_initial_range(np.array([]), np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            select_initial_range(np.array([1.0]), np.array([1.0, 2.0]))


class TestFit:
    def test_exact_recovery_from_clean_data(self):
        true = QuadraticSpeedup(kappa=0.46, ideal_scale=100_000.0)
        scales = np.linspace(1_000.0, 90_000.0, 20)
        fit = fit_quadratic_speedup(scales, true.speedup(scales))
        assert fit.kappa == pytest.approx(0.46, rel=1e-8)
        assert fit.ideal_scale == pytest.approx(100_000.0, rel=1e-6)
        assert fit.residual_rms < 1e-6

    def test_noisy_recovery_close(self):
        rng = np.random.default_rng(3)
        true = QuadraticSpeedup(kappa=0.9, ideal_scale=100.0)
        scales = np.linspace(5.0, 95.0, 15)
        noisy = true.speedup(scales) * (1 + rng.normal(0, 0.02, 15))
        fit = fit_quadratic_speedup(scales, noisy)
        assert fit.kappa == pytest.approx(0.9, rel=0.15)

    def test_initial_range_restriction_applied(self):
        """Fig. 2(b): rise-then-fall data is fitted on the rising range."""
        true = QuadraticSpeedup(kappa=0.9, ideal_scale=100.0)
        rising = np.linspace(5.0, 100.0, 10)
        falling = np.array([150.0, 200.0])
        scales = np.concatenate([rising, falling])
        speedups = np.concatenate(
            [true.speedup(rising), [30.0, 20.0]]  # decay unlike the quadratic
        )
        fit = fit_quadratic_speedup(scales, speedups)
        assert fit.n_points_used == 10
        assert fit.kappa == pytest.approx(0.9, rel=1e-6)

    def test_without_restriction_uses_all_points(self):
        true = QuadraticSpeedup(kappa=0.9, ideal_scale=100.0)
        scales = np.linspace(5.0, 150.0, 12)
        fit = fit_quadratic_speedup(
            scales, true.speedup(scales), restrict_to_initial_range=False
        )
        assert fit.n_points_used == 12

    def test_linear_data_rejected(self):
        scales = np.linspace(1.0, 100.0, 10)
        with pytest.raises(ValueError, match="no interior speedup maximum"):
            fit_quadratic_speedup(scales, 0.5 * scales)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_quadratic_speedup([10.0], [5.0])

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            fit_quadratic_speedup([-1.0, 2.0], [1.0, 2.0])


@settings(max_examples=25, deadline=None)
@given(
    kappa=st.floats(min_value=0.1, max_value=1.5),
    ideal=st.floats(min_value=500.0, max_value=1e6),
)
def test_fit_is_left_inverse_of_generation(kappa, ideal):
    """Fitting clean curve samples recovers the generating parameters."""
    true = QuadraticSpeedup(kappa=kappa, ideal_scale=ideal)
    scales = np.linspace(ideal / 50.0, 0.9 * ideal, 12)
    fit = fit_quadratic_speedup(scales, true.speedup(scales))
    assert fit.kappa == pytest.approx(kappa, rel=1e-5)
    assert fit.ideal_scale == pytest.approx(ideal, rel=1e-4)
