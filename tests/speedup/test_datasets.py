"""Tests for the Fig. 2 reference datasets."""

import numpy as np
import pytest

from repro.speedup.datasets import (
    EDDY_PEAK_SCALE,
    HEAT_KAPPA,
    HEAT_RAW_POINT,
    heat_distribution_speedup_points,
    nek5000_eddy_speedup_points,
)
from repro.speedup.fitting import fit_quadratic_speedup


class TestHeatDataset:
    def test_deterministic_for_seed(self):
        a = heat_distribution_speedup_points(seed=1)
        b = heat_distribution_speedup_points(seed=1)
        assert np.array_equal(a[1], b[1])

    def test_includes_paper_raw_point(self):
        scales, speedups = heat_distribution_speedup_points()
        idx = np.where(scales == HEAT_RAW_POINT[0])[0]
        assert idx.size == 1
        assert speedups[idx[0]] == HEAT_RAW_POINT[1]

    def test_fit_recovers_paper_kappa(self):
        scales, speedups = heat_distribution_speedup_points()
        fit = fit_quadratic_speedup(scales, speedups)
        assert fit.kappa == pytest.approx(HEAT_KAPPA, rel=0.1)

    def test_scales_sorted_and_in_fusion_range(self):
        scales, _ = heat_distribution_speedup_points()
        assert np.all(np.diff(scales) > 0)
        assert scales.max() <= 1024

    def test_noise_bounds_validated(self):
        with pytest.raises(ValueError):
            heat_distribution_speedup_points(noise=0.7)


class TestEddyDataset:
    def test_rise_then_fall_shape(self):
        scales, speedups = nek5000_eddy_speedup_points(noise=0.0)
        peak_idx = int(np.argmax(speedups))
        assert scales[peak_idx] == pytest.approx(EDDY_PEAK_SCALE)
        # strictly lower at the largest scale than at the peak
        assert speedups[-1] < speedups[peak_idx]

    def test_initial_range_fit_succeeds(self):
        scales, speedups = nek5000_eddy_speedup_points()
        fit = fit_quadratic_speedup(scales, speedups)
        # fitted on the rising range only
        assert fit.n_points_used <= np.sum(scales <= EDDY_PEAK_SCALE) + 1
        assert 50.0 <= fit.ideal_scale <= 200.0

    def test_deterministic_for_seed(self):
        a = nek5000_eddy_speedup_points(seed=5)
        b = nek5000_eddy_speedup_points(seed=5)
        assert np.array_equal(a[1], b[1])
