"""Tests for the interpolated speedup model."""

import numpy as np
import pytest

from repro.speedup.interpolated import InterpolatedSpeedup
from repro.speedup.quadratic import QuadraticSpeedup


@pytest.fixture
def quad_points():
    true = QuadraticSpeedup(kappa=0.5, ideal_scale=10_000.0)
    scales = np.linspace(500.0, 10_000.0, 12)
    return scales, np.asarray(true.speedup(scales)), true


class TestInterpolation:
    def test_passes_through_measured_points(self, quad_points):
        scales, speedups, _ = quad_points
        model = InterpolatedSpeedup(scales, speedups)
        for s, v in zip(scales, speedups):
            assert float(model.speedup(s)) == pytest.approx(v, rel=1e-12)

    def test_origin_anchored(self, quad_points):
        scales, speedups, _ = quad_points
        model = InterpolatedSpeedup(scales, speedups)
        assert float(model.speedup(0.0)) == 0.0

    def test_close_to_generator_between_points(self, quad_points):
        scales, speedups, true = quad_points
        model = InterpolatedSpeedup(scales, speedups)
        probe = np.linspace(600.0, 9_500.0, 40)
        ours = np.asarray(model.speedup(probe))
        theirs = np.asarray(true.speedup(probe))
        assert np.max(np.abs(ours - theirs) / theirs) < 0.02

    def test_derivative_positive_below_peak(self, quad_points):
        scales, speedups, _ = quad_points
        model = InterpolatedSpeedup(scales, speedups)
        probe = np.linspace(600.0, 9_000.0, 20)
        assert np.all(np.asarray(model.derivative(probe)) > 0)

    def test_flat_beyond_peak(self, quad_points):
        scales, speedups, _ = quad_points
        model = InterpolatedSpeedup(scales, speedups)
        assert float(model.derivative(model.ideal_scale + 1)) == 0.0
        assert float(model.speedup(model.ideal_scale * 2)) == pytest.approx(
            model.peak_speedup
        )

    def test_rise_then_fall_truncated(self):
        scales = np.array([10.0, 50.0, 100.0, 150.0, 200.0])
        speedups = np.array([9.0, 40.0, 55.0, 50.0, 30.0])
        model = InterpolatedSpeedup(scales, speedups)
        assert model.ideal_scale == 100.0
        assert model.peak_speedup == 55.0


class TestWithSolver:
    def test_plugs_into_algorithm1(self, small_params, quad_points):
        from dataclasses import replace
        from repro.core.algorithm1 import optimize

        scales, speedups, _ = quad_points
        params = replace(
            small_params, speedup=InterpolatedSpeedup(scales, speedups)
        )
        solution = optimize(params).solution
        assert 0 < solution.scale <= 10_000.0

    def test_matches_quadratic_optimum(self, small_params, quad_points):
        """On quadratic-generated data, the interpolated model's optimum
        lands near the quadratic model's."""
        from dataclasses import replace
        from repro.core.algorithm1 import optimize

        scales, speedups, true = quad_points
        interp_solution = optimize(
            replace(small_params, speedup=InterpolatedSpeedup(scales, speedups))
        ).solution
        quad_solution = optimize(replace(small_params, speedup=true)).solution
        assert interp_solution.scale == pytest.approx(
            quad_solution.scale, rel=0.1
        )


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            InterpolatedSpeedup([1.0, 2.0], [1.0, 2.0])

    def test_negative_scale(self):
        with pytest.raises(ValueError):
            InterpolatedSpeedup([-1.0, 2.0, 3.0], [1.0, 2.0, 3.0])

    def test_negative_speedup(self):
        with pytest.raises(ValueError):
            InterpolatedSpeedup([1.0, 2.0, 3.0], [1.0, -2.0, 3.0])
