"""Tests for the Amdahl's-law speedup model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.speedup.amdahl import AmdahlSpeedup


def test_single_core_speedup_is_one():
    assert AmdahlSpeedup(0.1).speedup(1.0) == pytest.approx(1.0)


def test_ceiling():
    model = AmdahlSpeedup(serial_fraction=0.05)
    assert model.asymptotic_speedup == pytest.approx(20.0)
    assert model.speedup(1e9) < 20.0


def test_fully_parallel_ceiling_infinite():
    assert math.isinf(AmdahlSpeedup(0.0).asymptotic_speedup)


def test_derivative_positive_and_decreasing():
    model = AmdahlSpeedup(0.1)
    d = model.derivative(np.array([1.0, 10.0, 100.0]))
    assert np.all(d > 0)
    assert np.all(np.diff(d) < 0)


def test_derivative_matches_finite_difference():
    model = AmdahlSpeedup(0.07)
    n = 50.0
    h = 1e-5
    fd = (model.speedup(n + h) - model.speedup(n - h)) / (2 * h)
    assert model.derivative(n) == pytest.approx(fd, rel=1e-5)


def test_invalid_serial_fraction():
    with pytest.raises(ValueError):
        AmdahlSpeedup(1.0)
    with pytest.raises(ValueError):
        AmdahlSpeedup(-0.1)


@given(
    s=st.floats(min_value=0.001, max_value=0.9),
    n=st.floats(min_value=1.0, max_value=1e6),
)
def test_bounded_by_ceiling_and_n(s, n):
    model = AmdahlSpeedup(s)
    g = float(model.speedup(n))
    assert 0 < g <= min(n, 1.0 / s) + 1e-9
