"""Tests for the paper's quadratic speedup curve (Formula 12)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.speedup.quadratic import QuadraticSpeedup


@pytest.fixture
def heat():
    """The paper's Heat Distribution curve."""
    return QuadraticSpeedup(kappa=0.46, ideal_scale=100_000.0)


class TestShape:
    def test_passes_through_origin(self, heat):
        assert heat.speedup(0.0) == 0.0

    def test_slope_at_origin_is_kappa(self, heat):
        assert heat.derivative(0.0) == pytest.approx(0.46)

    def test_peak_at_ideal_scale(self, heat):
        assert heat.derivative(100_000.0) == pytest.approx(0.0, abs=1e-12)
        assert heat.peak_speedup == pytest.approx(0.46 * 100_000.0 / 2.0)

    def test_symmetric_about_ideal_scale(self, heat):
        assert heat.speedup(90_000.0) == pytest.approx(heat.speedup(110_000.0))

    def test_paper_quoted_measurement(self, heat):
        # "the speedup is 77 when using 160 cores" (kappa estimate ~0.48)
        assert heat.speedup(160.0) == pytest.approx(73.5, rel=0.01)

    def test_vectorized(self, heat):
        n = np.array([100.0, 1000.0, 10_000.0])
        out = heat.speedup(n)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)  # increasing below the peak


class TestProductiveTime:
    def test_matches_te_over_g(self, heat):
        te = 4_000.0 * 86_400.0
        n = 81_746.0
        assert heat.productive_time(te, n) == pytest.approx(te / heat.speedup(n))

    def test_efficiency_decreasing(self, heat):
        eff = heat.efficiency(np.array([10.0, 1_000.0, 50_000.0]))
        assert np.all(np.diff(eff) < 0)


class TestFromSingleMeasurement:
    def test_recovers_kappa(self):
        true = QuadraticSpeedup(kappa=0.46, ideal_scale=100_000.0)
        est = QuadraticSpeedup.from_single_measurement(
            160.0, float(true.speedup(160.0)), 100_000.0
        )
        assert est.kappa == pytest.approx(0.46, rel=1e-9)

    def test_paper_estimate_example(self):
        # speedup 77 at 160 cores -> kappa ~ 0.48, "close to the real 0.46"
        est = QuadraticSpeedup.from_single_measurement(160.0, 77.0, 100_000.0)
        assert est.kappa == pytest.approx(0.482, abs=0.002)

    def test_rejects_scale_beyond_double_ideal(self):
        with pytest.raises(ValueError):
            QuadraticSpeedup.from_single_measurement(250_000.0, 10.0, 100_000.0)


class TestValidation:
    def test_bad_kappa(self):
        with pytest.raises(ValueError):
            QuadraticSpeedup(kappa=0.0, ideal_scale=100.0)

    def test_bad_ideal_scale(self):
        with pytest.raises(ValueError):
            QuadraticSpeedup(kappa=0.5, ideal_scale=-1.0)

    def test_validate_scale_beyond_ideal(self, heat):
        with pytest.raises(ValueError):
            heat.validate_scale(200_000.0)


@given(
    kappa=st.floats(min_value=0.05, max_value=2.0),
    ideal=st.floats(min_value=100.0, max_value=1e7),
    frac=st.floats(min_value=0.01, max_value=0.99),
)
def test_speedup_increasing_below_peak(kappa, ideal, frac):
    """g is strictly increasing on (0, N^(*)) for any parameters."""
    model = QuadraticSpeedup(kappa=kappa, ideal_scale=ideal)
    n = frac * ideal
    assert model.derivative(n) > 0
    assert model.speedup(n) < model.peak_speedup
