"""Tests for the linear speedup model."""

import math

import numpy as np
import pytest

from repro.speedup.linear import LinearSpeedup


def test_speedup_and_derivative():
    model = LinearSpeedup(kappa=0.8)
    assert model.speedup(100.0) == pytest.approx(80.0)
    assert model.derivative(12345.0) == pytest.approx(0.8)


def test_unbounded_ideal_scale_by_default():
    assert math.isinf(LinearSpeedup(1.0).ideal_scale)


def test_max_scale_cap():
    model = LinearSpeedup(1.0, max_scale=1e6)
    assert model.ideal_scale == 1e6


def test_vector_derivative_shape():
    model = LinearSpeedup(0.5)
    d = model.derivative(np.array([1.0, 2.0, 3.0]))
    assert np.all(np.asarray(d) == 0.5)


def test_efficiency_constant():
    model = LinearSpeedup(kappa=0.7)
    assert model.efficiency(10.0) == pytest.approx(0.7)
    assert model.efficiency(1e6) == pytest.approx(0.7)


def test_invalid_kappa():
    with pytest.raises(ValueError):
        LinearSpeedup(kappa=-1.0)


def test_invalid_max_scale():
    with pytest.raises(ValueError):
        LinearSpeedup(1.0, max_scale=0.0)
