"""Tests for the Karp-Flatt metric."""

import numpy as np
import pytest

from repro.speedup.amdahl import AmdahlSpeedup
from repro.speedup.karpflatt import karp_flatt_metric


def test_recovers_amdahl_serial_fraction():
    """On exact Amdahl data the metric returns the serial fraction."""
    s = 0.08
    model = AmdahlSpeedup(s)
    for n in (2.0, 16.0, 512.0):
        e = karp_flatt_metric(float(model.speedup(n)), n)
        assert e == pytest.approx(s, rel=1e-9)


def test_perfect_scaling_gives_zero():
    assert karp_flatt_metric(64.0, 64.0) == pytest.approx(0.0, abs=1e-12)


def test_rising_metric_signals_overhead():
    """Quadratic-curve data shows growing experimentally-determined serial
    fraction — the regime Formula (12) models."""
    from repro.speedup.quadratic import QuadraticSpeedup

    # For Formula (12), e(N) = N / ((2 N^(*) - N)(N - 1)), increasing for
    # N beyond ~sqrt(2 N^(*)); probe that regime.
    model = QuadraticSpeedup(kappa=1.0, ideal_scale=1_000.0)
    scales = np.array([100.0, 500.0, 900.0])
    e = karp_flatt_metric(model.speedup(scales), scales)
    assert np.all(np.diff(e) > 0)


def test_vectorized():
    out = karp_flatt_metric(np.array([2.0, 4.0]), np.array([4.0, 8.0]))
    assert out.shape == (2,)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        karp_flatt_metric(2.0, 1.0)  # N must exceed 1
    with pytest.raises(ValueError):
        karp_flatt_metric(-1.0, 4.0)
