"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_optimize_prints_strategy_table(capsys):
    code = main(
        [
            "optimize",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for strategy in ("ml-opt-scale", "sl-opt-scale", "ml-ori-scale", "sl-ori-scale"):
        assert strategy in out


def test_simulate_reports_replay(capsys):
    code = main(
        [
            "simulate",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
            "--runs",
            "3",
            "--seed",
            "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "replayed over 3 runs" in out
    assert "model predicted" in out


def test_simulate_accepts_jobs(capsys):
    code = main(
        [
            "simulate",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
            "--runs",
            "3",
            "--seed",
            "1",
            "--jobs",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "replayed over 3 runs" in out


def test_simulate_jobs_does_not_change_results(capsys):
    args = [
        "simulate",
        "--te-core-days",
        "200",
        "--case",
        "24-12-6-3",
        "--ideal-scale",
        "2000",
        "--allocation",
        "30",
        "--runs",
        "3",
        "--seed",
        "1",
    ]
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_simulate_rejects_negative_jobs(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "simulate",
                "--te-core-days",
                "200",
                "--case",
                "24-12-6-3",
                "--ideal-scale",
                "2000",
                "--allocation",
                "30",
                "--jobs",
                "-1",
            ]
        )
    assert "job count must be >= 0" in capsys.readouterr().err


def test_experiment_jobs_ignored_for_analytic_driver(capsys):
    code = main(["experiment", "fig3", "--jobs", "2"])
    captured = capsys.readouterr()
    assert code == 0
    assert "fig3" in captured.out
    assert "--jobs ignored" in captured.err


def test_experiment_list(capsys):
    code = main(["experiment", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig3" in out and "table4" in out


def test_experiment_runs_fig3(capsys):
    code = main(["experiment", "fig3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig3" in out


def test_experiment_unknown_id(capsys):
    code = main(["experiment", "fig99"])
    assert code == 2
    assert "available" in capsys.readouterr().err


def test_module_entry_point():
    import repro.__main__  # noqa: F401 - importable without running


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])


@pytest.fixture(autouse=True)
def _obs_dir_in_tmp(monkeypatch, tmp_path):
    """Keep every CLI test's run summary out of the working tree."""
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))


OPTIMIZE_ARGS = [
    "optimize",
    "--te-core-days",
    "200",
    "--case",
    "24-12-6-3",
    "--ideal-scale",
    "2000",
    "--allocation",
    "30",
]


def test_optimize_trace_prints_convergence_table(capsys):
    code = main(OPTIMIZE_ARGS + ["--trace"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ml-opt-scale: Algorithm 1 convergence" in out
    assert "ml-ori-scale: Algorithm 1 convergence" in out
    assert "mu_1" in out and "E(T_w) s" in out and "residual" in out


def test_obs_last_smoke(capsys):
    assert main(OPTIMIZE_ARGS) == 0
    capsys.readouterr()
    code = main(["obs", "--last"])
    out = capsys.readouterr().out
    assert code == 0
    assert "last run: repro optimize" in out
    assert "exit code: 0" in out


def test_obs_last_without_prior_run(capsys):
    code = main(["obs", "--last"])
    captured = capsys.readouterr()
    assert code == 1
    assert "no run summary" in captured.err


def test_obs_without_flags_points_at_last(capsys):
    code = main(["obs"])
    assert code == 2
    assert "--last" in capsys.readouterr().err


def test_experiment_trace_dir_ignored_for_analytic_driver(capsys, tmp_path):
    code = main(["experiment", "fig3", "--trace-dir", str(tmp_path / "t")])
    captured = capsys.readouterr()
    assert code == 0
    assert "--trace-dir ignored" in captured.err


def test_diverged_solve_exits_3_with_partial_trace(capsys, monkeypatch):
    from repro.core.algorithm1 import OuterIterationRecord
    from repro.util.iteration import FixedPointDiverged

    record = OuterIterationRecord(
        index=1,
        mu=(10.0, 5.0),
        expected_wallclock=1e5,
        residual=0.5,
        inner_iterations=4,
        scale=1e6,
    )

    def explode(*args, **kwargs):
        raise FixedPointDiverged(
            "Algorithm 1 did not converge", trace=(record,)
        )

    monkeypatch.setattr("repro.cli.compare_all_strategies", explode)
    code = main(OPTIMIZE_ARGS)
    captured = capsys.readouterr()
    assert code == 3
    assert "error: Algorithm 1 did not converge" in captured.err
    assert "partial convergence trace" in captured.err
    assert "mu_1" in captured.err


def test_verbose_flag_emits_info_logs(capsys):
    # Unique workload: a memo hit would skip the solver's INFO log line.
    args = list(OPTIMIZE_ARGS)
    args[args.index("200")] = "201"
    code = main(["-v"] + args)
    captured = capsys.readouterr()
    assert code == 0
    assert "repro." in captured.err  # logger-formatted lines on stderr


def test_keyboard_interrupt_exits_130_without_traceback(capsys, monkeypatch):
    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.cli.compare_all_strategies", interrupted)
    code = main(OPTIMIZE_ARGS)
    captured = capsys.readouterr()
    assert code == 130
    assert "interrupted" in captured.err
    assert "Traceback" not in captured.err


def test_serve_command_is_registered():
    from repro.cli import _build_parser

    parser = _build_parser()
    args = parser.parse_args(
        ["serve", "--port", "0", "--queue-max", "7", "--no-store"]
    )
    assert args.command == "serve"
    assert args.port == 0
    assert args.queue_max == 7
    assert args.no_store is True
    assert args.cache_max_entries == 4096


def test_serve_starts_answers_and_drains_on_interrupt(capsys, monkeypatch):
    """`repro serve` boots the real service; Ctrl-C drains and exits 130."""
    import threading
    import urllib.request

    from repro.service.server import ReproService

    started = threading.Event()
    real_serve_forever = ReproService.serve_forever

    def serve_then_interrupt(self):
        # Stand-in for a human Ctrl-C: answer one health probe, then
        # raise KeyboardInterrupt out of the serving loop.
        self.start()
        started.set()
        with urllib.request.urlopen(f"{self.url}/healthz", timeout=10) as resp:
            assert resp.status == 200
        raise KeyboardInterrupt

    monkeypatch.setattr(ReproService, "serve_forever", serve_then_interrupt)
    code = main(["serve", "--port", "0", "--no-store", "--queue-max", "4"])
    captured = capsys.readouterr()
    assert code == 130
    assert started.is_set()
    assert "repro.service listening on" in captured.out
    assert "persistent store: disabled" in captured.out
    assert "draining" in captured.err
    assert "interrupted" in captured.err
