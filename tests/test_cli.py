"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_optimize_prints_strategy_table(capsys):
    code = main(
        [
            "optimize",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for strategy in ("ml-opt-scale", "sl-opt-scale", "ml-ori-scale", "sl-ori-scale"):
        assert strategy in out


def test_simulate_reports_replay(capsys):
    code = main(
        [
            "simulate",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
            "--runs",
            "3",
            "--seed",
            "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "replayed over 3 runs" in out
    assert "model predicted" in out


def test_simulate_accepts_jobs(capsys):
    code = main(
        [
            "simulate",
            "--te-core-days",
            "200",
            "--case",
            "24-12-6-3",
            "--ideal-scale",
            "2000",
            "--allocation",
            "30",
            "--runs",
            "3",
            "--seed",
            "1",
            "--jobs",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "replayed over 3 runs" in out


def test_simulate_jobs_does_not_change_results(capsys):
    args = [
        "simulate",
        "--te-core-days",
        "200",
        "--case",
        "24-12-6-3",
        "--ideal-scale",
        "2000",
        "--allocation",
        "30",
        "--runs",
        "3",
        "--seed",
        "1",
    ]
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_simulate_rejects_negative_jobs(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "simulate",
                "--te-core-days",
                "200",
                "--case",
                "24-12-6-3",
                "--ideal-scale",
                "2000",
                "--allocation",
                "30",
                "--jobs",
                "-1",
            ]
        )
    assert "job count must be >= 0" in capsys.readouterr().err


def test_experiment_jobs_ignored_for_analytic_driver(capsys):
    code = main(["experiment", "fig3", "--jobs", "2"])
    captured = capsys.readouterr()
    assert code == 0
    assert "fig3" in captured.out
    assert "--jobs ignored" in captured.err


def test_experiment_list(capsys):
    code = main(["experiment", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig3" in out and "table4" in out


def test_experiment_runs_fig3(capsys):
    code = main(["experiment", "fig3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig3" in out


def test_experiment_unknown_id(capsys):
    code = main(["experiment", "fig99"])
    assert code == 2
    assert "available" in capsys.readouterr().err


def test_module_entry_point():
    import repro.__main__  # noqa: F401 - importable without running


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])
