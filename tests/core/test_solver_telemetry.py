"""Algorithm 1 convergence telemetry: the per-outer-iteration trace."""

import pytest

from repro.core.algorithm1 import (
    OuterIterationRecord,
    format_convergence_table,
    optimize,
)
from repro.experiments.config import make_params
from repro.util.iteration import FixedPointDiverged


@pytest.fixture
def params():
    return make_params(
        200, "24-12-6-3", ideal_scale=2000, allocation_period=30
    )


def test_trace_covers_every_outer_iteration(params):
    result = optimize(params, strategy_name="ml-opt-scale")
    assert len(result.trace) == result.outer_iterations
    assert [r.index for r in result.trace] == list(
        range(1, result.outer_iterations + 1)
    )
    assert all(isinstance(r, OuterIterationRecord) for r in result.trace)


def test_trace_final_row_matches_solution(params):
    result = optimize(params, strategy_name="ml-opt-scale")
    last = result.trace[-1]
    assert last.mu == result.solution.mu
    assert last.expected_wallclock == result.solution.expected_wallclock
    assert last.scale == result.solution.scale
    # The stopping metric really stopped the loop.
    assert last.residual <= 1e-12
    # The trace mirrors mu_history (which has the extra initial guess).
    assert [r.mu for r in result.trace] == list(result.mu_history[1:])


def test_trace_inner_iterations_sum(params):
    result = optimize(params, strategy_name="ml-opt-scale")
    assert (
        sum(r.inner_iterations for r in result.trace)
        == result.inner_iterations_total
    )


def test_fixed_scale_trace_pins_scale(params):
    result = optimize(
        params,
        fixed_scale=params.scale_upper_bound,
        strategy_name="ml-ori-scale",
    )
    assert all(r.scale == params.scale_upper_bound for r in result.trace)


def test_divergence_carries_partial_trace(params):
    with pytest.raises(FixedPointDiverged) as excinfo:
        optimize(params, max_outer=1, strategy_name="ml-opt-scale")
    exc = excinfo.value
    assert len(exc.trace) == 1
    assert exc.trace[0].index == 1
    # The partial trace renders like any converged one.
    assert "mu_1" in format_convergence_table(exc.trace)


def test_format_convergence_table_shape(params):
    result = optimize(params, strategy_name="ml-opt-scale")
    table = format_convergence_table(result.trace)
    lines = table.splitlines()
    assert len(lines) == 2 + len(result.trace)  # header + rule + rows
    assert "E(T_w) s" in lines[0] and "residual" in lines[0]
    num_levels = len(result.trace[0].mu)
    assert all(f"mu_{i}" in lines[0] for i in range(1, num_levels + 1))


def test_format_convergence_table_empty():
    assert "empty" in format_convergence_table(())
