"""Tests for the multilevel inner solver (Formulas 23/24)."""

import numpy as np
import pytest

from repro.core.multilevel import optimize_intervals_fixed_scale, solve_inner
from repro.core.wallclock import (
    expected_wallclock,
    wallclock_gradient_n,
    wallclock_gradient_x,
)


@pytest.fixture
def b(small_params):
    return small_params.failure_slope(5 * 86_400.0)


class TestStationarity:
    def test_gradients_vanish_at_solution(self, small_params, b):
        sol = solve_inner(small_params, b)
        x = np.asarray(sol.intervals)
        grad_x = wallclock_gradient_x(small_params, x, sol.scale, b)
        assert np.max(np.abs(grad_x)) < 1e-4
        if not sol.boundary:
            grad_n = wallclock_gradient_n(small_params, x, sol.scale, b)
            # bisection stops at integer resolution; gradient near zero
            local = abs(grad_n) * sol.scale
            assert local < 1e-2 * sol.expected_wallclock

    def test_solution_beats_neighbours(self, small_params, b):
        sol = solve_inner(small_params, b)
        x = np.asarray(sol.intervals)
        n = sol.scale
        best = sol.expected_wallclock
        for i in range(4):
            for factor in (0.7, 1.4):
                x_try = x.copy()
                x_try[i] *= factor
                assert expected_wallclock(small_params, x_try, n, b * n) > best
        for factor in (0.8, 1.2):
            n_try = min(max(n * factor, 1.0), small_params.scale_upper_bound)
            if n_try != n:
                assert (
                    expected_wallclock(small_params, x, n_try, b * n_try)
                    >= best - 1e-9 * best
                )


class TestScaleBehaviour:
    def test_optimal_scale_below_ideal(self, small_params, b):
        sol = solve_inner(small_params, b)
        assert sol.scale < small_params.scale_upper_bound

    def test_zero_failures_run_at_ideal_scale(self, small_params):
        sol = solve_inner(small_params, np.zeros(4))
        assert sol.boundary
        assert sol.scale == pytest.approx(small_params.scale_upper_bound)

    def test_higher_failure_rates_shrink_scale(self, small_params):
        b_low = small_params.failure_slope(86_400.0)
        b_high = small_params.failure_slope(20 * 86_400.0)
        n_low = solve_inner(small_params, b_low).scale
        n_high = solve_inner(small_params, b_high).scale
        assert n_high < n_low


class TestFixedScale:
    def test_fixed_scale_honoured(self, small_params, b):
        sol = optimize_intervals_fixed_scale(small_params, b, scale=1_500.0)
        assert sol.scale == 1_500.0
        grad_x = wallclock_gradient_x(
            small_params, np.asarray(sol.intervals), 1_500.0, b
        )
        assert np.max(np.abs(grad_x)) < 1e-4

    def test_free_scale_no_worse_than_fixed(self, small_params, b):
        free = solve_inner(small_params, b)
        fixed = optimize_intervals_fixed_scale(
            small_params, b, scale=small_params.scale_upper_bound
        )
        assert free.expected_wallclock <= fixed.expected_wallclock + 1e-9

    def test_out_of_range_fixed_scale_rejected(self, small_params, b):
        with pytest.raises(ValueError):
            optimize_intervals_fixed_scale(small_params, b, scale=1e9)


class TestSweepVariants:
    def test_jacobi_and_gauss_seidel_agree(self, small_params, b):
        gs = solve_inner(small_params, b, gauss_seidel=True)
        jac = solve_inner(small_params, b, gauss_seidel=False)
        assert np.allclose(gs.intervals, jac.intervals, rtol=1e-4)
        assert gs.scale == pytest.approx(jac.scale, abs=1.0)

    def test_gauss_seidel_not_slower(self, small_params, b):
        gs = solve_inner(small_params, b, gauss_seidel=True)
        jac = solve_inner(small_params, b, gauss_seidel=False)
        assert gs.iterations <= jac.iterations + 1


class TestIntervalOrdering:
    def test_cheaper_levels_checkpoint_more_often(self, small_params, b):
        """C_1 < C_2 < ... with comparable rates implies x_1 >= x_2 >= ..."""
        sol = solve_inner(small_params, b)
        assert all(
            a >= b_ for a, b_ in zip(sol.intervals[:-1], sol.intervals[1:])
        )


class TestValidation:
    def test_wrong_b_length(self, small_params):
        with pytest.raises(ValueError):
            solve_inner(small_params, [0.1, 0.2])

    def test_negative_b(self, small_params):
        with pytest.raises(ValueError):
            solve_inner(small_params, [-0.1, 0.1, 0.1, 0.1])

    def test_bad_x0(self, small_params, b):
        with pytest.raises(ValueError):
            solve_inner(small_params, b, x0=[1.0, 2.0])
        with pytest.raises(ValueError):
            solve_inner(small_params, b, x0=[0.0, 1.0, 1.0, 1.0])
