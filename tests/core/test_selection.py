"""Tests for checkpoint-level selection."""

import numpy as np
import pytest

from repro.core.algorithm1 import optimize
from repro.core.selection import (
    optimize_level_selection,
    reduce_parameters,
)


class TestReduceParameters:
    def test_full_subset_is_identity(self, small_params):
        reduced = reduce_parameters(small_params, (1, 2, 3, 4))
        assert reduced.num_levels == 4
        assert reduced.rates.per_day_at_baseline == (24.0, 12.0, 6.0, 3.0)

    def test_disabled_rates_merge_upward(self, small_params):
        # disable levels 2 and 3: their failures roll back to level 4
        reduced = reduce_parameters(small_params, (1, 4))
        assert reduced.num_levels == 2
        assert reduced.rates.per_day_at_baseline == (24.0, 12.0 + 6.0 + 3.0)
        costs = reduced.costs.checkpoint_costs(100.0)
        assert costs.tolist() == [1.0, 12.0]

    def test_disable_level_1(self, small_params):
        reduced = reduce_parameters(small_params, (2, 3, 4))
        # level-1 failures now recover from level 2
        assert reduced.rates.per_day_at_baseline == (36.0, 6.0, 3.0)

    def test_top_level_mandatory(self, small_params):
        with pytest.raises(ValueError, match="catch-all"):
            reduce_parameters(small_params, (1, 2, 3))

    def test_bad_subsets_rejected(self, small_params):
        with pytest.raises(ValueError):
            reduce_parameters(small_params, (4, 1))
        with pytest.raises(ValueError):
            reduce_parameters(small_params, (0, 4))
        with pytest.raises(ValueError):
            reduce_parameters(small_params, ())


class TestSelection:
    def test_search_covers_all_subsets(self, small_params):
        result = optimize_level_selection(small_params)
        assert len(result.per_subset) == 8  # 2^(L-1) for L=4
        assert all(subset[-1] == 4 for subset in result.per_subset)

    def test_best_is_minimum_over_subsets(self, small_params):
        result = optimize_level_selection(small_params)
        finite = [v for v in result.per_subset.values() if np.isfinite(v)]
        assert result.solution.expected_wallclock == pytest.approx(min(finite))
        assert result.per_subset[result.best_subset] == pytest.approx(
            result.solution.expected_wallclock
        )

    def test_no_worse_than_all_levels(self, small_params):
        """Selection can only improve on always-enabling every level."""
        result = optimize_level_selection(small_params)
        all_levels = optimize(small_params).solution
        assert (
            result.solution.expected_wallclock
            <= all_levels.expected_wallclock * (1 + 1e-9)
        )

    def test_redundant_level_gets_dropped(self, small_params):
        """Make level 3 cost nearly as much as level 4 while protecting
        less: the optimizer should disable it."""
        from dataclasses import replace
        from repro.costs.model import LevelCostModel

        params = replace(
            small_params,
            costs=LevelCostModel.from_constants([1.0, 2.5, 11.9, 12.0]),
        )
        result = optimize_level_selection(params)
        assert 3 not in result.best_subset

    def test_fixed_scale_supported(self, small_params):
        result = optimize_level_selection(small_params, fixed_scale=1_500.0)
        assert result.solution.scale == 1_500.0
