"""Tests for the single-level optimizers (Formulas 10/11, 16/17)."""

import numpy as np
import pytest

from repro.core.single_level import (
    solve_single_level_linear,
    solve_single_level_nonlinear,
)
from repro.core.wallclock import single_level_wallclock
from repro.experiments.fig3 import (
    FIG3_B,
    PAPER_OPTIMUM_CONSTANT,
    PAPER_OPTIMUM_LINEAR,
    _params,
)


class TestLinearClosedForm:
    def test_formulas_10_and_11(self):
        te, kappa, eps, eta, a, b = 1e8, 0.5, 10.0, 8.0, 2.0, 0.001
        sol = solve_single_level_linear(te, kappa, eps, eta, a, b)
        assert sol.x == pytest.approx(np.sqrt(b * te / (2 * kappa * eps)))
        assert sol.n == pytest.approx(np.sqrt(te / (kappa * b * (eta + a))))
        assert sol.iterations == 0

    def test_optimum_beats_neighbours(self):
        te, kappa, eps, eta, a, b = 1e8, 0.5, 10.0, 8.0, 2.0, 0.001
        sol = solve_single_level_linear(te, kappa, eps, eta, a, b)

        def objective(x, n):
            f = te / (kappa * n)
            return f + eps * (x - 1) + b * n * (f / (2 * x) + eta + a)

        best = objective(sol.x, sol.n)
        for fx in (0.8, 1.25):
            for fn in (0.8, 1.25):
                assert objective(sol.x * fx, sol.n * fn) > best

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_single_level_linear(0.0, 0.5, 1.0, 1.0, 1.0, 0.01)
        with pytest.raises(ValueError):
            solve_single_level_linear(1e6, 0.5, 1.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError, match="unbounded"):
            solve_single_level_linear(1e6, 0.5, 1.0, 0.0, 0.0, 0.01)


class TestNonlinearFixedPoint:
    def test_reproduces_paper_fig3_constant_cost(self):
        """x* = 797, N* = 81,746 (paper Section III-C.2)."""
        sol = solve_single_level_nonlinear(_params(False), b=FIG3_B)
        assert sol.x == pytest.approx(PAPER_OPTIMUM_CONSTANT[0], abs=1.0)
        assert sol.n == pytest.approx(PAPER_OPTIMUM_CONSTANT[1], abs=2.0)
        assert not sol.boundary

    def test_reproduces_paper_fig3_linear_cost(self):
        """x* = 140, N* = 20,215."""
        sol = solve_single_level_nonlinear(_params(True), b=FIG3_B)
        assert sol.x == pytest.approx(PAPER_OPTIMUM_LINEAR[0], abs=1.0)
        assert sol.n == pytest.approx(PAPER_OPTIMUM_LINEAR[1], abs=2.0)

    def test_stationarity_formula_16(self):
        """At the solution, Formula (16) is a fixed point."""
        params = _params(False)
        sol = solve_single_level_nonlinear(params, b=FIG3_B)
        g = float(params.speedup.speedup(sol.n))
        cost = float(params.costs.checkpoint_costs(sol.n)[0])
        x_again = np.sqrt(FIG3_B * sol.n * params.te_core_seconds / (2 * cost * g))
        assert x_again == pytest.approx(sol.x, rel=1e-6)

    def test_optimum_beats_swept_neighbours(self):
        params = _params(False)
        sol = solve_single_level_nonlinear(params, b=FIG3_B)
        best = single_level_wallclock(params, sol.x, sol.n, mu=FIG3_B * sol.n)
        for fx in (0.7, 1.4):
            val = single_level_wallclock(
                params, sol.x * fx, sol.n, mu=FIG3_B * sol.n
            )
            assert val > best
        for fn in (0.7, 1.2):
            n_try = min(sol.n * fn, params.scale_upper_bound)
            val = single_level_wallclock(
                params, sol.x, n_try, mu=FIG3_B * n_try
            )
            assert val > best

    def test_zero_failures_boundary_solution(self):
        sol = solve_single_level_nonlinear(_params(False), b=0.0)
        assert sol.boundary
        assert sol.n == pytest.approx(100_000.0)
        assert sol.x == 1.0  # never checkpoint without failures

    def test_tiny_failure_rate_lands_near_ideal_scale(self):
        """'This situation occurs with very few failures or small checkpoint
        overhead on the PFS' — the optimum sits at (or within a whisker of)
        N^(*), and the interval count floors at 1 (no checkpoints)."""
        sol = solve_single_level_nonlinear(_params(False), b=1e-9)
        assert sol.n == pytest.approx(100_000.0, rel=1e-3)
        assert sol.x == 1.0

    def test_multilevel_params_rejected(self, small_params):
        with pytest.raises(ValueError, match="1-level"):
            solve_single_level_nonlinear(small_params, b=0.01)

    def test_paper_initial_value_converges_quickly(self):
        """From x0 = 100,000 the paper reports 30-40 iterations; our
        Gauss-Seidel-style alternation converges even faster, but must stay
        well within that envelope."""
        sol = solve_single_level_nonlinear(_params(False), b=FIG3_B, x0=100_000.0)
        assert 1 <= sol.iterations <= 40
