"""Tests for the Jin et al. SL(opt-scale) baseline."""

import pytest

from repro.core.jin import solve_jin_single_level
from repro.core.single_level import solve_single_level_nonlinear


def test_collapses_multilevel_input(small_params):
    result = solve_jin_single_level(small_params)
    sol = result.solution
    assert sol.num_levels == 1
    assert sol.strategy == "sl-opt-scale"
    # all failures routed to the single level
    assert sol.mu[0] > 0


def test_accepts_single_level_input(single_level_params):
    result = solve_jin_single_level(single_level_params)
    assert result.solution.num_levels == 1


def test_consistent_with_direct_single_level_solver(single_level_params):
    """At the converged mu, the Algorithm-1 route and a direct Formula
    (16)/(17) solve with that mu agree."""
    result = solve_jin_single_level(single_level_params)
    sol = result.solution
    b = sol.mu[0] / sol.scale  # the converged per-core failure count
    direct = solve_single_level_nonlinear(single_level_params, b=b)
    assert direct.x == pytest.approx(sol.intervals[0], rel=1e-3)
    assert direct.n == pytest.approx(sol.scale, rel=1e-3)


def test_scale_shrinks_with_failure_rates(small_params):
    from dataclasses import replace
    from repro.failures.rates import FailureRates

    mild = replace(
        small_params,
        rates=FailureRates((4.0, 2.0, 1.0, 0.5), baseline_scale=2_000.0),
    )
    harsh_solution = solve_jin_single_level(small_params).solution
    mild_solution = solve_jin_single_level(mild).solution
    assert harsh_solution.scale < mild_solution.scale
