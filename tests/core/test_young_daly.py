"""Tests for the Young and Daly baselines."""

import math

import numpy as np
import pytest

from repro.core.daly import daly_interval
from repro.core.young import (
    young_initial_intervals,
    young_interval,
    young_num_intervals,
)


class TestYoung:
    def test_classic_formula(self):
        assert young_interval(10.0, 7_200.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 7_200.0)
        )

    def test_interval_count_form_consistent(self):
        """x = P / tau when mu = P / MTBF."""
        cost, mtbf, productive = 10.0, 7_200.0, 1e6
        mu = productive / mtbf
        tau = young_interval(cost, mtbf)
        x = young_num_intervals(mu, productive, cost)
        assert x == pytest.approx(productive / tau, rel=1e-9)

    def test_floor_at_one(self):
        assert young_num_intervals(1e-9, 100.0, 50.0) == 1.0

    def test_per_level_initialization(self, small_params):
        n = 1_000.0
        mu = np.array([20.0, 10.0, 5.0, 2.0])
        x = young_initial_intervals(small_params, n, mu)
        p = small_params.productive_time(n)
        c = small_params.costs.checkpoint_costs(n)
        for i in range(4):
            assert x[i] == pytest.approx(math.sqrt(mu[i] * p / (2 * c[i])))

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 100.0)
        with pytest.raises(ValueError):
            young_num_intervals(-1.0, 100.0, 1.0)
        with pytest.raises(ValueError):
            young_num_intervals(1.0, 0.0, 1.0)


class TestDaly:
    def test_close_to_young_for_small_cost(self):
        """For C << M Daly's correction is small."""
        c, m = 1.0, 1e6
        assert daly_interval(c, m) == pytest.approx(
            young_interval(c, m), rel=0.01
        )

    def test_higher_order_terms_positive_before_subtracting_c(self):
        c, m = 100.0, 10_000.0
        tau = daly_interval(c, m)
        assert tau > young_interval(c, m) - c - 1e-9

    def test_degenerate_regime_returns_mtbf(self):
        assert daly_interval(500.0, 200.0) == 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            daly_interval(-1.0, 100.0)
        with pytest.raises(ValueError):
            daly_interval(1.0, 0.0)
