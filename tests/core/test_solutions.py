"""Tests for the four evaluation strategies."""

import math

import numpy as np
import pytest

from repro.core.jin import solve_jin_single_level
from repro.core.solutions import (
    STRATEGY_NAMES,
    compare_all_strategies,
    ml_opt_scale,
    ml_ori_scale,
    sl_opt_scale,
    sl_ori_scale,
)


class TestIndividualStrategies:
    def test_ml_opt_scale_optimizes_both(self, small_params):
        sol = ml_opt_scale(small_params)
        assert sol.strategy == "ml-opt-scale"
        assert sol.num_levels == 4
        assert sol.scale < small_params.scale_upper_bound

    def test_ml_ori_scale_pins_scale(self, small_params):
        sol = ml_ori_scale(small_params)
        assert sol.scale == small_params.scale_upper_bound
        assert sol.num_levels == 4

    def test_sl_opt_scale_single_level(self, small_params):
        sol = sl_opt_scale(small_params)
        assert sol.num_levels == 1
        assert sol.scale < small_params.scale_upper_bound

    def test_sl_ori_scale_classic_young(self, small_params):
        sol = sl_ori_scale(small_params)
        assert sol.num_levels == 1
        assert sol.scale == small_params.scale_upper_bound

    def test_jin_alias(self, small_params):
        result = solve_jin_single_level(small_params)
        assert result.solution.strategy == "sl-opt-scale"


class TestOrdering:
    """The paper's headline comparison (Fig. 5): ML(opt-scale) wins."""

    def test_ml_opt_beats_all(self, small_params):
        sols = compare_all_strategies(small_params)
        best = sols["ml-opt-scale"].expected_wallclock
        for name in ("sl-opt-scale", "ml-ori-scale", "sl-ori-scale"):
            assert best <= sols[name].expected_wallclock * (1 + 1e-9), name

    def test_multilevel_beats_single_level_at_same_scale_policy(
        self, small_params
    ):
        sols = compare_all_strategies(small_params)
        assert (
            sols["ml-opt-scale"].expected_wallclock
            <= sols["sl-opt-scale"].expected_wallclock
        )
        if sols["sl-ori-scale"].feasible:
            assert (
                sols["ml-ori-scale"].expected_wallclock
                <= sols["sl-ori-scale"].expected_wallclock
            )

    def test_all_strategies_present(self, small_params):
        sols = compare_all_strategies(small_params)
        assert set(sols) == set(STRATEGY_NAMES)


class TestEfficiencyShape:
    def test_sl_opt_scale_highest_efficiency(self, small_params):
        """Fig. 7: the tiny-scale single-level solution has the best
        processor utilization despite its long wall-clock."""
        sols = compare_all_strategies(small_params)
        te = small_params.te_core_seconds
        eff = {name: s.efficiency(te) for name, s in sols.items()}
        assert eff["sl-opt-scale"] >= eff["ml-ori-scale"]
        assert eff["sl-opt-scale"] >= eff["sl-ori-scale"]

    def test_ml_opt_more_efficient_than_ori(self, small_params):
        sols = compare_all_strategies(small_params)
        te = small_params.te_core_seconds
        assert sols["ml-opt-scale"].efficiency(te) >= sols[
            "ml-ori-scale"
        ].efficiency(te)


class TestInfeasibleClassicYoung:
    def test_harsh_config_reports_infinite_wallclock(self, paper_params):
        """At 10^6 cores with the scale-growing PFS cost, classic Young's
        expected loss per second exceeds 1: reported as infeasible."""
        sol = sl_ori_scale(paper_params)
        assert not sol.feasible
        assert math.isinf(sol.expected_wallclock)
        assert sol.efficiency(paper_params.te_core_seconds) == 0.0
